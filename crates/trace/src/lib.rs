//! First-party runtime telemetry for the Hermes workspace.
//!
//! The serving paths (`Engine`, `hermes-pool`, the retrievers) emit
//! *events* — span begin/end pairs, pre-timed complete spans, and
//! counter samples — into **lock-free per-thread ring buffers**. A
//! drain ([`snapshot`]) collects every thread's events into a
//! [`TraceSnapshot`], from which the analysis side derives per-span
//! log2 latency histograms ([`hist::LogHistogram`]), counter summaries,
//! and a Chrome trace-event JSON ([`export::to_chrome_json`]) loadable
//! in Perfetto or `chrome://tracing`.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled cost ≈ one branch.** Every public recording entry point
//!    starts with a single `Relaxed` atomic load ([`is_enabled`]); when
//!    telemetry is off (the default) nothing else runs — no clock read,
//!    no buffer touch, no allocation. The `ext_trace_overhead` bench
//!    records the residual cost on the flat-scan path.
//! 2. **No locks on the hot path.** Each thread owns a single-producer
//!    ring; the producer publishes with a release store on the head
//!    index, the (registry-serialized) drainer acknowledges with a
//!    release store on the tail. A full ring drops new events and counts
//!    them ([`TraceSnapshot::dropped`]) rather than blocking or growing.
//! 3. **Deterministic under test.** Timestamps flow through an
//!    injectable [`clock::Clock`]; installing a [`clock::TestClock`]
//!    makes span durations exact constants.
//! 4. **Zero dependencies**, per the workspace hermeticity policy: std
//!    atomics only, plus `hermes-math` for the histogram bucket rule.
//!
//! # Span nesting
//!
//! Span guards are `!Send` and close in drop order, so begin/end events
//! on one thread form a well-nested stack — exactly the Chrome trace
//! format's `B`/`E` semantics. Work fanned out on `hermes-pool` records
//! on the worker's own ring (its own `tid`); nested fan-outs that the
//! pool runs inline simply nest their spans on the caller's thread.
//!
//! # Examples
//!
//! ```
//! use hermes_trace as trace;
//!
//! trace::clear();
//! trace::enable();
//! {
//!     let mut span = trace::span("work");
//!     span.arg("items", 3);
//!     trace::counter("items_done", 3);
//! } // span end recorded here
//! trace::disable();
//!
//! let snap = trace::snapshot();
//! let spans = snap.spans().unwrap();
//! assert!(spans.iter().any(|s| s.name == "work"));
//! assert_eq!(snap.counters()["items_done"].sum, 3);
//! ```

pub mod clock;
pub mod export;
pub mod hist;
pub mod json;
pub mod names;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hist::LogHistogram;

/// Maximum key/value argument pairs one event can carry.
pub const MAX_ARGS: usize = 4;

/// Events one thread can buffer before new ones are dropped (and
/// counted). 8192 events × ~120 B ≈ 1 MB per recording thread.
pub const RING_CAPACITY: usize = 8192;

/// One `name = value` annotation on an event (scanned codes, cluster
/// ids, queue depths). Static names keep recording allocation-free.
pub type Arg = (&'static str, u64);

/// A fixed-capacity, copyable argument list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArgSet {
    len: u8,
    items: [Arg; MAX_ARGS],
}

impl ArgSet {
    /// Builds from a slice; excess arguments beyond [`MAX_ARGS`] are
    /// silently dropped (telemetry never fails the instrumented path).
    pub fn from_slice(args: &[Arg]) -> Self {
        let mut set = ArgSet::default();
        for &a in args {
            set.push(a.0, a.1);
        }
        set
    }

    /// Appends one argument (dropped if full).
    pub fn push(&mut self, key: &'static str, value: u64) {
        if (self.len as usize) < MAX_ARGS {
            self.items[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// The recorded arguments.
    pub fn as_slice(&self) -> &[Arg] {
        &self.items[..self.len as usize]
    }

    /// Looks up an argument by key.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.as_slice().iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// What one event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"`). Closed by the next matching [`EventKind::End`]
    /// on the same thread.
    Begin,
    /// The innermost open span on this thread closed (`ph: "E"`).
    End,
    /// A pre-timed span (`ph: "X"`); `value` is its duration in ns. Used
    /// where begin/end guards can't live on the stack (pool idle time).
    Complete,
    /// A counter sample (`ph: "C"`); `value` is the sampled amount.
    Counter,
}

/// One telemetry event, as stored in the ring: fixed-size, `Copy`,
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event type.
    pub kind: EventKind,
    /// Span or counter name (static so recording never allocates).
    pub name: &'static str,
    /// Timestamp from the global [`clock::Clock`], ns.
    pub ts_ns: u64,
    /// Duration (`Complete`) or sampled amount (`Counter`); 0 for spans.
    pub value: u64,
    /// Recording thread, as assigned at ring registration (1-based).
    pub tid: u32,
    /// Annotations.
    pub args: ArgSet,
}

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is recording. One `Relaxed` load — this is the
/// entire disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording. Spans already begun still record their end events
/// so buffered begin/end pairs stay matched.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread rings + registry
// ---------------------------------------------------------------------------

/// A single-producer ring: the owning thread pushes, the (serialized)
/// drainer pops. Slots are `Copy` events behind `UnsafeCell`; the
/// head/tail release-acquire pair orders slot writes against reads.
struct Ring {
    tid: u32,
    thread_name: String,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[std::cell::UnsafeCell<Event>]>,
}

// SAFETY: slot `i` is written only by the owner thread while
// `head - tail < capacity` guarantees the drainer is not reading it, and
// read only by the drainer for indices below a head it acquired.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

const DUMMY_EVENT: Event = Event {
    kind: EventKind::Counter,
    name: "",
    ts_ns: 0,
    value: 0,
    tid: 0,
    args: ArgSet {
        len: 0,
        items: [("", 0); MAX_ARGS],
    },
};

impl Ring {
    fn new(tid: u32, thread_name: String) -> Self {
        Ring {
            tid,
            thread_name,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| std::cell::UnsafeCell::new(DUMMY_EVENT))
                .collect(),
        }
    }

    /// Owner-thread push. Never blocks: a full ring drops the event.
    fn push(&self, mut ev: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.tid = self.tid;
        // SAFETY: only the owner writes, and the capacity check above
        // proves the drainer has acknowledged this slot.
        unsafe {
            *self.slots[head % RING_CAPACITY].get() = ev;
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Drainer-side pop of everything published so far. Callers hold the
    /// registry lock, so there is exactly one concurrent drainer.
    fn drain_into(&self, out: &mut Vec<Event>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            // SAFETY: `tail < head` (acquired) means the owner published
            // this slot and will not rewrite it until tail advances.
            out.push(unsafe { *self.slots[tail % RING_CAPACITY].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }
}

struct Registry {
    rings: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU32,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(1),
    })
}

thread_local! {
    /// This thread's ring, registered on first recorded event. The Arc
    /// also lives in the registry, so events survive thread exit.
    static LOCAL_RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
}

/// The calling thread's ring, registering it on first use. Leaks one
/// `Arc` clone per recording thread into a `'static` reference — rings
/// are deliberately immortal so a drain never races thread teardown.
fn local_ring() -> &'static Ring {
    LOCAL_RING.with(|cell| {
        if let Some(ring) = cell.get() {
            return ring;
        }
        let reg = registry();
        let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        let ring = Arc::new(Ring::new(tid, name));
        reg.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&ring));
        let leaked: &'static Ring = Box::leak(Box::new(ring));
        cell.set(Some(leaked));
        leaked
    })
}

fn record(ev: Event) {
    local_ring().push(ev);
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// An open span. Records a begin event at creation (when telemetry is
/// enabled) and the matching end event — carrying any [`Span::arg`]
/// annotations — on drop. `!Send`, so begin and end always land on the
/// same thread's ring and nest LIFO.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct Span {
    name: &'static str,
    active: bool,
    args: ArgSet,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Span {
    /// Annotates the span's end event (e.g. work counts known only once
    /// the stage finishes). No-op on an inactive (disabled-at-begin)
    /// span.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.active {
            self.args.push(key, value);
        }
    }

    /// Whether this span recorded a begin event.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // End events are recorded even if telemetry was disabled
        // mid-span, so every buffered Begin stays matched.
        if self.active {
            record(Event {
                kind: EventKind::End,
                name: self.name,
                ts_ns: clock::now_ns(),
                value: 0,
                tid: 0,
                args: self.args,
            });
        }
    }
}

/// Opens a span named `name`. When telemetry is disabled this is a
/// single branch returning an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, &[])
}

/// Opens a span whose begin event carries `args`.
#[inline]
pub fn span_with(name: &'static str, args: &[Arg]) -> Span {
    if !is_enabled() {
        return Span {
            name,
            active: false,
            args: ArgSet::default(),
            _not_send: std::marker::PhantomData,
        };
    }
    record(Event {
        kind: EventKind::Begin,
        name,
        ts_ns: clock::now_ns(),
        value: 0,
        tid: 0,
        args: ArgSet::from_slice(args),
    });
    Span {
        name,
        active: true,
        args: ArgSet::default(),
        _not_send: std::marker::PhantomData,
    }
}

/// Reads the global clock — for callers assembling [`complete`] events
/// around scopes that cannot hold a [`Span`] guard. Prefer gating the
/// read behind [`is_enabled`] so disabled paths never touch the clock.
pub fn now_ns() -> u64 {
    clock::now_ns()
}

/// Records a pre-timed span (`start_ns` + `dur_ns`), for scopes that
/// cannot hold a guard — e.g. pool idle time measured across a condvar
/// wait.
#[inline]
pub fn complete(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !is_enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Complete,
        name,
        ts_ns: start_ns,
        value: dur_ns,
        tid: 0,
        args: ArgSet::default(),
    });
}

/// [`complete`] with annotations on the event — the serving layer uses
/// this to stamp request ids and priority classes onto pre-timed
/// request/batch spans.
#[inline]
pub fn complete_with(name: &'static str, start_ns: u64, dur_ns: u64, args: &[Arg]) {
    if !is_enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Complete,
        name,
        ts_ns: start_ns,
        value: dur_ns,
        tid: 0,
        args: ArgSet::from_slice(args),
    });
}

/// Records one counter sample.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Counter,
        name,
        ts_ns: clock::now_ns(),
        value,
        tid: 0,
        args: ArgSet::default(),
    });
}

// ---------------------------------------------------------------------------
// Snapshot / drain
// ---------------------------------------------------------------------------

/// One matched begin/end (or complete) span from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Recording thread.
    pub tid: u32,
    /// Start timestamp, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Begin-event args followed by end-event args.
    pub args: Vec<Arg>,
}

/// Counter roll-up across a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSummary {
    /// Samples recorded.
    pub samples: u64,
    /// Sum of sampled values (the monotonic-counter reading).
    pub sum: u64,
    /// Largest single sample (the gauge reading, e.g. peak queue depth).
    pub max: u64,
}

/// Everything drained from the rings at one point in time, plus the
/// thread table needed to interpret it.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All events, ordered by timestamp (stable within a thread).
    pub events: Vec<Event>,
    /// `tid -> thread name` for every thread that ever recorded.
    pub threads: BTreeMap<u32, String>,
    /// Events lost to full rings since the previous drain.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Builds a snapshot from raw events (no global state) — the hook
    /// for downstream crates' deterministic tests. Thread names default
    /// to `thread-<tid>`.
    pub fn from_events(events: Vec<Event>) -> Self {
        let mut threads = BTreeMap::new();
        for ev in &events {
            threads
                .entry(ev.tid)
                .or_insert_with(|| format!("thread-{}", ev.tid));
        }
        TraceSnapshot {
            events,
            threads,
            dropped: 0,
        }
    }

    /// Matches begin/end pairs (per-thread stacks, Chrome `B`/`E`
    /// semantics) and inlines complete events.
    ///
    /// # Errors
    ///
    /// An end without an open begin, a name mismatch at the top of a
    /// thread's stack, or a begin left open all return a description of
    /// the first violation — the property the trace validation test
    /// pins.
    pub fn spans(&self) -> Result<Vec<SpanRecord>, String> {
        let mut stacks: BTreeMap<u32, Vec<(&'static str, u64, ArgSet)>> = BTreeMap::new();
        let mut spans = Vec::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Begin => {
                    stacks.entry(ev.tid).or_default().push((ev.name, ev.ts_ns, ev.args));
                }
                EventKind::End => {
                    let stack = stacks.entry(ev.tid).or_default();
                    let Some((name, start_ns, begin_args)) = stack.pop() else {
                        return Err(format!(
                            "end event `{}` on tid {} with no open span",
                            ev.name, ev.tid
                        ));
                    };
                    if name != ev.name {
                        return Err(format!(
                            "span mismatch on tid {}: begin `{name}` closed by end `{}`",
                            ev.tid, ev.name
                        ));
                    }
                    let mut args: Vec<Arg> = begin_args.as_slice().to_vec();
                    args.extend_from_slice(ev.args.as_slice());
                    spans.push(SpanRecord {
                        name,
                        tid: ev.tid,
                        start_ns,
                        dur_ns: ev.ts_ns.saturating_sub(start_ns),
                        args,
                    });
                }
                EventKind::Complete => spans.push(SpanRecord {
                    name: ev.name,
                    tid: ev.tid,
                    start_ns: ev.ts_ns,
                    dur_ns: ev.value,
                    args: ev.args.as_slice().to_vec(),
                }),
                EventKind::Counter => {}
            }
        }
        for (tid, stack) in &stacks {
            if let Some((name, _, _)) = stack.last() {
                return Err(format!("span `{name}` on tid {tid} never ended"));
            }
        }
        Ok(spans)
    }

    /// Per-span-name duration histograms (ns), derived from the matched
    /// spans.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::spans`] matching failures.
    pub fn histograms(&self) -> Result<BTreeMap<&'static str, LogHistogram>, String> {
        let mut out: BTreeMap<&'static str, LogHistogram> = BTreeMap::new();
        for span in self.spans()? {
            out.entry(span.name).or_default().record(span.dur_ns);
        }
        Ok(out)
    }

    /// Per-counter-name roll-ups.
    pub fn counters(&self) -> BTreeMap<&'static str, CounterSummary> {
        let mut out: BTreeMap<&'static str, CounterSummary> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == EventKind::Counter {
                let c = out.entry(ev.name).or_default();
                c.samples += 1;
                c.sum += ev.value;
                c.max = c.max.max(ev.value);
            }
        }
        out
    }

    /// Whether the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Drains every thread's ring into a [`TraceSnapshot`]. Typically called
/// with telemetry disabled (or quiescent) so in-flight spans have
/// closed; an open span at drain time surfaces as a
/// [`TraceSnapshot::spans`] error, not a panic.
pub fn snapshot() -> TraceSnapshot {
    let rings = registry()
        .rings
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut events = Vec::new();
    let mut threads = BTreeMap::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        ring.drain_into(&mut events);
        threads.insert(ring.tid, ring.thread_name.clone());
        dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    // Stable: preserves per-ring (= per-thread) order among equal
    // timestamps, so each thread's event sequence stays intact.
    events.sort_by_key(|e| e.ts_ns);
    TraceSnapshot {
        events,
        threads,
        dropped,
    }
}

/// Drops all buffered events and resets drop counters. Test isolation
/// helper; also useful before a measured run to shed warmup events.
pub fn clear() {
    let _ = snapshot();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use std::sync::MutexGuard;

    /// Global telemetry state (enable flag, rings, clock) is
    /// process-wide; tests that record serialize on this.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fresh(step: u64) -> MutexGuard<'static, ()> {
        let g = guard();
        clear();
        clock::install_clock(Arc::new(TestClock::new(1_000, step)));
        enable();
        g
    }

    fn teardown() {
        disable();
        clock::reset_clock();
        clear();
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = guard();
        clear();
        disable();
        {
            let mut s = span("ghost");
            s.arg("x", 1);
            counter("ghost_counter", 7);
            complete("ghost_complete", 0, 5);
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn span_guard_records_matched_pair_with_args() {
        let _g = fresh(10);
        {
            let mut s = span_with("stage", &[("shards", 4)]);
            s.arg("scanned", 123);
        }
        disable();
        let snap = snapshot();
        let spans = snap.spans().expect("matched");
        teardown();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.name, "stage");
        assert_eq!(s.dur_ns, 10); // one clock step between begin and end
        assert!(s.args.contains(&("shards", 4)));
        assert!(s.args.contains(&("scanned", 123)));
    }

    #[test]
    fn nested_spans_match_inner_first() {
        let _g = fresh(1);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        disable();
        let snap = snapshot();
        let spans = snap.spans().expect("matched");
        teardown();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        // Inner closes first, so it appears first in span order.
        assert_eq!(names, vec!["inner", "outer"]);
        assert!(spans[1].dur_ns > spans[0].dur_ns);
    }

    #[test]
    fn counters_roll_up_sum_and_max() {
        let _g = fresh(1);
        counter("scanned", 10);
        counter("scanned", 30);
        counter("scanned", 20);
        disable();
        let snap = snapshot();
        teardown();
        let c = snap.counters()["scanned"];
        assert_eq!(c.samples, 3);
        assert_eq!(c.sum, 60);
        assert_eq!(c.max, 30);
    }

    #[test]
    fn histograms_use_deterministic_clock_durations() {
        let _g = fresh(100);
        for _ in 0..4 {
            let _s = span("op"); // each span: exactly one 100 ns step
        }
        disable();
        let snap = snapshot();
        teardown();
        let h = &snap.histograms().expect("matched")["op"];
        assert_eq!(h.count(), 4);
        // 100 ns lands in bucket [64,128): every percentile reads 64.
        assert_eq!(h.p50(), 64);
        assert_eq!(h.p99(), 64);
    }

    #[test]
    fn cross_thread_events_carry_distinct_tids() {
        let _g = fresh(1);
        {
            let _main = span("main_work");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span("worker_work");
                });
            });
        }
        disable();
        let snap = snapshot();
        teardown();
        let spans = snap.spans().expect("matched");
        let main_tid = spans.iter().find(|s| s.name == "main_work").unwrap().tid;
        let worker_tid = spans.iter().find(|s| s.name == "worker_work").unwrap().tid;
        assert_ne!(main_tid, worker_tid);
        assert!(snap.threads.contains_key(&main_tid));
        assert!(snap.threads.contains_key(&worker_tid));
    }

    #[test]
    fn unmatched_events_are_reported_not_panicked() {
        let end_only = TraceSnapshot::from_events(vec![Event {
            kind: EventKind::End,
            name: "dangling",
            ts_ns: 5,
            value: 0,
            tid: 1,
            args: ArgSet::default(),
        }]);
        assert!(end_only.spans().unwrap_err().contains("no open span"));

        let begin_only = TraceSnapshot::from_events(vec![Event {
            kind: EventKind::Begin,
            name: "open",
            ts_ns: 5,
            value: 0,
            tid: 1,
            args: ArgSet::default(),
        }]);
        assert!(begin_only.spans().unwrap_err().contains("never ended"));
    }

    #[test]
    fn ring_overflow_drops_and_counts_instead_of_blocking() {
        let _g = fresh(1);
        for _ in 0..(RING_CAPACITY + 100) {
            counter("flood", 1);
        }
        disable();
        let snap = snapshot();
        teardown();
        assert_eq!(snap.events.len(), RING_CAPACITY);
        assert_eq!(snap.dropped, 100);
    }

    #[test]
    fn clear_empties_buffers() {
        let _g = fresh(1);
        counter("x", 1);
        disable();
        clear();
        let snap = snapshot();
        teardown();
        assert!(snap.is_empty());
    }

    #[test]
    fn argset_caps_at_max_args() {
        let mut a = ArgSet::default();
        for i in 0..(MAX_ARGS as u64 + 3) {
            a.push("k", i);
        }
        assert_eq!(a.as_slice().len(), MAX_ARGS);
        assert_eq!(a.get("k"), Some(0));
        assert_eq!(a.get("missing"), None);
    }
}
