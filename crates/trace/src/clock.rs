//! Injectable time sources.
//!
//! Every event timestamp in the telemetry layer flows through one
//! process-global [`Clock`]. Production uses [`MonotonicClock`]
//! (`std::time::Instant` against a process-start origin); tests install
//! a [`TestClock`] whose reads advance by a fixed step, which makes span
//! durations — and therefore histogram percentiles — exact constants a
//! fixture can hand-compute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Successive reads from one
    /// thread must be non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Wall clock: `Instant::elapsed` against an origin captured when the
/// clock is created (for the global default: first telemetry use).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock for tests: every read returns the previous value
/// plus a fixed step, starting at `start`. Reads are globally ordered
/// (one atomic), so a single-threaded test sees exactly
/// `start, start+step, start+2*step, ...`.
#[derive(Debug)]
pub struct TestClock {
    next: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock that yields `start`, `start+step`, `start+2*step`, ...
    pub fn new(start: u64, step: u64) -> Self {
        TestClock {
            next: AtomicU64::new(start),
            step,
        }
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.next.fetch_add(self.step, Ordering::Relaxed)
    }
}

/// Deterministic clock driven explicitly by the test: reads return the
/// last value given to [`ManualClock::set`] / [`ManualClock::advance`]
/// without advancing it, so any number of telemetry reads between two
/// driver steps observe the same instant. This is the clock for
/// discrete-event harnesses (the serving layer's load generator) where
/// *the driver* owns time and instrumentation must not perturb it —
/// complementing [`TestClock`], whose auto-advancing reads give every
/// span a nonzero duration.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at `start`.
    pub fn new(start: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start),
        }
    }

    /// Moves the clock to `t`. Clamped monotonic: a `t` earlier than the
    /// current reading is ignored, so interleaved drivers can never make
    /// time run backwards.
    pub fn set(&self, t: u64) {
        self.now.fetch_max(t, Ordering::Relaxed);
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// The installed override, if any; `None` means the lazily created
/// monotonic default.
fn override_slot() -> &'static RwLock<Option<Arc<dyn Clock>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Clock>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn default_clock() -> &'static MonotonicClock {
    static DEFAULT: OnceLock<MonotonicClock> = OnceLock::new();
    DEFAULT.get_or_init(MonotonicClock::new)
}

/// Replaces the global clock (typically with a [`TestClock`]). Affects
/// every subsequently recorded event, process-wide — callers that need
/// isolation serialize their tests.
pub fn install_clock(clock: Arc<dyn Clock>) {
    *override_slot().write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(clock);
}

/// Restores the default monotonic clock.
pub fn reset_clock() {
    *override_slot().write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Reads the global clock. Only called on enabled-telemetry paths, so
/// the read lock is never taken on a disabled hot path.
pub(crate) fn now_ns() -> u64 {
    let guard = override_slot()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match guard.as_ref() {
        Some(clock) => clock.now_ns(),
        None => default_clock().now_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_steps_deterministically() {
        let c = TestClock::new(100, 7);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 107);
        assert_eq!(c.now_ns(), 114);
    }

    #[test]
    fn manual_clock_holds_between_driver_steps() {
        let c = ManualClock::new(5);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.now_ns(), 5);
        c.set(42);
        assert_eq!(c.now_ns(), 42);
        c.advance(8);
        assert_eq!(c.now_ns(), 50);
    }

    #[test]
    fn manual_clock_never_runs_backwards() {
        let c = ManualClock::new(100);
        c.set(30);
        assert_eq!(c.now_ns(), 100);
    }
}
