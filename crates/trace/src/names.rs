//! The canonical registry of telemetry name strings.
//!
//! Every `counter`/`span`/`complete` site in the workspace names its
//! stream with a constant from this module, and every consumer — the
//! `hermes-metrics` trace/cache reports, the `hermes-obs` Prometheus
//! exposition, grep-driven humans — resolves the same constants. A name
//! that exists only as a string literal at a recording site can silently
//! drift from the name a report looks up; a name that exists once here
//! cannot.
//!
//! [`COUNTERS`] additionally pairs each counter name with a help line,
//! which is what `MetricsRegistry::render_text` emits as the metric's
//! `# HELP` text.

// --- Counter streams (EventKind::Counter) ---------------------------------

/// Exact bit-pattern cache hit (one sample per hit).
pub const CACHE_HIT_EXACT: &str = "cache.hit_exact";
/// Near-duplicate semantic cache hit.
pub const CACHE_HIT_SEMANTIC: &str = "cache.hit_semantic";
/// Cache lookup that found nothing servable.
pub const CACHE_MISS: &str = "cache.miss";
/// Lookup against a disabled/bypassed cache layer.
pub const CACHE_BYPASS: &str = "cache.bypass";
/// Entry evicted because its generation version was stale.
pub const CACHE_STALE: &str = "cache.stale";
/// Entry evicted by capacity pressure.
pub const CACHE_EVICT: &str = "cache.evict";
/// Admission-queue depth, sampled after each accepted arrival.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Work-stealing pool: one sample per stolen task.
pub const POOL_STEAL: &str = "pool.steal";
/// Work-stealing pool: remaining shared-cursor depth at steal time.
pub const POOL_QUEUE_DEPTH: &str = "pool.queue_depth";
/// Codes scanned by one index probe.
pub const INDEX_SCANNED_CODES: &str = "index.scanned_codes";

/// Every counter stream in the workspace: `(name, help)`. The single
/// source the text exposition renders from, so a counter recorded under
/// a constant above is always exported and described consistently.
pub const COUNTERS: &[(&str, &str)] = &[
    (CACHE_HIT_EXACT, "Exact bit-pattern cache hits"),
    (CACHE_HIT_SEMANTIC, "Near-duplicate semantic cache hits"),
    (CACHE_MISS, "Cache lookups that found nothing servable"),
    (CACHE_BYPASS, "Lookups against a bypassed cache layer"),
    (CACHE_STALE, "Entries evicted as generation-stale"),
    (CACHE_EVICT, "Entries evicted by capacity pressure"),
    (SERVE_QUEUE_DEPTH, "Admission-queue depth samples"),
    (POOL_STEAL, "Pool tasks stolen"),
    (POOL_QUEUE_DEPTH, "Pool shared-cursor depth at steal time"),
    (INDEX_SCANNED_CODES, "Codes scanned per index probe"),
];

// --- Span streams (Begin/End and Complete) --------------------------------

/// One full engine pipeline execution (route ▸ scatter ▸ gather).
pub const ENGINE_EXECUTE: &str = "engine.execute";
/// Route stage of one query.
pub const ENGINE_ROUTE: &str = "engine.route";
/// Scatter stage of one query.
pub const ENGINE_SCATTER: &str = "engine.scatter";
/// Gather stage of one query.
pub const ENGINE_GATHER: &str = "engine.gather";
/// One cluster-coalesced batch execution.
pub const ENGINE_COALESCED: &str = "engine.coalesced";
/// One route-stage sampling probe of a shard.
pub const SHARD_SAMPLE: &str = "shard.sample";
/// One deep search of a shard (per query, or per coalesced group).
pub const SHARD_DEEP: &str = "shard.deep";
/// One dispatched serving batch (pre-timed, virtual time).
pub const SERVE_BATCH: &str = "serve.batch";
/// One completed request's sojourn (pre-timed, virtual time).
pub const SERVE_REQUEST: &str = "serve.request";
/// One request turned away (queue full / expired), zero duration.
pub const SERVE_SHED: &str = "serve.shed";
/// One cache-fronted batch through `CachedBackend`.
pub const CACHE_BATCH: &str = "cache.batch";
/// One end-to-end retrieval through the `rag` retriever.
pub const RAG_RETRIEVE: &str = "rag.retrieve";
/// Pool worker idle time across a condvar wait (pre-timed).
pub const POOL_IDLE: &str = "pool.idle";

// --- Common span/event argument keys --------------------------------------

/// The serving-layer request id an event belongs to.
pub const ARG_REQUEST_ID: &str = "request_id";
/// Priority-class index (0 = interactive) of the request.
pub const ARG_CLASS: &str = "class";
/// Requests sharing the dispatched batch.
pub const ARG_BATCH_SIZE: &str = "batch_size";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registry_is_unique_and_matches_constants() {
        let mut seen = std::collections::BTreeSet::new();
        for (name, help) in COUNTERS {
            assert!(seen.insert(*name), "duplicate counter name {name}");
            assert!(!help.is_empty());
        }
        assert!(seen.contains(CACHE_HIT_EXACT));
        assert!(seen.contains(SERVE_QUEUE_DEPTH));
        assert!(seen.contains(POOL_STEAL));
        assert!(seen.contains(INDEX_SCANNED_CODES));
    }

    #[test]
    fn names_are_dotted_lowercase() {
        for (name, _) in COUNTERS {
            assert!(name.contains('.'), "{name} should be namespaced");
            assert_eq!(*name, name.to_lowercase());
        }
    }
}
