//! Chrome trace-event JSON export.
//!
//! Produces the [Trace Event Format] JSON object form
//! (`{"traceEvents": [...]}`) that Perfetto and `chrome://tracing` load
//! directly: `B`/`E` duration events, `X` complete events, `C` counter
//! events, and `M` thread-name metadata. Timestamps are microseconds
//! (the format's unit) carried as decimals with nanosecond precision.
//!
//! Everything is hand-serialized — the workspace has no serde — and the
//! sibling [`crate::json`] parser can read the output back, which is how
//! the in-repo validation tests and the `verify.sh` smoke step check
//! that emitted traces are well-formed.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{EventKind, TraceSnapshot};

/// Escapes a string for a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats ns as the trace format's µs with nanosecond precision.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Incremental builder for a Chrome trace-event JSON document. Used by
/// [`to_chrome_json`] for runtime snapshots and directly by callers with
/// externally produced spans (e.g. the multi-node simulator's stage
/// timelines).
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTraceBuilder::default()
    }

    fn push_event(&mut self, ph: char, name: &str, tid: u32, ts_ns: u64, extra: &str) {
        let mut ev = String::with_capacity(64 + name.len() + extra.len());
        ev.push_str("{\"name\":\"");
        escape_into(&mut ev, name);
        ev.push_str(&format!(
            "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
            us(ts_ns)
        ));
        ev.push_str(extra);
        ev.push('}');
        self.events.push(ev);
    }

    fn args_json(args: &[(&str, u64)]) -> String {
        if args.is_empty() {
            return String::new();
        }
        let mut out = String::from(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
        out
    }

    /// Appends a span begin (`ph: "B"`).
    pub fn begin(&mut self, name: &str, tid: u32, ts_ns: u64, args: &[(&str, u64)]) {
        let extra = Self::args_json(args);
        self.push_event('B', name, tid, ts_ns, &extra);
    }

    /// Appends a span end (`ph: "E"`).
    pub fn end(&mut self, name: &str, tid: u32, ts_ns: u64, args: &[(&str, u64)]) {
        let extra = Self::args_json(args);
        self.push_event('E', name, tid, ts_ns, &extra);
    }

    /// Appends a complete span (`ph: "X"`) with a duration.
    pub fn complete(&mut self, name: &str, tid: u32, start_ns: u64, dur_ns: u64) {
        let extra = format!(",\"dur\":{}", us(dur_ns));
        self.push_event('X', name, tid, start_ns, &extra);
    }

    /// Appends a counter sample (`ph: "C"`); Perfetto plots one series
    /// per arg key, so the sample is emitted as `args: {value: v}`.
    pub fn counter(&mut self, name: &str, tid: u32, ts_ns: u64, value: u64) {
        let extra = format!(",\"args\":{{\"value\":{value}}}");
        self.push_event('C', name, tid, ts_ns, &extra);
    }

    /// Appends thread-name metadata (`ph: "M"`), mapping `tid` to a
    /// human-readable lane label in the viewer.
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        let mut ev = String::from("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        ev.push_str(&format!("{tid},\"args\":{{\"name\":\""));
        escape_into(&mut ev, name);
        ev.push_str("\"}}");
        self.events.push(ev);
    }

    /// Renders the final JSON document.
    pub fn build(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(ev);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Serializes a snapshot as Chrome trace-event JSON: thread-name
/// metadata for every recording thread, then each event in timestamp
/// order.
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    let mut b = ChromeTraceBuilder::new();
    for (tid, name) in &snapshot.threads {
        b.thread_name(*tid, name);
    }
    for ev in &snapshot.events {
        match ev.kind {
            EventKind::Begin => b.begin(ev.name, ev.tid, ev.ts_ns, ev.args.as_slice()),
            EventKind::End => b.end(ev.name, ev.tid, ev.ts_ns, ev.args.as_slice()),
            EventKind::Complete => b.complete(ev.name, ev.tid, ev.ts_ns, ev.value),
            EventKind::Counter => b.counter(ev.name, ev.tid, ev.ts_ns, ev.value),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::{ArgSet, Event};

    fn ev(kind: EventKind, name: &'static str, ts: u64, value: u64, tid: u32) -> Event {
        Event {
            kind,
            name,
            ts_ns: ts,
            value,
            tid,
            args: ArgSet::default(),
        }
    }

    #[test]
    fn exported_json_parses_back() {
        let snap = TraceSnapshot::from_events(vec![
            ev(EventKind::Begin, "route", 1_000, 0, 1),
            ev(EventKind::End, "route", 2_500, 0, 1),
            ev(EventKind::Complete, "idle", 3_000, 500, 2),
            ev(EventKind::Counter, "scanned", 3_100, 42, 1),
        ]);
        let json = to_chrome_json(&snap);
        let doc = parse(&json).expect("exporter output must parse");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 2 thread_name metadata + 4 events.
        assert_eq!(events.len(), 6);
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phs, vec!["M", "M", "B", "E", "X", "C"]);
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        let snap = TraceSnapshot::from_events(vec![ev(EventKind::Counter, "c", 1_234_567, 1, 1)]);
        let json = to_chrome_json(&snap);
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let sample = events.last().unwrap();
        let ts = sample.get("ts").and_then(Json::as_f64).unwrap();
        assert!((ts - 1234.567).abs() < 1e-9, "ts={ts}");
    }

    #[test]
    fn args_and_names_are_escaped() {
        let mut b = ChromeTraceBuilder::new();
        b.thread_name(1, "weird \"name\"\n\\");
        b.begin("span", 1, 0, &[("k", 7)]);
        b.end("span", 1, 10, &[]);
        let doc = parse(&b.build()).expect("escaped output parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let meta_name = events[0]
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(meta_name, "weird \"name\"\n\\");
        let arg = events[1]
            .get("args")
            .and_then(|a| a.get("k"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(arg, 7.0);
    }

    #[test]
    fn complete_events_carry_duration() {
        let mut b = ChromeTraceBuilder::new();
        b.complete("work", 3, 5_000, 2_500);
        let doc = parse(&b.build()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(2.5));
        assert_eq!(events[0].get("tid").and_then(Json::as_f64), Some(3.0));
    }
}
