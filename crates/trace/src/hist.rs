//! Fixed-bucket log2 latency histograms.
//!
//! 64 buckets cover every `u64` value: bucket `i` holds `[2^i, 2^(i+1))`
//! (bucket 0 additionally holds 0), per
//! [`hermes_math::stats::log2_bucket`]. Recording is a single array
//! increment — no allocation, no sorting — and percentile readout walks
//! the cumulative counts, reporting the *lower bound* of the bucket the
//! rank lands in. The coarse readout is deliberate: a log2 bucket is
//! within 2× of the true value, which is exactly the resolution the
//! paper's latency distribution arguments need, and the lower-bound rule
//! makes every fixture hand-computable.

use hermes_math::stats::{log2_bucket, log2_bucket_floor};

/// Number of buckets — one per possible `floor(log2(v))` of a `u64`.
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` observations (latencies in ns,
/// scanned-code counts, queue depths — any nonnegative magnitude).
///
/// # Examples
///
/// ```
/// use hermes_trace::hist::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [3u64, 5, 9, 17, 33] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// // Ranks land in buckets [2,4), [4,8), [8,16), [16,32), [32,64);
/// // p50 is the 3rd observation's bucket lower bound: 8.
/// assert_eq!(h.percentile(0.50), 8);
/// assert_eq!(h.max_bucket_floor(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[log2_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (`0.0` when empty). Exact, not bucketed: the sum
    /// is accumulated alongside the buckets.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (`counts()[i]` = observations in `[2^i, 2^(i+1))`).
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Lower bound of the bucket containing the `q`-quantile observation
    /// (nearest-rank: rank `ceil(q * count)`, clamped to at least 1).
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return log2_bucket_floor(i);
            }
        }
        unreachable!("cumulative counts must reach count")
    }

    /// Median bucket lower bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile bucket lower bound.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile bucket lower bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Lower bound of the highest non-empty bucket (0 when empty).
    pub fn max_bucket_floor(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, log2_bucket_floor)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_bucket_floor(), 0);
    }

    #[test]
    fn percentiles_match_hand_computed_fixture() {
        // 100 observations: 50 in bucket [2,4) (value 3), 45 in [8,16)
        // (value 10), 5 in [1024,2048) (value 1500). Nearest-rank:
        //   p50 -> rank 50  -> bucket [2,4)      -> floor 2
        //   p95 -> rank 95  -> bucket [8,16)     -> floor 8
        //   p99 -> rank 99  -> bucket [1024,..)  -> floor 1024
        let mut h = LogHistogram::new();
        for _ in 0..50 {
            h.record(3);
        }
        for _ in 0..45 {
            h.record(10);
        }
        for _ in 0..5 {
            h.record(1500);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 2);
        assert_eq!(h.p95(), 8);
        assert_eq!(h.p99(), 1024);
        assert_eq!(h.max_bucket_floor(), 1024);
        let mean = (50 * 3 + 45 * 10 + 5 * 1500) as f64 / 100.0;
        assert!((h.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn single_observation_dominates_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(77); // bucket [64,128)
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 64, "q={q}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let values = [1u64, 2, 3, 100, 5000, 0, 9];
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.percentile(1.0), 0);
    }
}
