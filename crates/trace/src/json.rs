//! Minimal JSON parser — just enough to validate exported traces.
//!
//! The workspace's zero-dependency policy rules out serde, but the
//! acceptance tests (and the `verify.sh` smoke step) must prove that
//! [`crate::export`] emits *parseable* JSON whose structure Perfetto
//! accepts. This is a small recursive-descent parser over the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals);
//! it favors clear errors over speed and is not used on any hot path.

/// A parsed JSON value. Numbers are `f64` (like JavaScript), which is
/// exact for every integer the exporter emits (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on the first
/// syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // exporter; map lone surrogates to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // valid inside JSON strings).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}, null], "d": false}"#).unwrap();
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(doc.get("d"), Some(&Json::Bool(false)));
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""a\"b\\c\ntA""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ntA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"open", "1 2", "{,}"] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").unwrap_err().contains("trailing"));
    }

    #[test]
    fn handles_unicode_text() {
        let doc = parse("\"héllo — ∑\"").unwrap();
        assert_eq!(doc.as_str(), Some("héllo — ∑"));
    }
}
