//! Property suite for [`LogHistogram::merge`]: folding histogram `b`
//! into `a` must be *bucket-exact* equivalent to recording the union of
//! both sample sets into one histogram — the contract `hermes-obs`
//! relies on when it folds per-thread request-phase histograms into one
//! attribution table.

use hermes_math::stats::log2_bucket;
use hermes_testkit::prelude::*;
use hermes_trace::hist::{LogHistogram, BUCKETS};

fn from_samples(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning every bucket magnitude, including 0 and u64::MAX.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec_of(u64_any(), 0..40)
}

#[test]
fn prop_merge_is_recording_the_union_bucket_exact() {
    check(
        "hist_merge_union",
        &tuple2(samples(), samples()),
        |(xs, ys)| {
            let mut merged = from_samples(xs);
            merged.merge(&from_samples(ys));

            let union: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
            let whole = from_samples(&union);

            // Structural equality covers counts, per-bucket tallies and
            // the exact sum.
            prop_assert_eq!(&merged, &whole);
            // Spell out the bucket-exactness anyway, so a future `merge`
            // rewrite that only preserves aggregates still fails loudly.
            for i in 0..BUCKETS {
                prop_assert_eq!(merged.counts()[i], whole.counts()[i]);
            }
            for &v in &union {
                prop_assert!(merged.counts()[log2_bucket(v)] > 0);
            }
            Ok(())
        },
    );
}

#[test]
fn prop_merge_readouts_match_union_readouts() {
    check(
        "hist_merge_readouts",
        &tuple2(samples(), samples()),
        |(xs, ys)| {
            let mut merged = from_samples(xs);
            merged.merge(&from_samples(ys));
            let union: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
            let whole = from_samples(&union);

            prop_assert_eq!(merged.count(), union.len() as u64);
            prop_assert_eq!(merged.sum(), whole.sum());
            prop_assert_eq!(merged.max_bucket_floor(), whole.max_bucket_floor());
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                prop_assert_eq!(merged.percentile(q), whole.percentile(q));
            }
            Ok(())
        },
    );
}

#[test]
fn prop_merge_with_empty_is_identity_and_order_free() {
    check(
        "hist_merge_identity",
        &tuple2(samples(), samples()),
        |(xs, ys)| {
            let a = from_samples(xs);
            let b = from_samples(ys);

            let mut with_empty = a.clone();
            with_empty.merge(&LogHistogram::new());
            prop_assert_eq!(&with_empty, &a);

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
            Ok(())
        },
    );
}
