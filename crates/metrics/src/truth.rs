//! Parallel brute-force ground-truth and batch-metric computation.
//!
//! The paper's NDCG oracle is an exhaustive [`FlatIndex`] scan per query
//! (Section 5) — by far the slowest part of the bench harness, since it
//! scores every stored vector for every query. Both helpers here fan out
//! on the shared work-stealing executor ([`hermes_pool::Pool::global`])
//! with deterministic, input-ordered results.
//!
//! [`FlatIndex`]: hermes_index::FlatIndex

use hermes_index::{IndexError, SearchParams, VectorIndex};
use hermes_pool::Pool;

use crate::ranking::{ids, ndcg_at_k};

/// Computes the exact top-`k` id list for every query against `oracle`
/// (normally a [`hermes_index::FlatIndex`] over the full corpus), one
/// query per steal on the global pool.
///
/// # Errors
///
/// Propagates the first per-query search error in input order.
pub fn ground_truth(
    oracle: &dyn VectorIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<Vec<Vec<u64>>, IndexError> {
    Pool::global().try_parallel_map(queries, |q| {
        oracle
            .search(q, k, &SearchParams::new())
            .map(|hits| ids(&hits))
    })
}

/// NDCG@k for every `(truth, retrieved)` pair, fanned out on the global
/// pool; output order matches input order.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn batch_ndcg_at_k(truth: &[Vec<u64>], retrieved: &[Vec<u64>], k: usize) -> Vec<f64> {
    assert_eq!(
        truth.len(),
        retrieved.len(),
        "one ground-truth list per retrieved list"
    );
    Pool::global().parallel_map_index(truth.len(), |i| ndcg_at_k(&truth[i], &retrieved[i], k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_index::FlatIndex;
    use hermes_math::{Mat, Metric};

    fn grid_corpus(n: usize) -> Mat {
        Mat::from_rows(
            &(0..n)
                .map(|i| vec![(i % 13) as f32, (i / 13) as f32, (i % 7) as f32])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn ground_truth_matches_sequential_oracle() {
        let data = grid_corpus(400);
        let oracle = FlatIndex::new(data.clone(), Metric::L2);
        let queries: Vec<Vec<f32>> = (0..37).map(|i| data.row(i * 10).to_vec()).collect();
        let parallel = ground_truth(&oracle, &queries, 5).unwrap();
        let sequential: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| ids(&oracle.search(q, 5, &SearchParams::new()).unwrap()))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn ground_truth_propagates_first_error_in_order() {
        let data = grid_corpus(50);
        let oracle = FlatIndex::new(data.clone(), Metric::L2);
        let queries = vec![
            data.row(0).to_vec(),
            vec![1.0, 2.0], // wrong dimension, first in input order
            data.row(1).to_vec(),
            vec![9.9], // wrong dimension, later
        ];
        let err = ground_truth(&oracle, &queries, 3).unwrap_err();
        assert_eq!(err, IndexError::DimensionMismatch { expected: 3, got: 2 });
    }

    #[test]
    fn batch_ndcg_matches_scalar_calls() {
        let truth: Vec<Vec<u64>> = (0..25).map(|i| vec![i, i + 1, i + 2]).collect();
        let retrieved: Vec<Vec<u64>> = (0..25).map(|i| vec![i + 1, i, 99]).collect();
        let batch = batch_ndcg_at_k(&truth, &retrieved, 3);
        for i in 0..25 {
            assert_eq!(batch[i], ndcg_at_k(&truth[i], &retrieved[i], 3));
        }
    }
}
