//! Cache-effectiveness and adaptive-depth accounting for reports.
//!
//! `hermes-cache` counts its own hits and misses; this module folds
//! those plain numbers — metrics sits below the cache crate in the
//! dependency graph, so callers pass integers, never cache types — into
//! the derived rates and tables that `hermes stats` and the
//! `ext_adaptive` bench print:
//!
//! * [`CacheEffect`] — hit/miss/stale/bypass counters with served-share
//!   and hit-rate derivations.
//! * [`DepthHistogram`] — how often the adaptive estimator chose each
//!   retrieval depth (clusters searched), the visible footprint of the
//!   difficulty signal.

use crate::report::{fmt, Row, Table};

/// Folded cache counters plus derived rates.
///
/// # Examples
///
/// ```
/// use hermes_metrics::CacheEffect;
/// let eff = CacheEffect {
///     exact_hits: 60,
///     semantic_hits: 15,
///     misses: 25,
///     stale: 5,
///     bypass: 0,
///     evictions: 2,
/// };
/// assert_eq!(eff.lookups(), 100);
/// assert_eq!(eff.hit_rate(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheEffect {
    /// Bit-identical query matches served from the cache.
    pub exact_hits: u64,
    /// Near-duplicate matches served by the semantic layer.
    pub semantic_hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries dropped because their version stamp no longer matched.
    pub stale: u64,
    /// Queries that skipped the cache entirely.
    pub bypass: u64,
    /// Capacity evictions.
    pub evictions: u64,
}

impl CacheEffect {
    /// Hits of either kind.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.semantic_hits
    }

    /// Lookups that consulted the cache (bypasses excluded).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from the cache (`0.0` when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }

    /// Fraction of hits that were semantic rather than exact.
    pub fn semantic_share(&self) -> f64 {
        if self.hits() == 0 {
            0.0
        } else {
            self.semantic_hits as f64 / self.hits() as f64
        }
    }

    /// Renders the counters as a two-column table.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["counter", "value"]);
        let mut push = |label: &str, v: String| t.push(Row::new(label, vec![v]));
        push("exact hits", self.exact_hits.to_string());
        push("semantic hits", self.semantic_hits.to_string());
        push("misses", self.misses.to_string());
        push("stale evictions", self.stale.to_string());
        push("bypasses", self.bypass.to_string());
        push("capacity evictions", self.evictions.to_string());
        push("hit rate", fmt(self.hit_rate(), 3));
        push("semantic share", fmt(self.semantic_share(), 3));
        t
    }
}

/// Histogram of adaptive depth choices (clusters searched per query).
///
/// # Examples
///
/// ```
/// use hermes_metrics::DepthHistogram;
/// let mut h = DepthHistogram::new();
/// h.record(1);
/// h.record(3);
/// h.record(3);
/// assert_eq!(h.queries(), 3);
/// assert_eq!(h.count(3), 2);
/// assert!((h.mean() - 7.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl DepthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DepthHistogram::default()
    }

    /// Folds in one query's chosen depth.
    pub fn record(&mut self, depth: usize) {
        if self.counts.len() <= depth {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += 1;
        self.total += 1;
    }

    /// Queries recorded.
    pub fn queries(&self) -> u64 {
        self.total
    }

    /// Queries that chose exactly `depth`.
    pub fn count(&self, depth: usize) -> u64 {
        self.counts.get(depth).copied().unwrap_or(0)
    }

    /// Mean chosen depth (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Non-empty `(depth, count, share)` buckets in depth order.
    pub fn buckets(&self) -> Vec<(usize, u64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| (d, c, c as f64 / self.total as f64))
            .collect()
    }

    /// Renders the histogram as a table with share bars.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["depth", "queries", "share"]);
        for (d, c, share) in self.buckets() {
            t.push(Row::new(
                format!("m={d}"),
                vec![c.to_string(), fmt(share, 3)],
            ));
        }
        t.push(Row::new(
            "mean",
            vec![String::new(), fmt(self.mean(), 2)],
        ));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_derive_from_counters() {
        let eff = CacheEffect {
            exact_hits: 30,
            semantic_hits: 10,
            misses: 60,
            stale: 3,
            bypass: 7,
            evictions: 1,
        };
        assert_eq!(eff.hits(), 40);
        assert_eq!(eff.lookups(), 100);
        assert_eq!(eff.hit_rate(), 0.4);
        assert_eq!(eff.semantic_share(), 0.25);
    }

    #[test]
    fn empty_effect_has_zero_rates() {
        let eff = CacheEffect::default();
        assert_eq!(eff.hit_rate(), 0.0);
        assert_eq!(eff.semantic_share(), 0.0);
        let rendered = eff.table("cache").render();
        assert!(rendered.contains("hit rate"));
    }

    #[test]
    fn histogram_counts_and_buckets() {
        let mut h = DepthHistogram::new();
        for d in [1, 1, 2, 3, 3, 3] {
            h.record(d);
        }
        assert_eq!(h.queries(), 6);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.buckets(), vec![
            (1, 2, 2.0 / 6.0),
            (2, 1, 1.0 / 6.0),
            (3, 3, 3.0 / 6.0),
        ]);
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-12);
        let rendered = h.table("adaptive depth").render();
        assert!(rendered.contains("m=3"));
        assert!(rendered.contains("mean"));
    }

    #[test]
    fn empty_histogram_renders() {
        let h = DepthHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
        let _ = h.table("adaptive depth").render();
    }
}
