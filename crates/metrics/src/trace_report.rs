//! ASCII summaries of runtime telemetry snapshots.
//!
//! `hermes-trace` sits below this crate in the dependency graph (the
//! pool itself records into it), so the trace crate cannot render its
//! own [`Table`]s; this module closes the loop — it folds a
//! [`TraceSnapshot`] into the same report tables every bench binary
//! prints, which is what the `hermes stats` subcommand shows.

use crate::report::{fmt, Row, Table};
use hermes_trace::TraceSnapshot;

/// Span-latency summary: one row per span name with sample count,
/// p50/p95/p99 duration and total time. Durations are reported in
/// microseconds (the Chrome trace unit); percentiles are log2-bucket
/// lower bounds, so they are order-of-magnitude readings, not exact
/// quantiles.
///
/// # Errors
///
/// Propagates [`TraceSnapshot::spans`] matching failures (an unmatched
/// begin/end means the snapshot was drained mid-span).
pub fn span_table(snapshot: &TraceSnapshot) -> Result<Table, String> {
    let mut table = Table::new(
        "Span latencies (µs, log2-bucket lower bounds)",
        &["span", "count", "p50", "p95", "p99", "total"],
    );
    for (name, hist) in snapshot.histograms()? {
        table.push(Row::new(
            name,
            vec![
                hist.count().to_string(),
                fmt(hist.p50() as f64 / 1_000.0, 3),
                fmt(hist.p95() as f64 / 1_000.0, 3),
                fmt(hist.p99() as f64 / 1_000.0, 3),
                fmt(hist.sum() as f64 / 1_000.0, 1),
            ],
        ));
    }
    Ok(table)
}

/// Counter summary: one row per counter name with sample count, sum
/// (the monotonic reading) and max (the gauge reading).
pub fn counter_table(snapshot: &TraceSnapshot) -> Table {
    let mut table = Table::new("Counters", &["counter", "samples", "sum", "max"]);
    for (name, c) in snapshot.counters() {
        table.push(Row::new(
            name,
            vec![c.samples.to_string(), c.sum.to_string(), c.max.to_string()],
        ));
    }
    table
}

/// Renders both tables plus the drop line — the full `hermes stats`
/// report.
///
/// # Errors
///
/// Propagates [`TraceSnapshot::spans`] matching failures.
pub fn render_summary(snapshot: &TraceSnapshot) -> Result<String, String> {
    let mut out = span_table(snapshot)?.render();
    out.push('\n');
    out.push_str(&counter_table(snapshot).render());
    out.push_str(&format!(
        "\nthreads: {}  events: {}  dropped: {}\n",
        snapshot.threads.len(),
        snapshot.events.len(),
        snapshot.dropped
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trace::{ArgSet, Event, EventKind};

    fn ev(kind: EventKind, name: &'static str, ts_ns: u64, value: u64) -> Event {
        Event {
            kind,
            name,
            ts_ns,
            value,
            tid: 0,
            args: ArgSet::default(),
        }
    }

    /// A deterministic snapshot built without touching global trace
    /// state: two `work` spans (1000 ns and 3000 ns) and a counter.
    fn fixture() -> TraceSnapshot {
        TraceSnapshot::from_events(vec![
            ev(EventKind::Begin, "work", 0, 0),
            ev(EventKind::End, "work", 1_000, 0),
            ev(EventKind::Complete, "work", 2_000, 3_000),
            ev(EventKind::Counter, "codes", 500, 40),
            ev(EventKind::Counter, "codes", 1_500, 60),
        ])
    }

    #[test]
    fn span_table_reports_counts_and_percentiles() {
        let t = span_table(&fixture()).unwrap();
        let row = &t.rows()[0];
        assert_eq!(row.label, "work");
        assert_eq!(row.cells[0], "2");
        // 1000 ns falls in bucket [512, 1024) -> floor 512 ns = 0.512 µs;
        // 3000 ns falls in [2048, 4096) -> floor 2048 ns = 2.048 µs.
        assert_eq!(row.cells[1], "0.512", "p50");
        assert_eq!(row.cells[3], "2.048", "p99");
        assert_eq!(row.cells[4], "4.0", "total µs");
    }

    #[test]
    fn counter_table_rolls_up_sum_and_max() {
        let t = counter_table(&fixture());
        let row = &t.rows()[0];
        assert_eq!(row.label, "codes");
        assert_eq!(row.cells, vec!["2", "100", "60"]);
    }

    #[test]
    fn summary_renders_both_tables_and_totals() {
        let s = render_summary(&fixture()).unwrap();
        assert!(s.contains("Span latencies"));
        assert!(s.contains("Counters"));
        assert!(s.contains("events: 5"));
        assert!(s.contains("dropped: 0"));
    }

    #[test]
    fn unbalanced_snapshot_surfaces_the_matching_error() {
        let snap = TraceSnapshot::from_events(vec![ev(EventKind::Begin, "open", 0, 0)]);
        let err = span_table(&snap).unwrap_err();
        assert!(err.contains("never ended"), "{err}");
        // Counters never depend on span matching.
        let _ = counter_table(&snap);
    }
}
