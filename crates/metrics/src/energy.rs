//! Energy and throughput accounting.
//!
//! The paper measures CPU power with Intel RAPL and GPU power with pynvml,
//! then multiplies by stage latency to report joules per query/batch. The
//! reproduction's device models emit `(power_watts, duration_s)` samples
//! into an [`EnergyMeter`], which plays the role of those counters.


/// Accumulated energy for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageEnergy {
    /// Total joules consumed.
    pub joules: f64,
    /// Total busy seconds.
    pub seconds: f64,
}

impl StageEnergy {
    /// Mean power over the accumulated interval (`0.0` when idle).
    pub fn mean_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }
}

/// RAPL-style accumulating energy meter with named stages.
///
/// # Examples
///
/// ```
/// use hermes_metrics::EnergyMeter;
/// let mut meter = EnergyMeter::new();
/// meter.record("retrieval", 250.0, 0.4); // 250 W for 0.4 s
/// meter.record("prefill", 300.0, 0.1);
/// assert_eq!(meter.total_joules(), 250.0 * 0.4 + 300.0 * 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    stages: Vec<(String, StageEnergy)>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `watts` drawn for `seconds` under the stage label.
    ///
    /// # Panics
    ///
    /// Panics if `watts` or `seconds` is negative.
    pub fn record(&mut self, stage: &str, watts: f64, seconds: f64) {
        assert!(watts >= 0.0, "negative power");
        assert!(seconds >= 0.0, "negative duration");
        let entry = match self.stages.iter_mut().find(|(name, _)| name == stage) {
            Some((_, e)) => e,
            None => {
                self.stages.push((stage.to_string(), StageEnergy::default()));
                &mut self.stages.last_mut().expect("just pushed").1
            }
        };
        entry.joules += watts * seconds;
        entry.seconds += seconds;
    }

    /// Adds a raw joule count without a duration (e.g. fixed per-op cost).
    pub fn record_joules(&mut self, stage: &str, joules: f64) {
        assert!(joules >= 0.0, "negative energy");
        let entry = match self.stages.iter_mut().find(|(name, _)| name == stage) {
            Some((_, e)) => e,
            None => {
                self.stages.push((stage.to_string(), StageEnergy::default()));
                &mut self.stages.last_mut().expect("just pushed").1
            }
        };
        entry.joules += joules;
    }

    /// Energy of one stage (`None` if the stage never recorded).
    pub fn stage(&self, stage: &str) -> Option<StageEnergy> {
        self.stages
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, e)| *e)
    }

    /// Stage labels in first-recorded order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Sum of joules across all stages.
    pub fn total_joules(&self) -> f64 {
        self.stages.iter().map(|(_, e)| e.joules).sum()
    }

    /// Merges another meter's stages into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (name, e) in &other.stages {
            self.record(name, 0.0, 0.0);
            let entry = self
                .stages
                .iter_mut()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e)
                .expect("just ensured");
            entry.joules += e.joules;
            entry.seconds += e.seconds;
        }
    }
}

/// Queries per second given a batch size and per-batch latency.
///
/// # Panics
///
/// Panics if `batch_latency_s` is not positive.
pub fn qps(batch_size: usize, batch_latency_s: f64) -> f64 {
    assert!(batch_latency_s > 0.0, "latency must be positive");
    batch_size as f64 / batch_latency_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let mut m = EnergyMeter::new();
        m.record("x", 100.0, 2.0);
        assert_eq!(m.total_joules(), 200.0);
        assert_eq!(m.stage("x").unwrap().mean_watts(), 100.0);
    }

    #[test]
    fn stages_accumulate_independently() {
        let mut m = EnergyMeter::new();
        m.record("a", 10.0, 1.0);
        m.record("b", 20.0, 1.0);
        m.record("a", 10.0, 1.0);
        assert_eq!(m.stage("a").unwrap().joules, 20.0);
        assert_eq!(m.stage("b").unwrap().joules, 20.0);
        assert_eq!(m.stage_names(), vec!["a", "b"]);
    }

    #[test]
    fn record_joules_skips_duration() {
        let mut m = EnergyMeter::new();
        m.record_joules("fixed", 5.5);
        let s = m.stage("fixed").unwrap();
        assert_eq!(s.joules, 5.5);
        assert_eq!(s.seconds, 0.0);
        assert_eq!(s.mean_watts(), 0.0);
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.record("r", 10.0, 1.0);
        let mut b = EnergyMeter::new();
        b.record("r", 10.0, 3.0);
        b.record("s", 1.0, 1.0);
        a.merge(&b);
        assert_eq!(a.stage("r").unwrap().joules, 40.0);
        assert_eq!(a.stage("s").unwrap().joules, 1.0);
    }

    #[test]
    fn qps_matches_paper_arithmetic() {
        // Figure 4: 128-query batch in 0.97 s ≈ 131 QPS.
        let v = qps(128, 0.97);
        assert!((v - 131.0).abs() < 1.0, "{v}");
    }

    #[test]
    #[should_panic(expected = "negative power")]
    fn negative_power_rejected() {
        EnergyMeter::new().record("x", -1.0, 1.0);
    }
}
