//! Scanned-code accounting across a query stream, split by execution
//! stage.
//!
//! The execution engine in `hermes-core` reports per-query work as
//! route-stage and deep-stage code counts; this accumulator folds a
//! stream of those pairs into the totals the evaluation harness prints
//! (codes per query, route-stage share). It lives here rather than in
//! `hermes-core` because the metrics crate sits below core in the
//! dependency graph — callers pass plain numbers.

/// Accumulated scan work for a stream of queries.
///
/// # Examples
///
/// ```
/// use hermes_metrics::CostBreakdown;
/// let mut cost = CostBreakdown::new();
/// cost.record(100, 900);  // one query: 100 routing codes, 900 deep
/// cost.record(120, 880);
/// assert_eq!(cost.total_codes(), 2000);
/// assert_eq!(cost.mean_codes_per_query(), 1000.0);
/// assert_eq!(cost.route_share(), 0.11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Codes scanned by the route stage (sampling or centroid ranking).
    pub route_codes: usize,
    /// Codes scanned by deep searches.
    pub deep_codes: usize,
    /// Queries recorded.
    pub queries: usize,
}

impl CostBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        CostBreakdown::default()
    }

    /// Folds one query's stage costs in.
    pub fn record(&mut self, route_codes: usize, deep_codes: usize) {
        self.route_codes += route_codes;
        self.deep_codes += deep_codes;
        self.queries += 1;
    }

    /// Codes scanned across both stages.
    pub fn total_codes(&self) -> usize {
        self.route_codes + self.deep_codes
    }

    /// Mean codes per recorded query (`0.0` when empty).
    pub fn mean_codes_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_codes() as f64 / self.queries as f64
        }
    }

    /// Fraction of all scanned codes spent on routing (`0.0` when no
    /// work was recorded) — the overhead the paper argues stays small
    /// next to the deep searches it avoids.
    pub fn route_share(&self) -> f64 {
        if self.total_codes() == 0 {
            0.0
        } else {
            self.route_codes as f64 / self.total_codes() as f64
        }
    }

    /// Combines another breakdown into this one (e.g. per-thread
    /// accumulators folded at the end of a batch).
    pub fn merge(&mut self, other: &CostBreakdown) {
        self.route_codes += other.route_codes;
        self.deep_codes += other.deep_codes;
        self.queries += other.queries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_stages() {
        let mut c = CostBreakdown::new();
        c.record(10, 90);
        c.record(30, 70);
        assert_eq!(c.route_codes, 40);
        assert_eq!(c.deep_codes, 160);
        assert_eq!(c.queries, 2);
        assert_eq!(c.total_codes(), 200);
        assert_eq!(c.route_share(), 0.2);
        assert_eq!(c.mean_codes_per_query(), 100.0);
    }

    #[test]
    fn empty_breakdown_has_zero_rates() {
        let c = CostBreakdown::new();
        assert_eq!(c.mean_codes_per_query(), 0.0);
        assert_eq!(c.route_share(), 0.0);
    }

    #[test]
    fn folding_an_empty_stream_is_the_identity() {
        // Merging an empty breakdown (a stream that produced no queries)
        // must leave the accumulator untouched — in both directions.
        let mut acc = CostBreakdown::new();
        acc.record(100, 900);
        let before = acc;
        acc.merge(&CostBreakdown::new());
        assert_eq!(acc, before);

        let mut empty = CostBreakdown::new();
        empty.merge(&before);
        assert_eq!(empty, before);

        // And folding nothing at all stays all-zero.
        let folded = [].iter().fold(CostBreakdown::new(), |mut c, &(r, d)| {
            c.record(r, d);
            c
        });
        assert_eq!(folded, CostBreakdown::new());
        assert_eq!(folded.total_codes(), 0);
        assert_eq!(folded.mean_codes_per_query(), 0.0);
        assert_eq!(folded.route_share(), 0.0);
    }

    #[test]
    fn folding_a_single_query_stream_matches_its_only_query() {
        let folded = [(70usize, 930usize)]
            .iter()
            .fold(CostBreakdown::new(), |mut c, &(r, d)| {
                c.record(r, d);
                c
            });
        assert_eq!(folded.queries, 1);
        assert_eq!(folded.route_codes, 70);
        assert_eq!(folded.deep_codes, 930);
        assert_eq!(folded.total_codes(), 1000);
        // With one query, the mean is that query's total exactly.
        assert_eq!(folded.mean_codes_per_query(), 1000.0);
        assert_eq!(folded.route_share(), 0.07);
        // A single-element merge agrees with a single-element record.
        let mut merged = CostBreakdown::new();
        merged.merge(&folded);
        assert_eq!(merged, folded);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one() {
        let mut a = CostBreakdown::new();
        a.record(5, 45);
        let mut b = CostBreakdown::new();
        b.record(15, 35);
        b.record(0, 100);
        a.merge(&b);
        let mut whole = CostBreakdown::new();
        whole.record(5, 45);
        whole.record(15, 35);
        whole.record(0, 100);
        assert_eq!(a, whole);
    }
}
