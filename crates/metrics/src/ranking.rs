//! Ranked-retrieval quality metrics.
//!
//! The paper evaluates retrieval quality with Normalized Discounted
//! Cumulative Gain (NDCG), using the documents returned by an exhaustive
//! brute-force search as ground truth (Section 5). Relevance is graded by
//! ground-truth rank: the true nearest neighbor has the highest grade,
//! the k-th a grade of 1, anything outside the truth list a grade of 0.

use hermes_math::Neighbor;

/// Graded relevance of `doc` given the ground-truth ranking: `k` for the
/// top hit down to `1` for the k-th, `0` for misses.
fn grade(truth: &[u64], doc: u64) -> f64 {
    match truth.iter().position(|&t| t == doc) {
        Some(rank) => (truth.len() - rank) as f64,
        None => 0.0,
    }
}

/// NDCG@k of `retrieved` against the brute-force `truth` ranking.
///
/// Returns a value in `[0, 1]`; `1.0` means the retrieved prefix is
/// exactly the ideal ordering. An empty truth list yields `1.0` (nothing
/// to get wrong), matching the convention used by the paper's scripts.
///
/// # Examples
///
/// ```
/// use hermes_metrics::ndcg_at_k;
/// let truth = [10, 11, 12];
/// assert_eq!(ndcg_at_k(&truth, &[10, 11, 12], 3), 1.0);
/// assert!(ndcg_at_k(&truth, &[12, 11, 10], 3) < 1.0);
/// assert_eq!(ndcg_at_k(&truth, &[1, 2, 3], 3), 0.0);
/// ```
pub fn ndcg_at_k(truth: &[u64], retrieved: &[u64], k: usize) -> f64 {
    if truth.is_empty() || k == 0 {
        return 1.0;
    }
    let k = k.min(truth.len());
    let dcg: f64 = retrieved
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &doc)| grade(truth, doc) / ((i + 2) as f64).log2())
        .sum();
    // Ideal DCG: grades k, k-1, ... 1 in order.
    let idcg: f64 = (0..k)
        .map(|i| (truth.len() - i) as f64 / ((i + 2) as f64).log2())
        .sum();
    (dcg / idcg).clamp(0.0, 1.0)
}

/// Fraction of the top-`k` ground-truth documents present anywhere in
/// `retrieved` — the paper's recall metric for Table 1.
pub fn recall_at_k(truth: &[u64], retrieved: &[u64], k: usize) -> f64 {
    if truth.is_empty() || k == 0 {
        return 1.0;
    }
    let k = k.min(truth.len());
    let hits = truth[..k]
        .iter()
        .filter(|t| retrieved.contains(t))
        .count();
    hits as f64 / k as f64
}

/// Position-insensitive overlap between two top-`k` lists.
pub fn overlap_at_k(a: &[u64], b: &[u64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let ka = k.min(a.len());
    if ka == 0 {
        return 1.0;
    }
    let hits = a[..ka].iter().filter(|x| b[..k.min(b.len())].contains(x)).count();
    hits as f64 / ka as f64
}

/// Extracts the id list from search hits — adapter from index output to
/// the metric functions.
pub fn ids(hits: &[Neighbor]) -> Vec<u64> {
    hits.iter().map(|n| n.id).collect()
}

/// Mean of a metric over a query set.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        assert_eq!(ndcg_at_k(&[1, 2, 3, 4], &[1, 2, 3, 4], 4), 1.0);
    }

    #[test]
    fn reversed_ranking_scores_below_one_but_above_zero() {
        let s = ndcg_at_k(&[1, 2, 3, 4], &[4, 3, 2, 1], 4);
        assert!(s > 0.5 && s < 1.0, "{s}");
    }

    #[test]
    fn disjoint_ranking_scores_zero() {
        assert_eq!(ndcg_at_k(&[1, 2, 3], &[7, 8, 9], 3), 0.0);
    }

    #[test]
    fn swapping_top_two_hurts_more_than_bottom_two() {
        let truth = [1, 2, 3, 4];
        let top_swap = ndcg_at_k(&truth, &[2, 1, 3, 4], 4);
        let bottom_swap = ndcg_at_k(&truth, &[1, 2, 4, 3], 4);
        assert!(top_swap < bottom_swap);
    }

    #[test]
    fn ndcg_monotone_in_added_correct_results() {
        let truth = [1, 2, 3, 4, 5];
        let partial = ndcg_at_k(&truth, &[1, 2], 5);
        let fuller = ndcg_at_k(&truth, &[1, 2, 3], 5);
        assert!(fuller > partial);
    }

    #[test]
    fn empty_truth_is_vacuously_perfect() {
        assert_eq!(ndcg_at_k(&[], &[1, 2], 3), 1.0);
        assert_eq!(recall_at_k(&[], &[1], 3), 1.0);
    }

    #[test]
    fn recall_counts_membership_not_order() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[4, 3, 2, 1], 4), 1.0);
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1, 2, 9, 9], 4), 0.5);
    }

    #[test]
    fn recall_limits_to_available_truth() {
        assert_eq!(recall_at_k(&[1, 2], &[1, 2], 10), 1.0);
    }

    #[test]
    fn overlap_is_symmetric_for_equal_length_lists() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5, 6];
        assert_eq!(overlap_at_k(&a, &b, 4), overlap_at_k(&b, &a, 4));
        assert_eq!(overlap_at_k(&a, &b, 4), 0.5);
    }

    #[test]
    fn ids_extracts_in_order() {
        let hits = vec![Neighbor::new(5, 0.9), Neighbor::new(2, 0.8)];
        assert_eq!(ids(&hits), vec![5, 2]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(Vec::<f64>::new()), 0.0);
        assert_eq!(mean(vec![1.0, 2.0, 3.0]), 2.0);
    }
}
