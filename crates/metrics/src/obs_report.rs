//! Renders `hermes-obs` state — tail-latency attribution and SLO burn
//! accounting — as the ASCII tables `hermes report` and `hermes stats
//! --slo` print.
//!
//! The numbers come straight from [`Attribution`] / [`SloTracker`]
//! accessors; this module only formats. Both tables are deterministic
//! for a seeded run because everything upstream is.

use hermes_obs::{Attribution, Phase, SloTracker};

use crate::report::{fmt, Row, Table};

/// Quantiles the attribution table reports, tail-first importance order.
pub const REPORT_QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// One row per `class × quantile`: the phase breakdown of the requests
/// in that quantile's sojourn bucket, plus the attribution verdict
/// (which phase dominates). Classes without traffic are skipped.
pub fn phase_breakdown_table(attr: &Attribution) -> Table {
    let mut t = Table::new(
        "tail-latency attribution (mean ns per phase in the quantile's sojourn bucket)",
        &[
            "class",
            "q",
            "sojourn>=ns",
            "n",
            "queue_wait",
            "cache_probe",
            "route",
            "deep",
            "residual",
            "dominant",
        ],
    );
    for class in attr.classes() {
        if class.count() == 0 {
            continue;
        }
        for q in REPORT_QUANTILES {
            let Some(b) = class.breakdown_at(q) else {
                continue;
            };
            let mut cells = vec![
                format!("p{:02.0}", q * 100.0),
                b.sojourn_floor_ns.to_string(),
                b.count.to_string(),
            ];
            cells.extend(
                Phase::ALL
                    .iter()
                    .map(|p| fmt(b.mean_phase_ns[p.index()], 0)),
            );
            cells.push(b.dominant_phase().label().to_string());
            t.push(Row::new(class.label(), cells));
        }
    }
    t
}

/// One row per class: lifetime SLO counters, lifetime bad fraction, and
/// the burn rate over the tracker's sliding window.
pub fn slo_table(slo: &SloTracker) -> Table {
    let mut t = Table::new(
        "slo accounting",
        &[
            "class", "target_ns", "served", "hit", "miss", "shed", "expired", "stale",
            "bad_frac", "burn",
        ],
    );
    for (i, class) in slo.classes().iter().enumerate() {
        let c = class.counters();
        t.push(Row::new(
            class.label(),
            vec![
                class
                    .target_ns()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                c.served.to_string(),
                c.deadline_hit.to_string(),
                c.deadline_miss.to_string(),
                c.shed_queue_full.to_string(),
                c.expired.to_string(),
                c.served_stale.to_string(),
                fmt(c.bad_fraction(), 4),
                fmt(slo.burn_rate(i), 2),
            ],
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_obs::{CachePath, PhaseNs, RequestId, RequestTimeline, ShedCause, SloPolicy};

    fn timeline(class: usize, arrival: u64, start: u64, finish: u64) -> RequestTimeline {
        let mut svc = PhaseNs::new();
        svc.add(Phase::Deep, finish.saturating_sub(start));
        RequestTimeline::from_dispatch(
            RequestId(1),
            1,
            class,
            ["interactive", "standard", "batch"][class],
            arrival,
            start,
            finish,
            1,
            &svc,
            CachePath::Computed,
            None,
        )
    }

    #[test]
    fn attribution_table_renders_per_class_quantiles() {
        let mut attr = Attribution::new(&["interactive", "standard", "batch"]);
        for i in 0..50u64 {
            let slow = if i % 10 == 0 { 4_000 } else { 100 };
            attr.record(&timeline(0, i * 7, i * 7 + 10, i * 7 + 10 + slow));
        }
        let rendered = phase_breakdown_table(&attr).render();
        assert!(rendered.contains("interactive"));
        assert!(rendered.contains("p50"));
        assert!(rendered.contains("p99"));
        assert!(rendered.contains("deep"));
        assert!(!rendered.contains("standard"), "idle classes are skipped");
    }

    #[test]
    fn slo_table_renders_counters_and_burn() {
        let mut slo = SloTracker::new(
            &["interactive", "standard", "batch"],
            SloPolicy::new(vec![Some(500), Some(5_000), None]).with_budget(0.1),
        );
        slo.on_completion(&timeline(0, 0, 10, 100));
        slo.on_completion(&timeline(0, 0, 10, 2_000));
        slo.on_shed(1, 50, ShedCause::QueueFull);
        let rendered = slo_table(&slo).render();
        assert!(rendered.contains("interactive"));
        assert!(rendered.contains("batch"));
        assert!(rendered.contains('-'), "no-target classes show a dash");
    }
}
