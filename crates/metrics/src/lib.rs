//! Evaluation metrics and reporting for the Hermes reproduction.
//!
//! * [`ranking`] — NDCG (the paper's retrieval-quality metric, computed
//!   against a brute-force ground truth), recall@k and overlap.
//! * [`truth`] — the brute-force oracle itself, fanned out per query on
//!   the shared `hermes-pool` executor (the slowest step of every
//!   accuracy bench), plus batched NDCG.
//! * [`energy`] — joule/watt accounting mirroring the paper's RAPL/pynvml
//!   measurements, plus throughput helpers.
//! * [`cost`] — scanned-code accounting split by execution-engine stage
//!   (route vs deep), folded over a query stream.
//! * [`cache_report`] — cache hit/miss/stale/bypass roll-ups and the
//!   adaptive-depth histogram printed by `hermes stats`.
//! * [`obs_report`] — tail-latency attribution and SLO burn tables over
//!   `hermes-obs` state: the renderer behind `hermes report`.
//! * [`report`] — ASCII tables and series used by every bench binary to
//!   print paper-vs-measured rows.
//! * [`trace_report`] — folds a `hermes-trace` snapshot into those same
//!   tables (span latency percentiles, counter roll-ups): the renderer
//!   behind `hermes stats`.

pub mod cache_report;
pub mod cost;
pub mod energy;
pub mod obs_report;
pub mod ranking;
pub mod report;
pub mod trace_report;
pub mod truth;

pub use cache_report::{CacheEffect, DepthHistogram};
pub use obs_report::{phase_breakdown_table, slo_table};
pub use cost::CostBreakdown;
pub use energy::{EnergyMeter, StageEnergy};
pub use ranking::{ndcg_at_k, overlap_at_k, recall_at_k};
pub use report::{normalize_to_max, Row, Table};
pub use truth::{batch_ndcg_at_k, ground_truth};
