//! ASCII reporting used by the bench binaries.
//!
//! Every figure/table binary prints its rows through [`Table`], always
//! with a `paper` column next to the `measured` column so EXPERIMENTS.md
//! can be regenerated mechanically.


/// One row of a report table: a label plus formatted cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Remaining cells, pre-formatted.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from a label and cell values.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// A fixed-column ASCII table.
///
/// # Examples
///
/// ```
/// use hermes_metrics::{Row, Table};
/// let mut t = Table::new("Table 1", &["scheme", "recall", "bytes"]);
/// t.push(Row::new("SQ8", vec!["0.94".into(), "768".into()]));
/// let rendered = t.render();
/// assert!(rendered.contains("SQ8"));
/// assert!(rendered.contains("recall"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// Creates a table with a title and column headers (the first header
    /// names the label column).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header allows.
    pub fn push(&mut self, row: Row) {
        assert!(
            row.cells.len() < self.headers.len(),
            "row wider than header"
        );
        self.rows.push(row);
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, c) in row.cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut header = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        out.push_str(header.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut line = format!("{:<width$}  ", row.label, width = widths[0]);
            for (i, c) in row.cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i + 1]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len())
        ));
        for row in &self.rows {
            let mut cells = vec![row.label.clone()];
            cells.extend(row.cells.iter().cloned());
            while cells.len() < self.headers.len() {
                cells.push(String::new());
            }
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

/// Normalizes a series so its maximum is `1.0` — how the paper plots
/// latency/energy comparisons (Figures 14, 16, 17, 21). An all-zero series
/// is returned unchanged.
pub fn normalize_to_max(values: &[f64]) -> Vec<f64> {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return values.to_vec();
    }
    values.iter().map(|v| v / max).collect()
}

/// Formats a float with `digits` significant decimals, trimming noise.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_cells() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(Row::new("r1", vec!["x".into()]));
        t.push(Row::new("r2", vec!["y".into()]));
        let s = t.render();
        for needle in ["T", "a", "b", "r1", "r2", "x", "y"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn markdown_has_header_separator() {
        let mut t = Table::new("M", &["col", "v"]);
        t.push(Row::new("row", vec!["1".into()]));
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| row | 1 |"));
    }

    #[test]
    fn normalize_to_max_peaks_at_one() {
        let n = normalize_to_max(&[2.0, 4.0, 1.0]);
        assert_eq!(n, vec![0.5, 1.0, 0.25]);
    }

    #[test]
    fn normalize_handles_degenerate_series() {
        assert_eq!(normalize_to_max(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert!(normalize_to_max(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn overwide_rows_rejected() {
        let mut t = Table::new("T", &["only"]);
        t.push(Row::new("r", vec!["too".into(), "many".into()]));
    }

    #[test]
    fn fmt_controls_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(9.0, 0), "9");
    }
}
