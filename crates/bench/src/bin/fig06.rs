//! Figure 6: TTFT and end-to-end latency of the baseline RAG pipeline vs
//! datastore size (batch 32, stride 16, 512 in / 256 out, Gemma2-9B).

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_metrics::{Row, Table};
use hermes_sim::{Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig};

fn main() {
    let serving = ServingConfig::paper_default().with_batch(32);

    let mut ttft = Table::new(
        "Figure 6 (left) — TTFT breakdown, baseline monolithic RAG (batch 32)",
        &[
            "datastore",
            "encode (s)",
            "retrieval (s)",
            "prefill (s)",
            "TTFT (s)",
            "retrieval share",
        ],
    );
    for tokens in [10_000_000_000u64, 100_000_000_000] {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 1));
        let r = sim.run(
            &serving,
            RetrievalScheme::Monolithic,
            PipelinePolicy::baseline(),
            DvfsMode::Off,
        );
        ttft.push(Row::new(
            format_tokens(tokens),
            vec![
                format!("{:.3}", r.encode_s),
                format!("{:.2}", r.retrieval_per_stride_s),
                format!("{:.3}", r.prefill_s),
                format!("{:.2}", r.ttft_s),
                format!("{:.1}%", 100.0 * r.retrieval_per_stride_s / r.ttft_s),
            ],
        ));
    }
    emit("fig06_ttft", &ttft);

    let paper_e2e = [
        (100_000_000u64, 12.0),
        (10_000_000_000, f64::NAN),
        (100_000_000_000, 101.8),
        (1_000_000_000_000, 909.1),
    ];
    let mut e2e = Table::new(
        "Figure 6 (right) — E2E latency, baseline RAG (stride 16, 256 out)",
        &["datastore", "paper (s)", "measured (s)"],
    );
    for (tokens, paper) in paper_e2e {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 1));
        let r = sim.run(
            &serving,
            RetrievalScheme::Monolithic,
            PipelinePolicy::baseline(),
            DvfsMode::Off,
        );
        e2e.push(Row::new(
            format_tokens(tokens),
            vec![
                if paper.is_nan() {
                    "-".to_string()
                } else {
                    format!("{paper:.1}")
                },
                format!("{:.1}", r.e2e_s),
            ],
        ));
    }
    emit("fig06_e2e", &e2e);

    println!(
        "shape check: retrieval dominates TTFT at >=10B tokens and E2E grows\n\
         ~linearly with datastore size, reaching minutes at 1T."
    );
}
