//! Extension experiment: persistence — cold start and rebalance pause.
//!
//! Two scaling claims the mutable/persistent store must hold:
//!
//! * **Cold start is independent of store size.** Opening a paged
//!   (`HPGS`) image with [`PagedStoreReader::open`] reads the header,
//!   the per-page checksum table, and the meta section — never the
//!   shard payloads — so an opened reader can answer `num_clusters` /
//!   `cluster_sizes` / `generation` immediately and materialize shards
//!   lazily. The bench compares that against fully materializing the
//!   legacy monolithic (`HCLS`) image via `from_bytes`, and asserts the
//!   paged open is **at least 5x faster at the largest store** (in
//!   practice it is orders of magnitude).
//! * **Rebalance pause is a per-cluster cost, not a per-store cost.**
//!   One incremental [`Rebalancer`] step re-clusters a single shard,
//!   so its pause grows with the *cluster* size while a stop-the-world
//!   `rebuild` grows with the *store* size. The table reports both so
//!   the gap is visible across the sweep.
//!
//! Set `HERMES_SMOKE=1` for a seconds-scale pass.

use hermes_bench::{emit, ratio, time_it, BENCH_SEED};
use hermes_core::{
    ClusteredStore, HermesConfig, PagedStoreReader, RebalanceConfig, Rebalancer,
};
use hermes_datagen::{Corpus, CorpusSpec};
use hermes_math::rng::seeded_rng;
use hermes_metrics::{Row, Table};

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

fn ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (out, t) = time_it(&mut f);
        std::hint::black_box(out);
        best = best.min(t);
    }
    best
}

fn main() {
    let (sizes, dim, topics, clusters, reps): (&[usize], usize, usize, usize, usize) = if smoke() {
        (&[1_500, 4_000], 24, 6, 6, 3)
    } else {
        (&[5_000, 20_000, 60_000], 48, 10, 10, 7)
    };

    let mut table = Table::new(
        format!(
            "Extension — persistence: cold start and rebalance pause vs store size \
             ({dim} dims, {topics} topics, {clusters} clusters, best of {reps}, \
             seed {BENCH_SEED:#x})"
        ),
        &[
            "docs",
            "image (MB)",
            "open (ms)",
            "full load (ms)",
            "open speedup",
            "one shard (ms)",
            "rebalance step (ms)",
            "full rebuild (ms)",
        ],
    );

    let dir = std::env::temp_dir();
    let paged_path = dir.join(format!("hermes_ext_persist_{}.hpgs", std::process::id()));
    let legacy_path = dir.join(format!("hermes_ext_persist_{}.hcls", std::process::id()));

    let mut final_speedup = 0.0f64;
    for (i, &docs) in sizes.iter().enumerate() {
        let corpus =
            Corpus::generate(CorpusSpec::new(docs, dim, topics).with_seed(BENCH_SEED + 80 + i as u64));
        let config = HermesConfig::new(clusters)
            .with_clusters_to_search(3)
            .with_seed(BENCH_SEED + 81);
        let mut store = ClusteredStore::build(corpus.embeddings(), &config).unwrap();

        // Skew the store (a burst of near-duplicate inserts piling onto
        // cluster 0's running centroid) so the rebalancer has real work.
        let mut rng = seeded_rng(BENCH_SEED + 82 + i as u64);
        for j in 0..docs / 2 {
            let v: Vec<f32> = store
                .split_centroid(0)
                .iter()
                .map(|&c| c + (rng.next_f32() - 0.5) * 0.05)
                .collect();
            store.insert(1_000_000 + j as u64, &v).unwrap();
        }

        // -- Cold start: paged open vs full monolithic materialization.
        store.save(&paged_path).unwrap();
        std::fs::write(&legacy_path, store.to_bytes()).unwrap();
        let image_mb = std::fs::metadata(&paged_path).unwrap().len() as f64 / (1024.0 * 1024.0);

        let open_s = best_of(reps, || PagedStoreReader::open(&paged_path).unwrap());
        let full_s = best_of(reps, || {
            let bytes = std::fs::read(&legacy_path).unwrap();
            ClusteredStore::from_bytes(&bytes).unwrap()
        });
        let shard_s = best_of(reps, || {
            let mut reader = PagedStoreReader::open(&paged_path).unwrap();
            reader.load_shard(0).unwrap()
        }) - open_s;

        // An opened reader answers metadata queries without touching
        // shard pages — sanity-check it agrees with the live store.
        let reader = PagedStoreReader::open(&paged_path).unwrap();
        assert_eq!(reader.num_clusters(), store.num_clusters());
        assert_eq!(reader.len(), store.len());
        assert_eq!(reader.generation(), store.generation());

        // -- Rebalance: one incremental step vs stop-the-world rebuild.
        let reb = Rebalancer::new(RebalanceConfig {
            max_imbalance: 2.5,
            ..RebalanceConfig::default()
        });
        let action = reb.next_action(&store);
        assert!(action.is_some(), "skewed store must need rebalancing");
        let step_s = best_of(reps, || reb.apply(&store, action.unwrap()).unwrap());
        let rebuild_s = best_of(1.max(reps / 2), || reb.rebuild(&store).unwrap());

        let speedup = full_s / open_s;
        final_speedup = speedup;
        table.push(Row::new(
            format!("{docs}"),
            vec![
                format!("{image_mb:.1}"),
                ms(open_s),
                ms(full_s),
                ratio(full_s, open_s),
                ms(shard_s.max(0.0)),
                ms(step_s),
                ms(rebuild_s),
            ],
        ));
    }
    std::fs::remove_file(&paged_path).ok();
    std::fs::remove_file(&legacy_path).ok();

    assert!(
        final_speedup >= 5.0,
        "cold start must be at least 5x faster than full materialization \
         at the largest store (got {final_speedup:.1}x)"
    );

    if smoke() {
        println!("{}", table.render());
        println!("(smoke mode: bench_results/ext_persist.md left untouched)\n");
    } else {
        emit("ext_persist", &table);
    }
    println!(
        "paged open touched only header + checksum table + meta pages \
         ({final_speedup:.0}x faster than full from_bytes at the largest store);\n\
         one rebalance step re-clusters a single shard while rebuild walks \
         the whole store."
    );
}
