//! Figure 7: retrieval throughput, energy per batch and index memory as
//! the datastore scales 100M → 1T tokens (IVF-SQ8, single CPU node).

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_datagen::DatastoreScale;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::RetrievalModel;

fn main() {
    let model = RetrievalModel::default();
    let sizes = [
        100_000_000u64,
        1_000_000_000,
        10_000_000_000,
        100_000_000_000,
        1_000_000_000_000,
    ];

    let mut table = Table::new(
        "Figure 7 — IVF-SQ8 scaling (batch 32, nProbe 128, Xeon Gold 6448Y)",
        &[
            "datastore",
            "QPS",
            "J/batch",
            "memory",
            "paper anchors",
        ],
    );
    for tokens in sizes {
        let qps = model.throughput_qps(tokens, 32, 128);
        let joules = model.batch_energy(tokens, 32, 128);
        let bytes = DatastoreScale::paper(tokens).index_bytes_sq8();
        let anchor = match tokens {
            100_000_000_000 => "5.69 QPS, ~1124 J",
            1_000_000_000_000 => "~10 TB",
            _ => "-",
        };
        table.push(Row::new(
            format_tokens(tokens),
            vec![
                format!("{qps:.1}"),
                format!("{joules:.0}"),
                human_bytes(bytes),
                anchor.to_string(),
            ],
        ));
    }
    emit("fig07", &table);

    println!(
        "shape check: 10x more tokens => ~10x less throughput, ~10x more\n\
         energy, ~10x more memory (all three panels are linear in size)."
    );
}

fn human_bytes(b: u64) -> String {
    if b >= 1_000_000_000_000 {
        format!("{:.1} TB", b as f64 / 1e12)
    } else if b >= 1_000_000_000 {
        format!("{:.0} GB", b as f64 / 1e9)
    } else {
        format!("{:.0} MB", b as f64 / 1e6)
    }
}
