//! Figure 4: HNSW vs IVF — latency, throughput (batch 32 and 128) and
//! memory footprint, compared **at matched recall** as the paper does
//! ("significantly higher throughput with a similar recall").
//!
//! Measured on real in-process indices over the synthetic corpus, plus
//! the memory model's projection to the paper's 10B-token scale.

use hermes_bench::{emit, time_it, EvalSetup, BENCH_SEED};
use hermes_datagen::DatastoreScale;
use hermes_index::{HnswIndex, IvfIndex, SearchParams, VectorIndex, VectorStorage};
use hermes_math::Metric;
use hermes_metrics::{recall_at_k, Row, Table};
use hermes_quant::CodecSpec;

const RECALL_TARGET: f64 = 0.94; // the paper's IVF-SQ8 operating point

fn mean_recall(
    setup: &EvalSetup,
    index: &dyn VectorIndex,
    params: &SearchParams,
) -> f64 {
    let mut sum = 0.0;
    for (q, truth) in setup.queries.embeddings().iter_rows().zip(&setup.truth) {
        let ids: Vec<u64> = index
            .search(q, 10, params)
            .expect("search")
            .iter()
            .map(|n| n.id)
            .collect();
        sum += recall_at_k(truth, &ids, 10);
    }
    sum / setup.queries.len() as f64
}

fn main() {
    let setup = EvalSetup::new(80_000, 48, 10, 128, 10);
    let data = setup.corpus.embeddings();

    let ivf = IvfIndex::builder()
        .codec(CodecSpec::Sq8)
        .metric(Metric::InnerProduct)
        .seed(BENCH_SEED)
        .build(data)
        .expect("build IVF");
    let hnsw = HnswIndex::builder()
        .m(16)
        .ef_construction(80)
        .storage(VectorStorage::F16)
        .metric(Metric::InnerProduct)
        .seed(BENCH_SEED)
        .build(data)
        .expect("build HNSW");

    // Find the cheapest operating point of each index reaching the target
    // recall.
    let ivf_params = [4usize, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&np| SearchParams::new().with_nprobe(np))
        .find(|p| mean_recall(&setup, &ivf, p) >= RECALL_TARGET)
        .unwrap_or_else(|| SearchParams::new().with_nprobe(256));
    let hnsw_params = [16usize, 24, 32, 48, 64, 128]
        .iter()
        .map(|&ef| SearchParams::new().with_ef_search(ef))
        .find(|p| mean_recall(&setup, &hnsw, p) >= RECALL_TARGET)
        .unwrap_or_else(|| SearchParams::new().with_ef_search(128));
    let ivf_recall = mean_recall(&setup, &ivf, &ivf_params);
    let hnsw_recall = mean_recall(&setup, &hnsw, &hnsw_params);

    let queries = setup.queries.to_vecs();
    let mut table = Table::new(
        format!(
            "Figure 4 — HNSW vs IVF at matched recall >= {RECALL_TARGET} \
             (IVF nProbe {}, HNSW ef {})",
            ivf_params.nprobe, hnsw_params.ef_search
        ),
        &["index", "batch", "recall@10", "latency (s)", "QPS", "memory (MB)"],
    );
    let mut lat = std::collections::HashMap::new();
    for batch in [32usize, 128] {
        let qs = &queries[..batch];
        // Repeat to stabilize timing on small batches.
        let reps = 5;
        let (_, ivf_s) = time_it(|| {
            for _ in 0..reps {
                ivf.batch_search(qs, 10, &ivf_params, 1).expect("ivf");
            }
        });
        let (_, hnsw_s) = time_it(|| {
            for _ in 0..reps {
                hnsw.batch_search(qs, 10, &hnsw_params, 1).expect("hnsw");
            }
        });
        let (ivf_s, hnsw_s) = (ivf_s / reps as f64, hnsw_s / reps as f64);
        lat.insert(("ivf", batch), ivf_s);
        lat.insert(("hnsw", batch), hnsw_s);
        for (name, secs, recall, mem) in [
            ("IVF-SQ8", ivf_s, ivf_recall, ivf.memory_bytes()),
            ("HNSW-fp16", hnsw_s, hnsw_recall, hnsw.memory_bytes()),
        ] {
            table.push(Row::new(
                name,
                vec![
                    batch.to_string(),
                    format!("{recall:.3}"),
                    format!("{secs:.4}"),
                    format!("{:.0}", batch as f64 / secs),
                    format!("{:.1}", mem as f64 / 1e6),
                ],
            ));
        }
    }
    emit("fig04_measured", &table);

    // At-scale projection (paper's 10B-token index).
    let ds = DatastoreScale::paper(10_000_000_000);
    let mut proj = Table::new(
        "Figure 4 — memory at 10B tokens (paper: IVF 71 GB, HNSW 166 GB)",
        &["index", "paper (GB)", "model (GB)"],
    );
    proj.push(Row::new(
        "IVF-SQ8",
        vec!["71".into(), format!("{:.0}", ds.index_bytes_sq8() as f64 / 1e9)],
    ));
    proj.push(Row::new(
        "HNSW-fp16",
        vec!["166".into(), format!("{:.0}", ds.index_bytes_hnsw() as f64 / 1e9)],
    ));
    emit("fig04_memory", &proj);

    let speedup = lat[&("ivf", 128)] / lat[&("hnsw", 128)];
    let mem_ratio = hnsw.memory_bytes() as f64 / ivf.memory_bytes() as f64;
    println!(
        "shape check: at matched recall HNSW is {speedup:.2}x faster at batch\n\
         128 (paper ~2.4x at 100M vectors; the graph advantage grows with\n\
         index size) while using {mem_ratio:.2}x the memory (paper ~2.3x)."
    );
}
