//! Figure 5: perplexity vs retrieval stride (quality model) alongside the
//! retrieval latency cost of striding at 10B / 100B tokens.

use hermes_bench::emit;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::RetrievalModel;
use hermes_rag::quality::{retrievals_for, PerplexityModel};
use hermes_rag::PerplexityModel as _Alias;

fn main() {
    let _ = std::marker::PhantomData::<_Alias>;
    let ppl = PerplexityModel::default();
    let retrieval = RetrievalModel::default();

    let mut quality = Table::new(
        "Figure 5 (left) — perplexity vs stride",
        &[
            "stride",
            "GPT-2 762M (no RAG)",
            "GPT-2 1.5B (no RAG)",
            "RETRO-style 578M + retrieval",
        ],
    );
    for stride in [4u32, 8, 16, 32, 64] {
        quality.push(Row::new(
            stride.to_string(),
            vec![
                format!("{:.2}", ppl.lm_perplexity(0.762)),
                format!("{:.2}", ppl.lm_perplexity(1.5)),
                format!("{:.2}", ppl.rag_perplexity(0.578, stride, 0.95)),
            ],
        ));
    }
    emit("fig05_quality", &quality);

    let mut latency = Table::new(
        "Figure 5 (right) — total retrieval seconds for 256 output tokens (batch 32)",
        &["stride", "retrievals", "10B tokens", "100B tokens"],
    );
    for stride in [4u32, 8, 16, 32, 64] {
        let n = retrievals_for(256, stride);
        latency.push(Row::new(
            stride.to_string(),
            vec![
                n.to_string(),
                format!("{:.2}", n as f64 * retrieval.batch_latency(10_000_000_000, 32, 128)),
                format!(
                    "{:.1}",
                    n as f64 * retrieval.batch_latency(100_000_000_000, 32, 128)
                ),
            ],
        ));
    }
    emit("fig05_latency", &latency);

    let r4 = retrievals_for(256, 4) as f64 * retrieval.batch_latency(100_000_000_000, 32, 128);
    let r64 = retrievals_for(256, 64) as f64 * retrieval.batch_latency(100_000_000_000, 32, 128);
    println!(
        "shape check: RETRO-style 578M at stride 4 ({:.2}) matches GPT-2 1.5B ({:.2});\n\
         stride 4 vs 64 at 100B costs {:.1}x more retrieval time (paper: 12.12x E2E blow-up).",
        ppl.rag_perplexity(0.578, 4, 0.95),
        ppl.lm_perplexity(1.5),
        r4 / r64
    );
}
