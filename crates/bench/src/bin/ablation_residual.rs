//! Ablation: residual vs raw encoding inside the IVF index, across
//! codecs — a design choice DESIGN.md calls out. FAISS encodes residuals
//! by default; the paper's Table 1 recalls are for raw encodings, so this
//! bench quantifies what the choice is worth on clustered data.

use hermes_bench::{emit, EvalSetup, BENCH_SEED};
use hermes_index::{IvfIndex, SearchParams, VectorIndex};
use hermes_math::Metric;
use hermes_metrics::{recall_at_k, Row, Table};
use hermes_quant::CodecSpec;

fn mean_recall(setup: &EvalSetup, index: &IvfIndex, nprobe: usize) -> f64 {
    let params = SearchParams::new().with_nprobe(nprobe);
    let mut sum = 0.0;
    for (q, truth) in setup.queries.embeddings().iter_rows().zip(&setup.truth) {
        let ids: Vec<u64> = index
            .search(q, 10, &params)
            .expect("search")
            .iter()
            .map(|n| n.id)
            .collect();
        sum += recall_at_k(truth, &ids, 10);
    }
    sum / setup.queries.len() as f64
}

fn main() {
    const DIM: usize = 48;
    let setup = EvalSetup::new(20_000, DIM, 10, 50, 10);
    let data = setup.corpus.embeddings();

    let mut table = Table::new(
        "Ablation — residual vs raw encoding (IVF, nProbe 32, recall@10)",
        &["codec", "raw", "residual", "delta"],
    );
    for spec in [
        CodecSpec::Sq8,
        CodecSpec::Sq4,
        CodecSpec::Pq { m: DIM / 3 },
        CodecSpec::Pq { m: DIM / 2 },
    ] {
        let build = |residual: bool| {
            IvfIndex::builder()
                .nlist(64)
                .codec(spec)
                .metric(Metric::InnerProduct)
                .seed(BENCH_SEED)
                .residual(residual)
                .build(data)
                .expect("build")
        };
        let raw = mean_recall(&setup, &build(false), 32);
        let res = mean_recall(&setup, &build(true), 32);
        table.push(Row::new(
            spec.label(),
            vec![
                format!("{raw:.3}"),
                format!("{res:.3}"),
                format!("{:+.3}", res - raw),
            ],
        ));
    }
    emit("ablation_residual", &table);

    println!(
        "shape check: residual encoding helps most where the codec is\n\
         coarsest (SQ4/PQ); SQ8 is already near-lossless on this corpus,\n\
         which is why the paper's raw-encoded SQ8 deployment loses little."
    );
}
