//! Extension experiment: cost of the runtime telemetry layer on the
//! flat-scan search path.
//!
//! `hermes-trace`'s design budget says a *disabled* instrumentation site
//! costs one relaxed atomic load — so routing every search through the
//! instrumented `VectorIndex::search` wrapper (which records an
//! `index.scanned_codes` counter when enabled) must be measurably free
//! when telemetry is off. Three variants over the same single-thread
//! flat scans:
//!
//! * `bare`     — `search_with_stats` directly: no telemetry branch at
//!   all, the floor.
//! * `disabled` — the instrumented `search` wrapper with telemetry off:
//!   the is-enabled branch only. The acceptance budget is <= 2%
//!   overhead vs `bare`.
//! * `enabled`  — the same wrapper recording into the thread ring, for
//!   context (this one is allowed to cost something).
//!
//! All variants must return bit-identical hits; the bench asserts it.
//! Timing is reported, not asserted — wall-clock thresholds flake on
//! loaded machines, so `scripts/verify.sh` runs this in smoke mode for
//! the correctness checks and EXPERIMENTS.md records the measured
//! overhead from a quiet full run.
//!
//! Set `HERMES_SMOKE=1` for a seconds-scale pass.

use hermes_bench::{emit, time_it, BENCH_SEED};
use hermes_index::{FlatIndex, SearchParams, VectorIndex};
use hermes_math::rng::seeded_rng;
use hermes_math::{Mat, Metric};
use hermes_metrics::{Row, Table};

const K: usize = 10;

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

fn random_mat(rows: usize, dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    let data: Vec<Vec<f32>> = (0..rows)
        .map(|_| (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
        .collect();
    Mat::from_rows(&data)
}

/// Fastest of `reps` full query sweeps, in seconds.
fn best_time(reps: usize, mut sweep: impl FnMut()) -> f64 {
    sweep(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), secs) = time_it(&mut sweep);
        best = best.min(secs);
    }
    best
}

fn main() {
    let (rows, dim, queries, reps) = if smoke() {
        (2_048, 64, 8, 2)
    } else {
        (16_384, 64, 32, 7)
    };
    let index = FlatIndex::new(random_mat(rows, dim, BENCH_SEED + 90), Metric::InnerProduct);
    let qs = random_mat(queries, dim, BENCH_SEED + 91);
    let params = SearchParams::new();

    // Start from a clean, quiescent telemetry state.
    hermes_trace::disable();
    hermes_trace::clear();

    // Correctness first: all three variants agree bit for bit.
    for q in qs.iter_rows() {
        let bare = index.search_with_stats(q, K, &params).unwrap().0;
        let disabled = index.search(q, K, &params).unwrap();
        hermes_trace::enable();
        let enabled = index.search(q, K, &params).unwrap();
        hermes_trace::disable();
        assert_eq!(bare, disabled, "disabled telemetry changed results");
        assert_eq!(bare, enabled, "enabled telemetry changed results");
    }
    hermes_trace::clear();

    let t_bare = best_time(reps, || {
        for q in qs.iter_rows() {
            std::hint::black_box(index.search_with_stats(q, K, &params).unwrap());
        }
    });
    let t_disabled = best_time(reps, || {
        for q in qs.iter_rows() {
            std::hint::black_box(index.search(q, K, &params).unwrap());
        }
    });
    hermes_trace::enable();
    let t_enabled = best_time(reps, || {
        for q in qs.iter_rows() {
            std::hint::black_box(index.search(q, K, &params).unwrap());
        }
    });
    hermes_trace::disable();
    let snap = hermes_trace::snapshot();
    let recorded = snap.counters().get("index.scanned_codes").map_or(0, |c| c.samples);
    assert!(
        recorded >= queries as u64,
        "enabled runs must have recorded counter samples (got {recorded})"
    );

    let overhead_disabled = (t_disabled / t_bare - 1.0) * 100.0;
    let overhead_enabled = (t_enabled / t_bare - 1.0) * 100.0;
    let mut table = Table::new(
        format!(
            "Extension — telemetry overhead, single-thread flat scan \
             ({rows} rows x {dim} dims, {queries} queries, best of {reps}, k={K})"
        ),
        &["variant", "time (ms)", "overhead vs bare", "budget"],
    );
    table.push(Row::new(
        "bare search_with_stats",
        vec![format!("{:.2}", t_bare * 1e3), "—".into(), "—".into()],
    ));
    table.push(Row::new(
        "instrumented, disabled",
        vec![
            format!("{:.2}", t_disabled * 1e3),
            format!("{overhead_disabled:+.2}%"),
            "<= 2%".into(),
        ],
    ));
    table.push(Row::new(
        "instrumented, enabled",
        vec![
            format!("{:.2}", t_enabled * 1e3),
            format!("{overhead_enabled:+.2}%"),
            "n/a".into(),
        ],
    ));

    if smoke() {
        println!("{}", table.render());
        println!("(smoke mode: bench_results/ext_trace_overhead.md left untouched)\n");
    } else {
        emit("ext_trace_overhead", &table);
    }
    println!(
        "hits were bit-identical across bare/disabled/enabled; the disabled\n\
         variant's only extra work is one relaxed atomic load per query, so\n\
         measured overhead above the 2% budget indicates a perturbed machine\n\
         rather than a telemetry regression."
    );
}
