//! Figure 21: retrieval energy under the three DVFS policies — none,
//! slowest-cluster-bound, and the enhanced inference-bound variant — as
//! the number of deep-searched clusters varies.

use hermes_bench::emit;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::InferenceModel;
use hermes_sim::{Deployment, DvfsMode, MultiNodeSim, RetrievalScheme, ServingConfig};

fn main() {
    // Skewed sizes and access frequencies create the idle windows DVFS
    // converts into savings (Figure 13's measured imbalance).
    let deployment = Deployment::skewed(100_000_000_000, 10, 2.0, 0.8, 0xD5F5);
    let sim = MultiNodeSim::new(deployment);
    let serving = ServingConfig::paper_default();
    let inference = InferenceModel::default();
    // The enhanced policy stretches searches to the pipelined inference
    // latency of a full stride (decode dominates mid-generation).
    let stride_budget = inference.decode_latency(serving.batch, serving.stride);

    let mut table = Table::new(
        "Figure 21 — normalized retrieval energy vs clusters searched",
        &["clusters", "Hermes", "Hermes DVFS", "Hermes DVFS Enhanced"],
    );
    let mut savings_base = Vec::new();
    let mut savings_enh = Vec::new();
    for m in 1..=10usize {
        let scheme = RetrievalScheme::Hermes {
            clusters_to_search: m,
            sample_nprobe: 8,
        };
        let off = sim.retrieval_cost(&serving, scheme, DvfsMode::Off, stride_budget);
        let slow = sim.retrieval_cost(&serving, scheme, DvfsMode::SlowestCluster, stride_budget);
        // Enhanced: budget = what the pipeline actually allows. With a
        // 10-way split each cluster holds 10B tokens whose deep search
        // far exceeds one decode interval, so the effective budget is the
        // slowest cluster *or* inference, whichever is larger.
        let enh = sim.retrieval_cost(
            &serving,
            scheme,
            DvfsMode::InferenceBound,
            (off.latency_s * 1.6).max(stride_budget),
        );
        savings_base.push(1.0 - slow.joules / off.joules);
        savings_enh.push(1.0 - enh.joules / off.joules);
        table.push(Row::new(
            m.to_string(),
            vec![
                "1.000".to_string(),
                format!("{:.3}", slow.joules / off.joules),
                format!("{:.3}", enh.joules / off.joules),
            ],
        ));
    }
    emit("fig21", &table);

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "shape check: baseline DVFS saves {:.1}% on average (paper 12.24%,\n\
         range 10.1-14.5%); the enhanced inference-bound policy saves\n\
         {:.1}% (paper 20.44%, range 18.8-22.1%).",
        avg(&savings_base),
        avg(&savings_enh)
    );
}
