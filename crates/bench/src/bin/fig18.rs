//! Figure 18: retrieval throughput and energy per batch vs the number of
//! clusters deep-searched — Hermes vs the naive all-cluster fan-out.
//! Access frequencies come from a *measured* trace on a real store.

use hermes_bench::{emit, standard_config, BENCH_SEED};
use hermes_core::ClusteredStore;
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_metrics::{Row, Table};
use hermes_sim::{Deployment, DvfsMode, MultiNodeSim, RetrievalScheme, ServingConfig};

fn measured_trace() -> Vec<usize> {
    let corpus = Corpus::generate(CorpusSpec::new(20_000, 32, 10).with_seed(BENCH_SEED));
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(300)
            .with_seed(BENCH_SEED + 1)
            .with_interest_skew(1.0),
    );
    let store = ClusteredStore::build(corpus.embeddings(), &standard_config()).expect("store");
    let qs: Vec<Vec<f32>> = queries
        .embeddings()
        .iter_rows()
        .map(<[f32]>::to_vec)
        .collect();
    store.access_histogram(&qs, 0).expect("trace")
}

fn main() {
    let trace = measured_trace();
    let deployment = Deployment::uniform(100_000_000_000, 10).with_access_counts(&trace);
    let sim = MultiNodeSim::new(deployment);
    let serving = ServingConfig::paper_default();

    let naive = sim.retrieval_cost(&serving, RetrievalScheme::NaiveDistributed, DvfsMode::Off, 0.0);

    let mut table = Table::new(
        "Figure 18 — retrieval QPS and J/batch vs clusters searched (10 nodes, NQ-like trace)",
        &["clusters searched", "QPS", "J/batch", "QPS vs naive", "energy vs naive"],
    );
    let mut at3 = (0.0, 0.0);
    for m in 1..=10usize {
        let cost = sim.retrieval_cost(
            &serving,
            RetrievalScheme::Hermes {
                clusters_to_search: m,
                sample_nprobe: 8,
            },
            DvfsMode::Off,
            0.0,
        );
        let qps_gain = cost.qps / naive.qps;
        let energy_gain = naive.joules / cost.joules;
        if m == 3 {
            at3 = (qps_gain, energy_gain);
        }
        table.push(Row::new(
            m.to_string(),
            vec![
                format!("{:.1}", cost.qps),
                format!("{:.0}", cost.joules),
                format!("{qps_gain:.2}x"),
                format!("{energy_gain:.2}x"),
            ],
        ));
    }
    table.push(Row::new(
        "naive (all 10, no sampling)",
        vec![
            format!("{:.1}", naive.qps),
            format!("{:.0}", naive.joules),
            "1.00x".to_string(),
            "1.00x".to_string(),
        ],
    ));
    emit("fig18", &table);

    println!(
        "shape check: at 3 clusters Hermes delivers {:.2}x the naive throughput\n\
         and {:.2}x its energy efficiency (paper: 1.81x and 1.77x); both\n\
         advantages shrink monotonically as more clusters are searched.",
        at3.0, at3.1
    );
}
