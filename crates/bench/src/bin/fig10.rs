//! Figure 10: dataset disaggregation — K-means seed sweep on a real
//! corpus (left) and search latency vs cluster size against the Gemma2-9B
//! inference latency line (right, the "pipeline gap").

use hermes_bench::{emit, BENCH_SEED};
use hermes_datagen::scale::format_tokens;
use hermes_datagen::{Corpus, CorpusSpec};
use hermes_kmeans::{KMeansConfig, SeedSweep};
use hermes_metrics::{Row, Table};
use hermes_perfmodel::{InferenceModel, RetrievalModel};

fn main() {
    // Left: disaggregation quality — sweep seeds on a subsample and show
    // the imbalance the winner achieves (the paper reports a best gap of
    // ~2x between largest and smallest cluster).
    let corpus = Corpus::generate(CorpusSpec::new(30_000, 32, 10).with_seed(BENCH_SEED));
    let sweep = SeedSweep::new(KMeansConfig::new(10).with_seed(BENCH_SEED), 8)
        .with_subsample(0.02, BENCH_SEED);
    let result = sweep.run(corpus.embeddings());

    let mut sweep_table = Table::new(
        "Figure 10 (left) — K-means seed sweep on a 2% subsample",
        &["seed", "imbalance (max/min)", "inertia"],
    );
    for o in &result.outcomes {
        let marker = if o.seed == result.best_seed { " <- best" } else { "" };
        sweep_table.push(Row::new(
            format!("{:#x}{marker}", o.seed),
            vec![format!("{:.2}", o.imbalance), format!("{:.1}", o.inertia)],
        ));
    }
    emit("fig10_sweep", &sweep_table);

    // Right: pipeline gap per cluster size.
    let retrieval = RetrievalModel::default();
    let inference = InferenceModel::default();
    let decode = inference.decode_latency(128, 16);
    let mut gap = Table::new(
        "Figure 10 (right) — search latency vs Gemma2-9B stride latency (batch 128)",
        &["cluster size", "search (s)", "inference stride (s)", "hidden?"],
    );
    for tokens in [
        10_000_000u64,
        100_000_000,
        1_000_000_000,
        10_000_000_000,
        100_000_000_000,
    ] {
        let search = retrieval.batch_latency(tokens, 128, 128);
        gap.push(Row::new(
            format_tokens(tokens),
            vec![
                format!("{search:.3}"),
                format!("{decode:.3}"),
                (search <= decode).to_string(),
            ],
        ));
    }
    emit("fig10_gap", &gap);

    println!(
        "shape check: a 10B-token cluster is the largest that hides under\n\
         Gemma2-9B decode at batch 128, so 100B => 10 clusters (paper's example)."
    );
}
