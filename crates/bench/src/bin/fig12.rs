//! Figure 12: design-space exploration of the sampling and deep-search
//! `nProbe` values — NDCG (measured on real indices) and latency (sample
//! phase measured, plus the at-scale model projection).

use hermes_bench::{emit, standard_config, time_it, EvalSetup};
use hermes_metrics::{ndcg_at_k, ranking::ids, Row, Table};
use hermes_perfmodel::RetrievalModel;
use hermes_rag::{Retriever, RetrieverKind};

fn sweep(
    setup: &EvalSetup,
    sample_nprobe: usize,
    deep_nprobe: usize,
    clusters: usize,
) -> (f64, f64) {
    let cfg = standard_config()
        .with_sample_nprobe(sample_nprobe)
        .with_deep_nprobe(deep_nprobe)
        .with_clusters_to_search(clusters);
    let retriever =
        Retriever::build(RetrieverKind::Hermes, setup.corpus.embeddings(), &cfg).expect("build");
    let mut sum = 0.0;
    let (_, secs) = time_it(|| {
        for (q, truth) in setup.queries.embeddings().iter_rows().zip(&setup.truth) {
            let hits = retriever.retrieve(q).expect("retrieve");
            sum += ndcg_at_k(truth, &ids(&hits.hits), cfg.k);
        }
    });
    (
        sum / setup.queries.len() as f64,
        secs / setup.queries.len() as f64,
    )
}

fn main() {
    let setup = EvalSetup::small();

    // Left panels: vary the sampling nProbe at fixed deep nProbe 128.
    let mut small = Table::new(
        "Figure 12 (left) — sampling nProbe sweep (deep nProbe fixed at 128)",
        &["clusters searched", "nProbe 1", "nProbe 2", "nProbe 4", "nProbe 8"],
    );
    for clusters in [1usize, 2, 3, 4, 6, 8, 10] {
        let cells: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&np| format!("{:.3}", sweep(&setup, np, 128, clusters).0))
            .collect();
        small.push(Row::new(clusters.to_string(), cells));
    }
    emit("fig12_small_nprobe", &small);

    // Right panels: vary the deep nProbe at fixed sampling nProbe 8.
    let mut large = Table::new(
        "Figure 12 (right) — deep nProbe sweep (sampling nProbe fixed at 8)",
        &[
            "clusters searched",
            "nProbe 16",
            "nProbe 32",
            "nProbe 64",
            "nProbe 128",
        ],
    );
    for clusters in [1usize, 2, 3, 4, 6, 8, 10] {
        let cells: Vec<String> = [16usize, 32, 64, 128]
            .iter()
            .map(|&np| format!("{:.3}", sweep(&setup, 8, np, clusters).0))
            .collect();
        large.push(Row::new(clusters.to_string(), cells));
    }
    emit("fig12_large_nprobe", &large);

    // Latency panel via the calibrated model (per-cluster 10B tokens,
    // batch 128) — sample vs deep cost.
    let model = RetrievalModel::default();
    let mut latency = Table::new(
        "Figure 12 — modeled per-phase latency at 10B-token clusters (batch 128)",
        &["nProbe", "phase latency (s)"],
    );
    for np in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        latency.push(Row::new(
            np.to_string(),
            vec![format!("{:.3}", model.batch_latency(10_000_000_000, 128, np))],
        ));
    }
    emit("fig12_latency", &latency);

    let (n8_128, _) = sweep(&setup, 8, 128, 3);
    let (n1_16, _) = sweep(&setup, 1, 16, 3);
    println!(
        "shape check: NDCG rises with both nProbes; the paper's optimum\n\
         (sample 8 / deep 128) gives {n8_128:.3} at 3 clusters vs {n1_16:.3}\n\
         for the cheapest corner, while deep latency dominates the budget."
    );
}
