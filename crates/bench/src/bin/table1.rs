//! Table 1: recall and bytes/vector for the IVF quantization schemes
//! (Flat, SQ8, SQ4, PQ, OPQ).
//!
//! The paper measures recall of each codec inside an IVF index against a
//! brute-force ground truth at d = 768. We measure the same quantity on
//! the synthetic corpus (at a bench-friendly dimension that PQ's `m`
//! divides) and report bytes/vector at both the bench dimension and the
//! paper's 768.

use hermes_bench::{emit, EvalSetup, BENCH_SEED};
use hermes_index::{IvfIndex, SearchParams, VectorIndex};
use hermes_math::Metric;
use hermes_metrics::{recall_at_k, Row, Table};
use hermes_quant::CodecSpec;

fn main() {
    const DIM: usize = 48;
    let setup = EvalSetup::new(20_000, DIM, 10, 50, 10);
    let data = setup.corpus.embeddings();

    // The paper's schemes, translated to the bench dimension: PQ256/OPQ256
    // quarter the SQ8 footprint (m = dim/3 ≈ 256/768 of a byte per dim is
    // not expressible, so we keep the paper's *ratios*: PQ uses dim/3
    // subspaces, "PQ384"-style uses dim/2).
    let schemes: Vec<(CodecSpec, f64)> = vec![
        (CodecSpec::Flat, 0.958),
        (CodecSpec::Sq8, 0.942),
        (CodecSpec::Sq4, 0.748),
        (CodecSpec::Pq { m: DIM / 3 }, 0.585),
        (CodecSpec::Opq { m: DIM / 3 }, 0.596),
        (CodecSpec::Pq { m: DIM / 2 }, 0.748),
        (CodecSpec::Opq { m: DIM / 2 }, 0.742),
    ];
    let paper_m: Vec<usize> = vec![768 * 4, 768, 384, 256, 256, 384, 384];

    let mut table = Table::new(
        format!("Table 1 — IVF quantization schemes (seed {BENCH_SEED:#x})"),
        &[
            "scheme",
            "recall@10 (paper)",
            "recall@10 (measured)",
            "bytes/vec @768 (paper)",
            "bytes/vec (bench d=48)",
        ],
    );

    let params = SearchParams::new().with_nprobe(32);
    for ((spec, paper_recall), paper_bytes) in schemes.iter().zip(&paper_m) {
        let index = IvfIndex::builder()
            .nlist(64)
            .codec(*spec)
            .metric(Metric::InnerProduct)
            .seed(BENCH_SEED)
            .build(data)
            .expect("build IVF");
        let mut recall_sum = 0.0;
        for (q, truth) in setup.queries.embeddings().iter_rows().zip(&setup.truth) {
            let hits = index.search(q, 10, &params).expect("search");
            let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
            recall_sum += recall_at_k(truth, &ids, 10);
        }
        let measured = recall_sum / setup.queries.len() as f64;
        table.push(Row::new(
            spec.label(),
            vec![
                format!("{paper_recall:.3}"),
                format!("{measured:.3}"),
                paper_bytes.to_string(),
                spec.code_size(DIM).to_string(),
            ],
        ));
    }
    emit("table1", &table);

    println!(
        "shape check: Flat ≥ SQ8 > SQ4 ≥ PQ variants in recall; SQ8 is the\n\
         memory/recall sweet spot the paper deploys."
    );
}
