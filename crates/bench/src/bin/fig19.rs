//! Figure 19: how the optimal Hermes cluster size scales with serving
//! scenario — input length, output length and batch size — so retrieval
//! hides under inference.

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::{ClusterPlanner, InferenceModel};

fn main() {
    let planner = ClusterPlanner::default();
    let inference = InferenceModel::default();

    // Left panel analogue: batch x context-length heatmap of max cluster
    // size, for short-output (32,4) and long-output (256,32) scenarios.
    for (label, input, stride) in [("out32_stride4", 32u32, 4u32), ("out256_stride32", 256, 32)] {
        let mut table = Table::new(
            format!("Figure 19 — max cluster tokens, scenario {label}"),
            &["batch", "cluster size"],
        );
        for batch in [8usize, 16, 32, 64, 128, 256] {
            table.push(Row::new(
                batch.to_string(),
                vec![format_tokens(planner.max_cluster_tokens(batch, 128, input, stride))],
            ));
        }
        emit(&format!("fig19_{label}"), &table);
    }

    // Right panel analogue: input-length sweep at fixed output.
    let mut table = Table::new(
        "Figure 19 — max cluster tokens vs input length (batch 128, stride 16)",
        &["input tokens", "prefill (s)", "cluster size"],
    );
    let mut shortest = 0u64;
    let mut longest = 0u64;
    for input in [32u32, 256, 512, 1024, 2048] {
        let size = planner.max_cluster_tokens(128, 128, input, 16);
        if input == 32 {
            shortest = size;
        }
        longest = size;
        table.push(Row::new(
            input.to_string(),
            vec![
                format!("{:.2}", inference.prefill_latency(128, input)),
                format_tokens(size),
            ],
        ));
    }
    emit("fig19_input_sweep", &table);

    println!(
        "shape check: longer inputs leave more inference time to hide\n\
         retrieval, so clusters grow from {} to {} tokens as input goes\n\
         32 -> 2048 (the paper's 34B -> 114B trend), reducing the nodes a\n\
         given datastore needs.",
        format_tokens(shortest),
        format_tokens(longest)
    );
}
