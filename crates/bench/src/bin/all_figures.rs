//! Runs every table/figure reproduction in sequence and collects the
//! reports under `bench_results/`.
//!
//! ```text
//! cargo run -p hermes-bench --release --bin all_figures
//! ```

use std::process::Command;

const BINS: &[&str] = &[
    "table1", "fig04", "fig05", "fig06", "fig07", "fig08", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "ablation_residual", "ext_tail_latency", "ext_intra_query",
    "ext_kernels", "ext_trace_overhead", "ext_serving", "ext_persist",
    "ext_adaptive",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n=============== {bin} ===============");
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when siblings weren't built yet.
            Command::new("cargo")
                .args(["run", "-p", "hermes-bench", "--release", "--quiet", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e}");
                failed.push(*bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall figures reproduced; reports in bench_results/");
    } else {
        eprintln!("\nfailed: {failed:?}");
        std::process::exit(1);
    }
}
