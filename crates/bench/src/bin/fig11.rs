//! Figure 11: NDCG vs clusters searched for Monolithic, Split (naive),
//! Centroid-Based and Hermes — measured on real indices.

use hermes_bench::{emit, standard_config, EvalSetup};
use hermes_core::HermesConfig;
use hermes_metrics::{ndcg_at_k, ranking::ids, Row, Table};
use hermes_rag::{Retriever, RetrieverKind};

fn mean_ndcg(setup: &EvalSetup, retriever: &Retriever, k: usize) -> f64 {
    let mut sum = 0.0;
    for (q, truth) in setup.queries.embeddings().iter_rows().zip(&setup.truth) {
        let hits = retriever.retrieve(q).expect("retrieve");
        sum += ndcg_at_k(truth, &ids(&hits.hits), k);
    }
    sum / setup.queries.len() as f64
}

fn main() {
    let setup = EvalSetup::standard();
    let base = standard_config();

    // Monolithic reference (independent of clusters searched).
    let mono = Retriever::build(RetrieverKind::Monolithic, setup.corpus.embeddings(), &base)
        .expect("mono");
    let mono_ndcg = mean_ndcg(&setup, &mono, base.k);

    let mut table = Table::new(
        "Figure 11 — NDCG@5 vs clusters searched in depth (10 clusters)",
        &["clusters searched", "Monolithic", "Split", "Centroid-Based", "Hermes"],
    );

    let mut hermes_at_3 = 0.0;
    let mut split_at_3 = 0.0;
    for m in 1..=10usize {
        let cfg = |kind_cfg: HermesConfig| kind_cfg.with_clusters_to_search(m);
        let split = Retriever::build(
            RetrieverKind::NaiveSplit,
            setup.corpus.embeddings(),
            &cfg(base),
        )
        .expect("split");
        let centroid = Retriever::build(
            RetrieverKind::CentroidRouted,
            setup.corpus.embeddings(),
            &cfg(base),
        )
        .expect("centroid");
        let hermes = Retriever::build(
            RetrieverKind::Hermes,
            setup.corpus.embeddings(),
            &cfg(base),
        )
        .expect("hermes");

        let s = mean_ndcg(&setup, &split, base.k);
        let c = mean_ndcg(&setup, &centroid, base.k);
        let h = mean_ndcg(&setup, &hermes, base.k);
        if m == 3 {
            hermes_at_3 = h;
            split_at_3 = s;
        }
        table.push(Row::new(
            m.to_string(),
            vec![
                format!("{mono_ndcg:.3}"),
                format!("{s:.3}"),
                format!("{c:.3}"),
                format!("{h:.3}"),
            ],
        ));
    }
    emit("fig11", &table);

    println!(
        "shape check: Hermes at 3 clusters ({hermes_at_3:.3}) reaches ~monolithic\n\
         accuracy ({mono_ndcg:.3}) while naive Split is still at {split_at_3:.3};\n\
         Split needs nearly all 10 clusters to catch up (paper Figure 11)."
    );
}
