//! Extension experiment (beyond the paper's figures): TTFT *tail* latency
//! under open-loop load. The paper's Takeaway 2 argues TTFT variance
//! hurts production QoS; this bench quantifies it by queueing batches
//! against each retrieval scheme's service time (M/D/1, seeded).

use hermes_bench::{emit, BENCH_SEED};
use hermes_metrics::{Row, Table};
use hermes_sim::{
    queueing::simulate_md1, Deployment, DvfsMode, MultiNodeSim, RetrievalScheme, ServingConfig,
};

const TOKENS: u64 = 100_000_000_000;

fn main() {
    let sim = MultiNodeSim::new(Deployment::uniform(TOKENS, 10));
    let serving = ServingConfig::paper_default();

    let schemes = [
        ("Monolithic", RetrievalScheme::Monolithic),
        (
            "Naive distributed",
            RetrievalScheme::NaiveDistributed,
        ),
        (
            "Hermes (3 of 10)",
            RetrievalScheme::Hermes {
                clusters_to_search: 3,
                sample_nprobe: 8,
            },
        ),
    ];

    let mut table = Table::new(
        "Extension — retrieval sojourn time under load (M/D/1, 20k batches)",
        &[
            "scheme",
            "service (s)",
            "max stable batches/s",
            "p50 @70% load",
            "p99 @70% load",
            "delayed frac",
        ],
    );
    let mut hermes_cap = 0.0;
    let mut mono_cap = 0.0;
    for (name, scheme) in schemes {
        let service = sim
            .retrieval_cost(&serving, scheme, DvfsMode::Off, 0.0)
            .latency_s;
        let capacity = 1.0 / service;
        if name.starts_with("Hermes") {
            hermes_cap = capacity;
        }
        if name == "Monolithic" {
            mono_cap = capacity;
        }
        let report = simulate_md1(0.7 * capacity, service, 20_000, BENCH_SEED);
        table.push(Row::new(
            name,
            vec![
                format!("{service:.2}"),
                format!("{capacity:.3}"),
                format!("{:.2}", report.sojourn.p50),
                format!("{:.2}", report.sojourn.p99),
                format!("{:.2}", report.delayed_fraction),
            ],
        ));
    }
    emit("ext_tail_latency", &table);

    println!(
        "shape check: Hermes sustains {:.1}x the monolithic batch arrival\n\
         rate before saturating; at equal (70%) relative load its absolute\n\
         p99 sojourn is an order of magnitude lower, which is what keeps\n\
         production TTFT tails bounded (Takeaway 2).",
        hermes_cap / mono_cap
    );
}
