//! Extension experiment (beyond the paper's figures): TTFT *tail* latency
//! under open-loop load. The paper's Takeaway 2 argues TTFT variance
//! hurts production QoS; this bench quantifies it two ways:
//!
//! 1. **Model** — queueing batches against each retrieval scheme's
//!    service time (M/D/1, seeded): how the schemes' capacity gap turns
//!    into a p99 gap at equal relative load.
//! 2. **Measured** — the `ext_serving` open-loop sweep re-run with a
//!    `hermes-obs` observer attached: the p99 sojourn of every priority
//!    class decomposed into queue wait / cache probe / route / deep /
//!    residual, so the table says *which phase* owns the tail as offered
//!    load ρ approaches saturation (queue wait takes over from deep
//!    search — the attribution the paper's co-design argument rests on).
//!
//! The measured sweep holds the serving bars: results bit-identical to
//! standalone `Engine::execute` with the observer attached, and every
//! completed request's timeline balanced (phases sum to sojourn).
//!
//! Set `HERMES_SMOKE=1` for a seconds-scale pass.

use hermes_bench::{emit, out_dir, BENCH_SEED};
use hermes_core::exec::Engine;
use hermes_core::{ClusteredStore, HermesConfig};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_metrics::{Row, Table};
use hermes_obs::{Observer, Phase, SloPolicy};
use hermes_serve::{
    obs_config, run_open_loop, EngineBackend, OpenLoopSpec, Priority, Server, ServerConfig,
};
use hermes_sim::{
    queueing::simulate_md1, Deployment, DvfsMode, MultiNodeSim, RetrievalScheme, ServingConfig,
};

const TOKENS: u64 = 100_000_000_000;

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

fn model_table() -> (Table, f64, f64) {
    let sim = MultiNodeSim::new(Deployment::uniform(TOKENS, 10));
    let serving = ServingConfig::paper_default();

    let schemes = [
        ("Monolithic", RetrievalScheme::Monolithic),
        ("Naive distributed", RetrievalScheme::NaiveDistributed),
        (
            "Hermes (3 of 10)",
            RetrievalScheme::Hermes {
                clusters_to_search: 3,
                sample_nprobe: 8,
            },
        ),
    ];

    let mut table = Table::new(
        "Extension — retrieval sojourn time under load (M/D/1, 20k batches)",
        &[
            "scheme",
            "service (s)",
            "max stable batches/s",
            "p50 @70% load",
            "p99 @70% load",
            "delayed frac",
        ],
    );
    let mut hermes_cap = 0.0;
    let mut mono_cap = 0.0;
    for (name, scheme) in schemes {
        let service = sim
            .retrieval_cost(&serving, scheme, DvfsMode::Off, 0.0)
            .latency_s;
        let capacity = 1.0 / service;
        if name.starts_with("Hermes") {
            hermes_cap = capacity;
        }
        if name == "Monolithic" {
            mono_cap = capacity;
        }
        let report = simulate_md1(0.7 * capacity, service, 20_000, BENCH_SEED);
        table.push(Row::new(
            name,
            vec![
                format!("{service:.2}"),
                format!("{capacity:.3}"),
                format!("{:.2}", report.sojourn.p50),
                format!("{:.2}", report.sojourn.p99),
                format!("{:.2}", report.delayed_fraction),
            ],
        ));
    }
    (table, hermes_cap, mono_cap)
}

/// The `ext_serving` open-loop sweep with an observer attached: one row
/// per offered load × priority class, the class's p99 sojourn bucket
/// decomposed into mean ns per phase.
fn measured_table() -> Table {
    let (docs, dim, topics, clusters, nq, requests) = if smoke() {
        (3_000, 24, 6, 6, 24, 60)
    } else {
        (20_000, 64, 10, 10, 64, 600)
    };
    let corpus = Corpus::generate(CorpusSpec::new(docs, dim, topics).with_seed(BENCH_SEED + 70));
    let config = HermesConfig::new(clusters)
        .with_clusters_to_search(3)
        .with_seed(BENCH_SEED + 71);
    let store = ClusteredStore::build(corpus.embeddings(), &config).unwrap();
    let queries =
        QuerySet::generate(&corpus, QuerySpec::new(nq).with_seed(BENCH_SEED + 72)).to_vecs();
    let engine = Engine::for_store(&store);

    // Same calibration as ext_serving: the sweep is in units of capacity.
    let calib_t0 = std::time::Instant::now();
    for q in &queries {
        std::hint::black_box(engine.execute(q).unwrap());
    }
    let svc_ns = (calib_t0.elapsed().as_nanos() as u64 / queries.len() as u64).max(1_000);
    let svc_s = svc_ns as f64 * 1e-9;

    let cfg = ServerConfig {
        queue_capacity: 64,
        max_batch: 8,
    };
    let mut table = Table::new(
        format!(
            "Extension — phase-attributed p99 under open-loop load \
             ({docs} docs x {dim} dims, {clusters} clusters, {requests} requests/rho, \
             mean unloaded service {:.0} us; mean ns per phase in the p99 sojourn bucket)",
            svc_ns as f64 / 1e3
        ),
        &[
            "rho",
            "class",
            "p99>=ns",
            "n",
            "queue_wait",
            "cache_probe",
            "route",
            "deep",
            "residual",
            "dominant",
        ],
    );
    for (i, rho) in [0.3f64, 0.6, 0.9, 1.2].into_iter().enumerate() {
        let rate = rho / svc_s;
        let mut server = Server::new(EngineBackend::new(Engine::for_store(&store), 0), cfg)
            .with_observer(Observer::new(
                obs_config(BENCH_SEED + 80 + i as u64)
                    .with_slo(SloPolicy::new(vec![
                        Some((50.0 * svc_ns as f64) as u64),
                        None,
                        None,
                    ]))
                    .with_recorder(16, 32),
            ));
        let spec = OpenLoopSpec::new(requests, rate)
            .with_seed(BENCH_SEED + 73 + i as u64)
            .with_priority_cycle(vec![
                Priority::Interactive,
                Priority::Standard,
                Priority::Standard,
                Priority::Batch,
            ])
            .with_slo_ns((50.0 * svc_ns as f64) as u64);
        let report = run_open_loop(&mut server, &queries, &spec).unwrap();
        let obs = server.take_observer().unwrap();

        // Serving bars: nothing lost, results bit-identical under
        // observation, every timeline balanced.
        assert_eq!(
            report.completions.len() + report.shed.len(),
            requests,
            "rho {rho}: lost requests"
        );
        for c in report.completions.iter().take(16) {
            let want = engine.execute(&c.request.query).unwrap();
            assert_eq!(
                c.outcome.as_ref(),
                Some(&want),
                "rho {rho}: served result diverged under observation"
            );
        }
        assert_eq!(obs.unbalanced(), 0, "rho {rho}: unbalanced timelines");

        for class in obs.attribution().classes() {
            if class.count() == 0 {
                continue;
            }
            let Some(b) = class.breakdown_at(0.99) else {
                continue;
            };
            let mut cells = vec![
                class.label().to_string(),
                b.sojourn_floor_ns.to_string(),
                b.count.to_string(),
            ];
            cells.extend(
                Phase::ALL
                    .iter()
                    .map(|p| format!("{:.0}", b.mean_phase_ns[p.index()])),
            );
            cells.push(b.dominant_phase().label().to_string());
            table.push(Row::new(format!("{rho:.1}"), cells));
        }
    }
    table
}

fn main() {
    let (model, hermes_cap, mono_cap) = model_table();
    let measured = measured_table();

    // Both tables share one report file; print them the same way emit()
    // would, then write the concatenated markdown by hand.
    println!("{}", model.render());
    emit("ext_tail_latency", &measured);
    let path = out_dir().join("ext_tail_latency.md");
    std::fs::write(
        &path,
        format!("{}\n{}", model.render_markdown(), measured.render_markdown()),
    )
    .expect("write report");

    println!(
        "shape check: Hermes sustains {:.1}x the monolithic batch arrival\n\
         rate before saturating; at equal (70%) relative load its absolute\n\
         p99 sojourn is an order of magnitude lower, which is what keeps\n\
         production TTFT tails bounded (Takeaway 2). The measured sweep\n\
         shows the same mechanism from the inside: as rho approaches 1,\n\
         queue_wait displaces deep search as the dominant phase of the\n\
         p99 sojourn bucket.",
        hermes_cap / mono_cap
    );
}
