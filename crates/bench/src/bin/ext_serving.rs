//! Extension experiment: online serving — latency vs offered load.
//!
//! The serving layer (`hermes-serve`) turns the engine into a loaded
//! system: bounded admission, SLO-aware priority scheduling, dynamic
//! batches whose scatters coalesce by cluster. This bench measures what
//! the paper's Takeaway 2 cares about — the latency *distribution*
//! under load, not the unloaded mean:
//!
//! * **open loop** — seeded Poisson arrivals at a swept offered load
//!   ρ ∈ {0.3, 0.6, 0.9, 1.2}×capacity: tail latency inflates as ρ→1
//!   and the bounded queue starts shedding past saturation;
//! * **closed loop** — {1, 2, 4, 8} users in submit→wait→think cycles:
//!   throughput self-limits, batches form as concurrency grows.
//!
//! Service times are real (the engine executes every request;
//! `EngineBackend` measures wall time per dispatch) while arrivals are
//! virtual, so the offered rate is set relative to a calibrated mean
//! service time and the reported latencies come from the server's
//! `hermes-trace` log-histograms. Every run also re-checks the serving
//! bar: completions + sheds account for every offered request, and
//! served results are bit-identical to standalone `Engine::execute`.
//!
//! Set `HERMES_SMOKE=1` for a seconds-scale pass.

use hermes_bench::BENCH_SEED;
use hermes_core::exec::Engine;
use hermes_core::{ClusteredStore, HermesConfig};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_metrics::{Row, Table};
use hermes_serve::{
    run_closed_loop, run_open_loop, ClosedLoopSpec, EngineBackend, LoadReport, OpenLoopSpec,
    Priority, Server, ServerConfig,
};

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

fn mix() -> Vec<Priority> {
    vec![
        Priority::Interactive,
        Priority::Standard,
        Priority::Standard,
        Priority::Batch,
    ]
}

/// Accounting + bit-identity checks every run must pass, smoke or not.
fn check_run(report: &LoadReport, offered: usize, engine: &Engine, what: &str) {
    assert_eq!(
        report.completions.len() + report.shed.len(),
        offered,
        "{what}: lost requests"
    );
    for c in report.completions.iter().take(16) {
        let want = engine.execute(&c.request.query).unwrap();
        assert_eq!(
            c.outcome.as_ref(),
            Some(&want),
            "{what}: served result diverged from standalone execution"
        );
    }
}

fn us(ns: u64) -> String {
    format!("{:.0}", ns as f64 / 1e3)
}

fn main() {
    let (docs, dim, topics, clusters, nq, requests) = if smoke() {
        (3_000, 24, 6, 6, 24, 60)
    } else {
        (20_000, 64, 10, 10, 64, 600)
    };
    let corpus = Corpus::generate(CorpusSpec::new(docs, dim, topics).with_seed(BENCH_SEED + 70));
    let config = HermesConfig::new(clusters)
        .with_clusters_to_search(3)
        .with_seed(BENCH_SEED + 71);
    let store = ClusteredStore::build(corpus.embeddings(), &config).unwrap();
    let queries = QuerySet::generate(&corpus, QuerySpec::new(nq).with_seed(BENCH_SEED + 72)).to_vecs();
    let engine = Engine::for_store(&store);

    // Calibrate the unloaded mean service time so the open-loop sweep is
    // in units of capacity (ρ = rate × mean service).
    let calib_t0 = std::time::Instant::now();
    for q in &queries {
        std::hint::black_box(engine.execute(q).unwrap());
    }
    let svc_ns = (calib_t0.elapsed().as_nanos() as u64 / queries.len() as u64).max(1_000);
    let svc_s = svc_ns as f64 * 1e-9;

    let cfg = ServerConfig {
        queue_capacity: 64,
        max_batch: 8,
    };

    let mut open_table = Table::new(
        format!(
            "Extension — serving, open loop: latency vs offered load \
             ({docs} docs x {dim} dims, {clusters} clusters, {requests} requests, \
             mean unloaded service {} us, queue 64, max batch 8)",
            us(svc_ns)
        ),
        &[
            "offered rho", "qps", "p50 (us)", "p95 (us)", "p99 (us)", "shed",
            "expired", "mean batch", "shared visits", "busy",
        ],
    );
    for (i, rho) in [0.3f64, 0.6, 0.9, 1.2].into_iter().enumerate() {
        let rate = rho / svc_s;
        let mut server = Server::new(EngineBackend::new(Engine::for_store(&store), 0), cfg);
        let spec = OpenLoopSpec::new(requests, rate)
            .with_seed(BENCH_SEED + 73 + i as u64)
            .with_priority_cycle(mix())
            .with_slo_ns((50.0 * svc_ns as f64) as u64);
        let report = run_open_loop(&mut server, &queries, &spec).unwrap();
        check_run(&report, requests, &engine, "open loop");
        let s = &report.serve;
        open_table.push(Row::new(
            format!("{rho:.1}"),
            vec![
                format!("{rate:.0}"),
                us(s.sojourn.p50()),
                us(s.sojourn.p95()),
                us(s.sojourn.p99()),
                format!("{}", s.shed_full),
                format!("{}", s.expired),
                format!("{:.2}", s.mean_batch_size()),
                format!("{}", s.shared_visits),
                format!("{:.0}%", s.busy_fraction() * 100.0),
            ],
        ));
    }

    let mut closed_table = Table::new(
        format!(
            "Extension — serving, closed loop: throughput self-limits \
             ({requests} requests, zero think time, queue 64, max batch 8)"
        ),
        &[
            "users", "throughput (qps)", "p50 (us)", "p99 (us)", "mean batch",
            "shared visits", "busy",
        ],
    );
    for users in [1usize, 2, 4, 8] {
        let mut server = Server::new(EngineBackend::new(Engine::for_store(&store), 0), cfg);
        let spec = ClosedLoopSpec::new(requests, users).with_priority_cycle(mix());
        let report = run_closed_loop(&mut server, &queries, &spec).unwrap();
        check_run(&report, requests, &engine, "closed loop");
        let s = &report.serve;
        let qps = s.completed as f64 / (s.makespan_ns.max(1) as f64 * 1e-9);
        closed_table.push(Row::new(
            format!("{users}"),
            vec![
                format!("{qps:.0}"),
                us(s.sojourn.p50()),
                us(s.sojourn.p99()),
                format!("{:.2}", s.mean_batch_size()),
                format!("{}", s.shared_visits),
                format!("{:.0}%", s.busy_fraction() * 100.0),
            ],
        ));
    }

    println!("{}", open_table.render());
    println!("{}", closed_table.render());
    if smoke() {
        println!("(smoke mode: bench_results/ext_serving.md left untouched)\n");
    } else {
        // Like `emit`, but the report holds both loops' tables.
        let dir = std::env::var("HERMES_BENCH_OUT")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| {
                std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results")
            });
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("ext_serving.md");
        let report = format!(
            "{}\n{}",
            open_table.render_markdown(),
            closed_table.render_markdown()
        );
        std::fs::write(&path, report).expect("write report");
        println!("(written to {})\n", path.display());
    }
    println!(
        "all runs accounted for every offered request and served results\n\
         bit-identical to standalone engine execution; latencies are the\n\
         server's hermes-trace log2 histograms (bucket floors, within 2x)."
    );
}
