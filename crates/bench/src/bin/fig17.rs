//! Figure 17: Hermes gains across inference model architectures
//! (Phi-1.5, Gemma2-9B, OPT-30B) and hardware platforms (A6000 Ada, L4).

use hermes_bench::emit;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::{GpuPlatform, InferenceModel, LlmModel};
use hermes_sim::{
    Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig,
};

const TOKENS: u64 = 100_000_000_000;

fn gains(inference: InferenceModel) -> (f64, f64, usize) {
    let gpus = inference.num_gpus();
    let deployment = Deployment::uniform(TOKENS, 10).with_inference(inference);
    let sim = MultiNodeSim::new(deployment);
    let serving = ServingConfig::paper_default();
    let base = sim.run(
        &serving,
        RetrievalScheme::Monolithic,
        PipelinePolicy::baseline(),
        DvfsMode::Off,
    );
    let hermes = sim.run(
        &serving,
        RetrievalScheme::Hermes {
            clusters_to_search: 3,
            sample_nprobe: 8,
        },
        PipelinePolicy::combined(),
        DvfsMode::Off,
    );
    (
        base.e2e_s / hermes.e2e_s,
        base.total_joules() / hermes.total_joules(),
        gpus,
    )
}

fn main() {
    // Model architecture sweep on A6000 Ada.
    let mut models = Table::new(
        "Figure 17 (left) — Hermes gains by inference model (A6000 Ada, 100B tokens)",
        &["model", "GPUs", "E2E speedup", "energy saving"],
    );
    let mut first = 0.0;
    let mut last = 0.0;
    for llm in [LlmModel::phi_1_5(), LlmModel::gemma2_9b(), LlmModel::opt_30b()] {
        let name = llm.name.clone();
        let (speed, energy, gpus) = gains(InferenceModel::new(llm, GpuPlatform::a6000_ada()));
        if first == 0.0 {
            first = speed;
        }
        last = speed;
        models.push(Row::new(
            name,
            vec![
                gpus.to_string(),
                format!("{speed:.2}x"),
                format!("{energy:.2}x"),
            ],
        ));
    }
    emit("fig17_models", &models);

    // Hardware platform sweep with Gemma2-9B.
    let mut hw = Table::new(
        "Figure 17 (right) — Hermes gains by GPU platform (Gemma2-9B, 100B tokens)",
        &["platform", "GPUs", "E2E speedup", "energy saving"],
    );
    for gpu in [GpuPlatform::a6000_ada(), GpuPlatform::l4()] {
        let name = gpu.name.clone();
        let (speed, energy, gpus) = gains(InferenceModel::new(LlmModel::gemma2_9b(), gpu));
        hw.push(Row::new(
            name,
            vec![
                gpus.to_string(),
                format!("{speed:.2}x"),
                format!("{energy:.2}x"),
            ],
        ));
    }
    emit("fig17_hardware", &hw);

    println!(
        "shape check: gains shrink as the model grows ({first:.2}x for Phi-1.5\n\
         down to {last:.2}x for OPT-30B; paper: 9.38x -> 3.92x) because big\n\
         models shift the bottleneck to the GPU. OPT-30B needs 2 GPUs, as\n\
         does Gemma2-9B on L4 — matching the paper's placements."
    );
}
