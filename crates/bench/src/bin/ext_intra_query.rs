//! Extension experiment (beyond the paper's figures): intra-query shard
//! parallelism. A single interactive query deep-searches m clusters; the
//! execution engine can run those m shard searches sequentially
//! (`scatter_threads = 1`, the pre-engine behaviour) or scatter them
//! across the shared pool (`scatter_threads = 0`). This bench measures
//! the single-query latency both ways at m ∈ {3, 8} and checks the
//! scattered results stay bit-identical.

use hermes_bench::{emit, standard_config, time_it, BENCH_SEED};
use hermes_core::{ClusteredStore, Engine, QueryPlan};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_metrics::{Row, Table};

const DOCS: usize = 60_000;
const DIM: usize = 32;
const CLUSTERS: usize = 10;
const QUERIES: usize = 40;
const REPS: usize = 3;

fn mean_latency_s(engine: &Engine, queries: &[Vec<f32>]) -> f64 {
    // Warm the pool and caches once, then keep the fastest of REPS
    // passes (least scheduler noise).
    for q in queries.iter().take(4) {
        engine.execute(q).expect("warmup");
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = time_it(|| {
            for q in queries {
                engine.execute(q).expect("search");
            }
        });
        best = best.min(secs);
    }
    best / queries.len() as f64
}

fn main() {
    let corpus = Corpus::generate(CorpusSpec::new(DOCS, DIM, CLUSTERS).with_seed(BENCH_SEED));
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(QUERIES).with_seed(BENCH_SEED + 1),
    );
    let qs: Vec<Vec<f32>> = queries
        .embeddings()
        .iter_rows()
        .map(<[f32]>::to_vec)
        .collect();
    let cfg = standard_config();
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("store");

    let mut table = Table::new(
        format!(
            "Extension — single-query latency: sequential shards vs scattered \
             ({DOCS} docs, {CLUSTERS} clusters, pool width {})",
            hermes_pool::Pool::global().threads()
        ),
        &["clusters searched (m)", "sequential (ms)", "scattered (ms)", "speedup"],
    );
    let mut speedups = Vec::new();
    for m in [3usize, 8] {
        let plan = QueryPlan::from_config(&cfg.with_clusters_to_search(m));
        let sequential = Engine::new(&store, plan.with_scatter_threads(1));
        let scattered = Engine::new(&store, plan.with_scatter_threads(0));
        for q in qs.iter().take(8) {
            assert_eq!(
                sequential.execute(q).expect("sequential"),
                scattered.execute(q).expect("scattered"),
                "scatter changed results at m={m}"
            );
        }
        let seq_s = mean_latency_s(&sequential, &qs);
        let sc_s = mean_latency_s(&scattered, &qs);
        let speedup = seq_s / sc_s;
        speedups.push((m, speedup));
        table.push(Row::new(
            m.to_string(),
            vec![
                format!("{:.3}", seq_s * 1e3),
                format!("{:.3}", sc_s * 1e3),
                format!("{speedup:.2}x"),
            ],
        ));
    }
    emit("ext_intra_query", &table);

    println!(
        "shape check: scattering one query's m deep searches across the\n\
         pool gives {:.2}x at m=3 and {:.2}x at m=8, with bit-identical\n\
         hits and costs. The speedup tracks min(m, physical cores): on a\n\
         single-core host both paths collapse to the sequential loop\n\
         (expect ~1.0x with a few percent of pool overhead), while each\n\
         additional core raises the ceiling toward m×.",
        speedups[0].1, speedups[1].1
    );
}
