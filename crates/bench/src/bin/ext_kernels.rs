//! Extension experiment (beyond the paper's figures): blocked scoring
//! kernels with fused top-k pruning. Every scan path now scores BLOCK
//! rows at a time through `Metric::similarity_block` and feeds the fused
//! compare-and-compact in `TopK::push_block`; this bench isolates the
//! kernel-level effect on a single-thread flat scan. Three variants per
//! dimension:
//!
//! * `scalar`  — the pre-blocking loop: one `similarity` + one `push`
//!   per row,
//! * `blocked` — `similarity_block` per BLOCK rows, still one `push`
//!   per row (kernel speedup alone),
//! * `fused`   — `similarity_block` + `push_block` (kernel speedup plus
//!   threshold pruning that keeps sub-top-k scores off the heap).
//!
//! All three produce bit-identical top-k lists; the bench asserts it.
//!
//! Set `HERMES_SMOKE=1` to run a seconds-scale correctness pass (used by
//! `scripts/verify.sh`).

use hermes_bench::{emit, time_it, BENCH_SEED};
use hermes_math::block::BLOCK;
use hermes_math::rng::seeded_rng;
use hermes_math::{Metric, Neighbor, TopK};
use hermes_metrics::{Row, Table};

const K: usize = 10;

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

/// `(dim, rows)` — row counts keep each dataset L3-resident so the bench
/// measures kernel throughput, not DRAM bandwidth.
fn shapes() -> Vec<(usize, usize)> {
    if smoke() {
        vec![(64, 2048), (768, 256)]
    } else {
        vec![(64, 32768), (768, 4096)]
    }
}

fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..n * dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

fn scan_scalar(query: &[f32], data: &[f32], dim: usize, metric: Metric) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    for (i, row) in data.chunks_exact(dim).enumerate() {
        top.push(i as u64, metric.similarity(query, row));
    }
    top.into_sorted_vec()
}

fn scan_blocked(query: &[f32], data: &[f32], dim: usize, metric: Metric) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    let mut scores = [0.0f32; BLOCK];
    let mut id = 0u64;
    for chunk in data.chunks(BLOCK * dim) {
        let n = chunk.len() / dim;
        let out = &mut scores[..n];
        metric.similarity_block(query, chunk, dim, out);
        for &s in out.iter() {
            top.push(id, s);
            id += 1;
        }
    }
    top.into_sorted_vec()
}

fn scan_fused(
    query: &[f32],
    data: &[f32],
    ids: &[u64],
    dim: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    let mut scores = [0.0f32; BLOCK];
    for (chunk, idc) in data.chunks(BLOCK * dim).zip(ids.chunks(BLOCK)) {
        let out = &mut scores[..idc.len()];
        metric.similarity_block(query, chunk, dim, out);
        top.push_block(idc, out);
    }
    top.into_sorted_vec()
}

/// Fastest of `reps` full query sweeps, in seconds.
fn best_time(reps: usize, mut sweep: impl FnMut()) -> f64 {
    sweep(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), secs) = time_it(&mut sweep);
        best = best.min(secs);
    }
    best
}

fn main() {
    let metric = Metric::InnerProduct;
    let queries = if smoke() { 4 } else { 16 };
    let reps = if smoke() { 2 } else { 5 };

    let mut table = Table::new(
        format!(
            "Extension — blocked scoring kernels, single-thread flat scan \
             ({queries} queries, best of {reps}, k={K}, metric={metric})"
        ),
        &[
            "dim x rows",
            "scalar (Mrow/s)",
            "blocked (Mrow/s)",
            "fused (Mrow/s)",
            "blocked/scalar",
            "fused/scalar",
        ],
    );

    for (dim, rows) in shapes() {
        let data = random_vecs(rows, dim, BENCH_SEED + dim as u64);
        let qs = random_vecs(queries, dim, BENCH_SEED + 1 + dim as u64);
        let ids: Vec<u64> = (0..rows as u64).collect();

        // The three variants must agree bit for bit before timing means
        // anything.
        for q in qs.chunks_exact(dim) {
            let a = scan_scalar(q, &data, dim, metric);
            let b = scan_blocked(q, &data, dim, metric);
            let c = scan_fused(q, &data, &ids, dim, metric);
            assert_eq!(a, b, "blocked scan diverged at dim {dim}");
            assert_eq!(a, c, "fused scan diverged at dim {dim}");
        }

        let t_scalar = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_scalar(q, &data, dim, metric));
            }
        });
        let t_blocked = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_blocked(q, &data, dim, metric));
            }
        });
        let t_fused = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_fused(q, &data, &ids, dim, metric));
            }
        });

        let mrows = (queries * rows) as f64 / 1e6;
        table.push(Row::new(
            format!("{dim} x {rows}"),
            vec![
                format!("{:.1}", mrows / t_scalar),
                format!("{:.1}", mrows / t_blocked),
                format!("{:.1}", mrows / t_fused),
                format!("{:.2}x", t_scalar / t_blocked),
                format!("{:.2}x", t_scalar / t_fused),
            ],
        ));
    }
    if smoke() {
        // Smoke mode ran tiny shapes whose timings mean nothing; print
        // them but keep bench_results/ holding the full-run record.
        println!("{}", table.render());
        println!("(smoke mode: bench_results/ext_kernels.md left untouched)\n");
    } else {
        emit("ext_kernels", &table);
    }

    println!(
        "shape check: register tiling amortizes query loads across {BLOCK}-row\n\
         blocks, so the win grows with dim (more arithmetic per row to tile).\n\
         The acceptance bar is >= 1.3x blocked/scalar at dim 768; fused adds\n\
         threshold pruning on top, which pays off as k << rows."
    );
}
