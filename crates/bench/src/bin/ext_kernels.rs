//! Extension experiment (beyond the paper's figures): blocked scoring
//! kernels with runtime SIMD dispatch and fused top-k pruning. Every
//! scan path scores BLOCK rows at a time through
//! `Metric::similarity_block` (which dispatches to AVX2/NEON when the
//! CPU supports it, see `hermes_math::simd`) and feeds the fused
//! compare-and-compact in `TopK::push_block`; this bench isolates the
//! kernel-level effect on a single-thread flat scan. Four variants per
//! dimension:
//!
//! * `scalar`        — the pre-blocking loop: one `similarity` + one
//!   `push` per row,
//! * `blocked@scalar` — `similarity_block_at(Scalar)` per BLOCK rows
//!   (register tiling alone; bit-identical to `scalar` by tier B of the
//!   equivalence contract),
//! * `blocked@simd`  — `similarity_block` at the process dispatch level
//!   (tiling + vectorization),
//! * `fused@simd`    — the dispatched kernel + `push_block` threshold
//!   pruning.
//!
//! `scalar` and `blocked@scalar` must agree bit for bit; the SIMD
//! variants must return the same top-k ids with scores inside the
//! documented ULP envelope (compared here with a loose absolute/relative
//! tolerance — the exact bound is enforced by the property suites). The
//! bench asserts both before timing.
//!
//! Set `HERMES_SMOKE=1` to run a seconds-scale correctness pass (used by
//! `scripts/verify.sh`), and `HERMES_SIMD=scalar` to pin the dispatch
//! level and measure the tiling-only baseline.

use hermes_bench::{emit, time_it, BENCH_SEED};
use hermes_math::block::BLOCK;
use hermes_math::rng::seeded_rng;
use hermes_math::simd::SimdLevel;
use hermes_math::{simd_level, Metric, Neighbor, TopK};
use hermes_metrics::{Row, Table};

const K: usize = 10;

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

/// `(dim, rows)` — row counts keep each dataset L2-resident (~1.5 MB at
/// f32) so the bench measures kernel throughput, not cache or DRAM
/// bandwidth: once the scan streams from L3 the vectorized kernel is
/// bound on loads and the SIMD win collapses toward the memory wall,
/// which is a property of the machine, not of the kernels.
fn shapes() -> Vec<(usize, usize)> {
    if smoke() {
        vec![(64, 2048), (768, 256)]
    } else {
        vec![(64, 6144), (768, 512)]
    }
}

fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..n * dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

fn scan_scalar(query: &[f32], data: &[f32], dim: usize, metric: Metric) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    for (i, row) in data.chunks_exact(dim).enumerate() {
        top.push(i as u64, metric.similarity(query, row));
    }
    top.into_sorted_vec()
}

fn scan_blocked_at(
    level: SimdLevel,
    query: &[f32],
    data: &[f32],
    dim: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    let mut scores = [0.0f32; BLOCK];
    let mut id = 0u64;
    for chunk in data.chunks(BLOCK * dim) {
        let n = chunk.len() / dim;
        let out = &mut scores[..n];
        metric.similarity_block_at(level, query, chunk, dim, out);
        for &s in out.iter() {
            top.push(id, s);
            id += 1;
        }
    }
    top.into_sorted_vec()
}

fn scan_fused(
    query: &[f32],
    data: &[f32],
    ids: &[u64],
    dim: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let mut top = TopK::new(K);
    let mut scores = [0.0f32; BLOCK];
    for (chunk, idc) in data.chunks(BLOCK * dim).zip(ids.chunks(BLOCK)) {
        let out = &mut scores[..idc.len()];
        metric.similarity_block(query, chunk, dim, out);
        top.push_block(idc, out);
    }
    top.into_sorted_vec()
}

/// Same ids in the same order, scores within a loose float envelope.
/// SIMD reassociation legally moves f32 scores by ULPs; the pinned bound
/// itself is asserted by the property/fuzz suites, so the bench only
/// needs to catch gross divergence.
fn assert_equivalent(what: &str, dim: usize, got: &[Neighbor], want: &[Neighbor]) {
    assert_eq!(got.len(), want.len(), "{what} length diverged at dim {dim}");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{what} id order diverged at dim {dim}");
        assert!(
            (g.score - w.score).abs() <= 1e-4 * w.score.abs().max(1.0),
            "{what} score drift at dim {dim} id {}: {} vs {}",
            g.id,
            g.score,
            w.score
        );
    }
}

/// Fastest of `reps` full query sweeps, in seconds.
fn best_time(reps: usize, mut sweep: impl FnMut()) -> f64 {
    sweep(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), secs) = time_it(&mut sweep);
        best = best.min(secs);
    }
    best
}

fn main() {
    let metric = Metric::InnerProduct;
    let level = simd_level();
    let queries = if smoke() { 4 } else { 32 };
    let reps = if smoke() { 2 } else { 7 };

    println!("dispatch level: {level}\n");

    let mut table = Table::new(
        format!(
            "Extension — blocked scoring kernels + SIMD dispatch ({level}), \
             single-thread flat scan \
             ({queries} queries, best of {reps}, k={K}, metric={metric})"
        ),
        &[
            "dim x rows",
            "scalar (Mrow/s)",
            "blocked@scalar (Mrow/s)",
            "blocked@simd (Mrow/s)",
            "fused@simd (Mrow/s)",
            "simd/blocked",
            "fused/scalar",
        ],
    );

    for (dim, rows) in shapes() {
        let data = random_vecs(rows, dim, BENCH_SEED + dim as u64);
        let qs = random_vecs(queries, dim, BENCH_SEED + 1 + dim as u64);
        let ids: Vec<u64> = (0..rows as u64).collect();

        // Equivalence gates before timing means anything: the scalar
        // dispatch level must not move a single bit, the SIMD level must
        // return the same ranking inside the float envelope.
        for q in qs.chunks_exact(dim) {
            let a = scan_scalar(q, &data, dim, metric);
            let b = scan_blocked_at(SimdLevel::Scalar, q, &data, dim, metric);
            assert_eq!(a, b, "blocked@scalar scan diverged at dim {dim}");
            let c = scan_blocked_at(level, q, &data, dim, metric);
            let d = scan_fused(q, &data, &ids, dim, metric);
            assert_equivalent("blocked@simd", dim, &c, &a);
            assert_equivalent("fused@simd", dim, &d, &a);
        }

        let t_scalar = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_scalar(q, &data, dim, metric));
            }
        });
        let t_tiled = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_blocked_at(
                    SimdLevel::Scalar,
                    q,
                    &data,
                    dim,
                    metric,
                ));
            }
        });
        let t_simd = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_blocked_at(level, q, &data, dim, metric));
            }
        });
        let t_fused = best_time(reps, || {
            for q in qs.chunks_exact(dim) {
                std::hint::black_box(scan_fused(q, &data, &ids, dim, metric));
            }
        });

        let mrows = (queries * rows) as f64 / 1e6;
        table.push(Row::new(
            format!("{dim} x {rows}"),
            vec![
                format!("{:.1}", mrows / t_scalar),
                format!("{:.1}", mrows / t_tiled),
                format!("{:.1}", mrows / t_simd),
                format!("{:.1}", mrows / t_fused),
                format!("{:.2}x", t_tiled / t_simd),
                format!("{:.2}x", t_scalar / t_fused),
            ],
        ));
    }
    if smoke() {
        // Smoke mode ran tiny shapes whose timings mean nothing; print
        // them but keep bench_results/ holding the full-run record.
        println!("{}", table.render());
        println!("(smoke mode: bench_results/ext_kernels.md left untouched)\n");
    } else {
        emit("ext_kernels", &table);
    }

    println!(
        "shape check: register tiling amortizes query loads across {BLOCK}-row\n\
         blocks and the dispatched kernel vectorizes the per-row reduction\n\
         ({level} here), so the win grows with dim (more arithmetic per row).\n\
         The acceptance bar is >= 2x simd/blocked at dim 768 on AVX2 hardware;\n\
         fused adds threshold pruning on top, which pays off as k << rows."
    );
}
