//! Figure 13: cluster size and access-frequency imbalance, measured by
//! running an NQ-like skewed query workload through a real Hermes store.
//! Includes the seed-sweep ablation DESIGN.md calls out.

use hermes_bench::{emit, standard_config, BENCH_SEED};
use hermes_core::{ClusteredStore, SplitStrategy};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_metrics::{Row, Table};

fn main() {
    let corpus = Corpus::generate(
        CorpusSpec::new(30_000, 32, 10)
            .with_seed(BENCH_SEED)
            .with_size_skew(0.5),
    );
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(500)
            .with_seed(BENCH_SEED + 1)
            .with_interest_skew(1.0),
    );
    let cfg = standard_config();
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build store");

    let qs: Vec<Vec<f32>> = queries
        .embeddings()
        .iter_rows()
        .map(<[f32]>::to_vec)
        .collect();
    let accesses = store.access_histogram(&qs, 0).expect("trace");

    let mut table = Table::new(
        "Figure 13 — cluster size (docs) and deep-search access frequency",
        &["cluster", "size (docs)", "accesses"],
    );
    for (c, &hits) in accesses.iter().enumerate() {
        table.push(Row::new(
            c.to_string(),
            vec![store.cluster_sizes()[c].to_string(), hits.to_string()],
        ));
    }
    emit("fig13", &table);

    let size_imb = store.imbalance();
    let max_a = *accesses.iter().max().unwrap() as f64;
    let min_a = (*accesses.iter().min().unwrap()).max(1) as f64;
    println!(
        "shape check: size imbalance {size_imb:.2}x (paper ~2x), access\n\
         imbalance {:.2}x (paper >2x) — the inputs to the DVFS study.",
        max_a / min_a
    );

    // Ablation: seed-swept vs single-seed splitting imbalance, averaged
    // over several corpora (a single instance is dominated by luck).
    let mut single_sum = 0.0;
    let mut sweep_sum = 0.0;
    let mut sweep_wins = 0usize;
    const TRIALS: u64 = 5;
    for trial in 0..TRIALS {
        let c = Corpus::generate(
            CorpusSpec::new(12_000, 32, 10)
                .with_seed(BENCH_SEED + 100 + trial)
                .with_size_skew(0.5),
        );
        let trial_cfg = cfg.with_seed(BENCH_SEED + 200 + trial);
        let single = ClusteredStore::build(
            c.embeddings(),
            &trial_cfg.with_split(SplitStrategy::KMeansSingle),
        )
        .expect("single-seed store");
        let swept = ClusteredStore::build(c.embeddings(), &trial_cfg).expect("swept store");
        single_sum += single.imbalance();
        sweep_sum += swept.imbalance();
        if swept.imbalance() <= single.imbalance() {
            sweep_wins += 1;
        }
    }
    let mut ablation = Table::new(
        format!("Ablation — splitting strategy vs size imbalance (mean of {TRIALS} corpora)"),
        &["strategy", "mean imbalance", "sweep wins"],
    );
    ablation.push(Row::new(
        "K-means, single seed",
        vec![format!("{:.2}", single_sum / TRIALS as f64), "-".into()],
    ));
    ablation.push(Row::new(
        "K-means, 8-seed sweep (Hermes)",
        vec![
            format!("{:.2}", sweep_sum / TRIALS as f64),
            format!("{sweep_wins}/{TRIALS}"),
        ],
    ));
    let rr = ClusteredStore::build(
        corpus.embeddings(),
        &cfg.with_split(SplitStrategy::RoundRobin),
    )
    .expect("round-robin store");
    ablation.push(Row::new(
        "Round-robin (no topical coherence)",
        vec![format!("{:.2}", rr.imbalance()), "-".into()],
    ));
    emit("fig13_ablation", &ablation);
}
