//! Figure 20: CPU platform comparison — retrieval time per batch and
//! throughput vs clusters searched, across Neoverse-N1 (batch 32 and
//! 128), Xeon Gold 6448Y, Platinum 8380 and Silver 4316, against the
//! Gemma2-9B inference latency line.

use hermes_bench::emit;
use hermes_metrics::{Row, Table};
use hermes_perfmodel::{CpuPlatform, InferenceModel};
use hermes_sim::{Deployment, DvfsMode, MultiNodeSim, RetrievalScheme, ServingConfig};

const TOKENS: u64 = 100_000_000_000; // 10 nodes x 10B tokens (the paper's split)

fn cost_for(platform: CpuPlatform, batch: usize, m: usize) -> (f64, f64) {
    let deployment = Deployment::uniform(TOKENS, 10).with_platform(platform);
    let sim = MultiNodeSim::new(deployment);
    let serving = ServingConfig::paper_default().with_batch(batch);
    let cost = sim.retrieval_cost(
        &serving,
        RetrievalScheme::Hermes {
            clusters_to_search: m,
            sample_nprobe: 8,
        },
        DvfsMode::Off,
        0.0,
    );
    (cost.latency_s, cost.qps)
}

fn main() {
    let configs: Vec<(String, CpuPlatform, usize)> = vec![
        ("Neoverse-N1 (BS=32)".into(), CpuPlatform::neoverse_n1(), 32),
        ("Neoverse-N1 (BS=128)".into(), CpuPlatform::neoverse_n1(), 128),
        ("Gold 6448Y".into(), CpuPlatform::xeon_gold_6448y(), 128),
        ("Platinum 8380".into(), CpuPlatform::xeon_platinum_8380(), 128),
        ("Silver 4316".into(), CpuPlatform::xeon_silver_4316(), 128),
    ];
    let inference = InferenceModel::default();
    let decode_128 = inference.decode_latency(128, 16);

    let mut latency = Table::new(
        "Figure 20 (left) — time per batch (s) vs clusters searched",
        &["clusters", &configs[0].0, &configs[1].0, &configs[2].0, &configs[3].0, &configs[4].0],
    );
    let mut qps = Table::new(
        "Figure 20 (right) — throughput (QPS) vs clusters searched",
        &["clusters", &configs[0].0, &configs[1].0, &configs[2].0, &configs[3].0, &configs[4].0],
    );
    for m in [1usize, 2, 4, 6, 8, 10] {
        let mut lat_cells = Vec::new();
        let mut qps_cells = Vec::new();
        for (_, platform, batch) in &configs {
            let (l, q) = cost_for(platform.clone(), *batch, m);
            lat_cells.push(format!("{l:.3}"));
            qps_cells.push(format!("{q:.0}"));
        }
        latency.push(Row::new(m.to_string(), lat_cells));
        qps.push(Row::new(m.to_string(), qps_cells));
    }
    latency.push(Row::new(
        "Gemma2-9B inference (stride)",
        vec![format!("{decode_128:.3}"); 5],
    ));
    emit("fig20_latency", &latency);
    emit("fig20_qps", &qps);

    let (plat_l, plat_q) = cost_for(CpuPlatform::xeon_platinum_8380(), 128, 3);
    let (arm32, _) = cost_for(CpuPlatform::neoverse_n1(), 32, 3);
    let (arm128, arm128_q) = cost_for(CpuPlatform::neoverse_n1(), 128, 3);
    println!(
        "shape check: Platinum 8380 leads ({plat_l:.3}s, {plat_q:.0} QPS at 3\n\
         clusters; paper 0.084-0.13s, 249-379 QPS); the ARM part is slower\n\
         per batch ({arm32:.3}s at BS=32) but recovers throughput at BS=128\n\
         ({arm128_q:.0} QPS over {arm128:.3}s) thanks to its core count."
    );
}
