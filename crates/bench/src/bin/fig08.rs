//! Figure 8: how far PipeRAG (pipelining) and RAGCache (prefix caching)
//! carry at small vs at-scale datastores — stage timelines plus the
//! speedup-vs-size panel.

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_metrics::{Row, Table};
use hermes_sim::{
    Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig,
};

fn main() {
    let serving = ServingConfig::paper_default().with_batch(32);

    // Timelines (first two strides) for a small and an at-scale store.
    for (label, tokens) in [("small_100M", 100_000_000u64), ("at_scale_100B", 100_000_000_000)] {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 1));
        let mut table = Table::new(
            format!("Figure 8 — stage timeline, {label} datastore"),
            &["policy", "stage", "start (s)", "end (s)"],
        );
        for (name, policy) in [
            ("baseline", PipelinePolicy::baseline()),
            ("prefix caching", PipelinePolicy::ragcache()),
            ("pipelining", PipelinePolicy::piperag()),
        ] {
            let r = sim.run(&serving, RetrievalScheme::Monolithic, policy, DvfsMode::Off);
            for span in &r.timeline {
                table.push(Row::new(
                    name,
                    vec![
                        span.stage.clone(),
                        format!("{:.3}", span.start_s),
                        format!("{:.3}", span.end_s),
                    ],
                ));
            }
            println!("-- {name} ({label}) --");
            println!("{}", hermes_sim::report::render_timeline(&r.timeline, 64));
        }
        emit(&format!("fig08_timeline_{label}"), &table);
    }

    // Right panel: speedup over the unoptimized baseline vs datastore size.
    let mut speedups = Table::new(
        "Figure 8 (right) — E2E speedup over baseline vs datastore size",
        &["datastore", "PipeRAG", "RAGCache"],
    );
    let mut first_pipe = 0.0;
    let mut last_pipe = 0.0;
    for tokens in [
        100_000_000u64,
        1_000_000_000,
        10_000_000_000,
        100_000_000_000,
        1_000_000_000_000,
    ] {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 1));
        let base = sim
            .run(&serving, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off)
            .e2e_s;
        let pipe = base
            / sim
                .run(&serving, RetrievalScheme::Monolithic, PipelinePolicy::piperag(), DvfsMode::Off)
                .e2e_s;
        let cache = base
            / sim
                .run(&serving, RetrievalScheme::Monolithic, PipelinePolicy::ragcache(), DvfsMode::Off)
                .e2e_s;
        if tokens == 100_000_000 {
            first_pipe = pipe;
        }
        last_pipe = pipe;
        speedups.push(Row::new(
            format_tokens(tokens),
            vec![format!("{pipe:.2}x"), format!("{cache:.2}x")],
        ));
    }
    emit("fig08_speedup", &speedups);

    println!(
        "shape check: both optimizations help at 100M (pipelining {first_pipe:.2}x,\n\
         paper up to 1.62x) and fade toward 1.0x at 1T ({last_pipe:.2}x) as\n\
         retrieval dominates."
    );
}
