//! Extension experiment: adaptive retrieval depth + semantic caching.
//!
//! The paper fixes its retrieval knobs per deployment (Table 2:
//! `clusters_to_search = 3`, deep `nProbe = 128`) — every query pays the
//! worst-case depth. Two mechanisms recover that slack without giving up
//! the engine's bit-identical contract:
//!
//! * **Adaptive depth** — the route stage's score distribution already
//!   says how hard a query is (clear top-1 margin = easy, flat spread =
//!   hard). The [`DifficultyEstimator`] turns that into per-query
//!   `clusters_to_search` and deep `nProbe` between calibrated floors
//!   and ceilings. The workload is **mixed-difficulty** on the standard
//!   corpus — half navigational-style queries (tight spread around a
//!   topic) and half exploratory (wide spread straddling clusters) —
//!   the heterogeneity fixed knobs cannot exploit: real NQ streams mix
//!   both, yet Table 2 prices every query at the worst case. The bench
//!   sweeps the fixed-knob frontier (m = 1..3) and places the adaptive
//!   point against it: **equal recall@10 to the fixed paper knobs with
//!   ≥25% fewer scanned codes**. The adaptive ceiling (m = 4) sits
//!   *above* the fixed knob — hard queries go deeper than the paper's
//!   setting while easy ones pay the floor, which is exactly how the
//!   point lands off the fixed frontier.
//! * **Semantic caching** — repeated and near-duplicate queries skip the
//!   engine entirely. Streams with controlled temporal locality
//!   (repeated / bursty / drifting, `hermes_datagen::workload`) run
//!   through the serving layer with and without a [`CachedBackend`];
//!   the repeated-Zipf stream must clear **≥30% hit rate** with a
//!   measured p50/p99 win.
//!
//! Contracts re-checked on every run (smoke included):
//! * a degenerate adaptive config (floor = ceiling = the paper knobs) is
//!   bit-identical to the fixed-knob engine;
//! * every cache-on completion is bit-identical to a standalone
//!   recomputation at the same generation.
//!
//! Set `HERMES_SMOKE=1` for a seconds-scale pass (no report rewrite).

use std::sync::Arc;

use hermes_bench::{out_dir, BENCH_SEED};
use hermes_cache::CacheConfig;
use hermes_core::exec::{Engine, QueryPlan};
use hermes_core::{AdaptiveConfig, ClusteredStore, HermesConfig};
use hermes_datagen::{query_stream, Corpus, CorpusSpec, QuerySet, QuerySpec, StreamSpec};
use hermes_index::FlatIndex;
use hermes_math::Metric;
use hermes_metrics::{ground_truth, ranking, recall_at_k, DepthHistogram, Row, Table};
use hermes_serve::{
    run_open_loop, Backend, BatchOutcome, CachedBackend, GenerationBackend, GenerationCell,
    LoadReport, OpenLoopSpec, Server, ServerConfig,
};

fn smoke() -> bool {
    std::env::var("HERMES_SMOKE").map(|v| v != "0").unwrap_or(false)
}

/// Borrowing adapter so the bench keeps the [`CachedBackend`] (and its
/// counters) after the server that drove it is dropped.
struct SharedBackend<'a>(&'a dyn Backend);

impl Backend for SharedBackend<'_> {
    fn run(&self, batch: &[hermes_serve::Request]) -> Result<BatchOutcome, hermes_core::HermesError> {
        self.0.run(batch)
    }
}

/// Mean recall@10 and mean scanned codes of `plan` over the workload.
fn frontier_point(
    store: &ClusteredStore,
    plan: QueryPlan,
    queries: &[Vec<f32>],
    truth: &[Vec<u64>],
    k: usize,
) -> (f64, f64, DepthHistogram) {
    let engine = Engine::new(store, plan);
    let mut recall = 0.0;
    let mut codes = 0usize;
    let mut depths = DepthHistogram::new();
    for (q, t) in queries.iter().zip(truth) {
        let out = engine.execute(q).unwrap();
        recall += recall_at_k(t, &ranking::ids(&out.hits), k);
        codes += out.total_scanned_codes();
        depths.record(out.searched_clusters.len());
    }
    let n = queries.len() as f64;
    (recall / n, codes as f64 / n, depths)
}

fn us(ns: u64) -> String {
    format!("{:.0}", ns as f64 / 1e3)
}

fn main() {
    let k = 10;
    let (docs, dim, topics, clusters, nq) = if smoke() {
        (3_000, 24, 6, 6, 24)
    } else {
        (30_000, 48, 10, 10, 60)
    };

    // ---- Part A: recall-vs-scanned-codes frontier -------------------
    // Mixed-difficulty workload on the standard corpus: half the queries
    // sit tight on a topic (navigational), half straddle clusters
    // (exploratory). Ground truth comes from the same brute-force oracle
    // EvalSetup uses.
    let corpus = Corpus::generate(CorpusSpec::new(docs, dim, topics).with_seed(BENCH_SEED));
    let easy_set = QuerySet::generate(
        &corpus,
        QuerySpec::new(nq / 2).with_seed(BENCH_SEED + 1).with_spread(0.15),
    );
    let hard_set = QuerySet::generate(
        &corpus,
        QuerySpec::new(nq / 2).with_seed(BENCH_SEED + 2).with_spread(0.5),
    );
    let mut queries = easy_set.to_vecs();
    queries.extend(hard_set.to_vecs());
    let oracle = FlatIndex::new(corpus.embeddings().clone(), Metric::InnerProduct);
    let truth = ground_truth(&oracle, &queries, k).expect("oracle search");

    let cfg = HermesConfig::new(clusters)
        .with_k(k)
        .with_seed(BENCH_SEED + 2);
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();

    let fixed = QueryPlan::from_config(&cfg); // m=3, deep nProbe=128
    // Calibrated on this workload: margin-dominated blend (entropy 100‰),
    // observed difficulty band re-normalized from 0.6..1.0, hard ceiling
    // one cluster above the paper knob.
    let adaptive_cfg = AdaptiveConfig::new(1, fixed.clusters_to_search + 1, 96, fixed.deep_nprobe)
        .with_entropy_weight_permille(100)
        .with_difficulty_band_permille(600, 1000);

    // Contract: a pinned adaptive config (floor = ceiling = paper knobs)
    // must be bit-identical to the fixed-knob engine, query by query.
    {
        let pinned = AdaptiveConfig::new(
            fixed.clusters_to_search,
            fixed.clusters_to_search,
            fixed.deep_nprobe,
            fixed.deep_nprobe,
        );
        let fixed_engine = Engine::new(&store, fixed);
        let pinned_engine = Engine::new(&store, fixed.with_adaptive(Some(pinned)));
        for q in &queries {
            assert_eq!(
                fixed_engine.execute(q).unwrap(),
                pinned_engine.execute(q).unwrap(),
                "pinned adaptive diverged from fixed knobs"
            );
        }
    }

    let mut frontier = Table::new(
        format!(
            "Extension — adaptive depth: recall@{k} vs scanned codes \
             ({docs} docs x {dim} dims, {clusters} clusters, {nq} mixed-difficulty \
             queries (half spread 0.15, half 0.5), fixed deep nProbe {} vs \
             adaptive m {}..{} / nProbe {}..{})",
            fixed.deep_nprobe,
            adaptive_cfg.min_clusters,
            adaptive_cfg.max_clusters,
            adaptive_cfg.min_deep_nprobe,
            adaptive_cfg.max_deep_nprobe
        ),
        &["plan", "recall@10", "mean codes", "vs fixed m=3", "mean depth"],
    );
    let mut fixed_at_paper = (0.0, 0.0);
    for m in 1..=fixed.clusters_to_search {
        let mut plan = fixed;
        plan.clusters_to_search = m;
        let (recall, codes, _) = frontier_point(&store, plan, &queries, &truth, k);
        if m == fixed.clusters_to_search {
            fixed_at_paper = (recall, codes);
        }
        frontier.push(Row::new(
            format!("fixed m={m}"),
            vec![
                format!("{recall:.3}"),
                format!("{codes:.0}"),
                String::new(),
                format!("{m}.00"),
            ],
        ));
    }
    let (a_recall, a_codes, depths) = frontier_point(
        &store,
        fixed.with_adaptive(Some(adaptive_cfg)),
        &queries,
        &truth,
        k,
    );
    let saving = 1.0 - a_codes / fixed_at_paper.1;
    frontier.push(Row::new(
        format!(
            "adaptive m {}..{} nProbe {}..{}",
            adaptive_cfg.min_clusters,
            adaptive_cfg.max_clusters,
            adaptive_cfg.min_deep_nprobe,
            adaptive_cfg.max_deep_nprobe
        ),
        vec![
            format!("{a_recall:.3}"),
            format!("{a_codes:.0}"),
            format!("-{:.0}%", saving * 100.0),
            format!("{:.2}", depths.mean()),
        ],
    ));
    if !smoke() {
        assert!(
            a_recall >= fixed_at_paper.0 - 0.01,
            "adaptive recall {a_recall:.3} fell below fixed {:.3}",
            fixed_at_paper.0
        );
        assert!(
            saving >= 0.25,
            "adaptive saved only {:.0}% of scanned codes",
            saving * 100.0
        );
    }

    // ---- Part B: semantic cache on temporal workloads ---------------
    let cell = Arc::new(GenerationCell::new(
        ClusteredStore::build(corpus.embeddings(), &cfg).unwrap(),
    ));
    let pool = QuerySet::generate(&corpus, QuerySpec::new(nq).with_seed(BENCH_SEED + 3));
    let pool_vecs = pool.to_vecs();
    let stream_len = if smoke() { 60 } else { 600 };
    let server_cfg = ServerConfig {
        queue_capacity: 64,
        max_batch: 8,
    };

    // Calibrate mean unloaded service time so offered load is in units
    // of engine capacity, as in ext_serving.
    let calib_store = cell.current();
    let calib_engine = Engine::for_store(&calib_store);
    let t0 = std::time::Instant::now();
    for q in &pool_vecs {
        std::hint::black_box(calib_engine.execute(q).unwrap());
    }
    let svc_ns = (t0.elapsed().as_nanos() as u64 / pool_vecs.len() as u64).max(1_000);

    let mut cache_table = Table::new(
        format!(
            "Extension — semantic cache: hit rate and latency by workload \
             ({stream_len} requests/stream over a {}-query pool, offered load 0.6, \
             cache capacity 1024, threshold 0.985)",
            pool_vecs.len()
        ),
        &[
            "workload", "hit rate", "exact", "semantic", "miss", "stale",
            "p50 off (us)", "p50 on (us)", "p99 off (us)", "p99 on (us)",
        ],
    );

    let run = |backend: &dyn Backend, stream: &[Vec<f32>], seed: u64| -> LoadReport {
        let mut server = Server::new(SharedBackend(backend), server_cfg);
        let spec =
            OpenLoopSpec::new(stream.len(), 0.6 / (svc_ns as f64 * 1e-9)).with_seed(seed);
        run_open_loop(&mut server, stream, &spec).unwrap()
    };

    let mut repeated_hit_rate = None;
    let mut repeated_p99 = None;
    for (name, spec) in [
        ("repeated (Zipf 1.0)", StreamSpec::repeated(stream_len)),
        ("bursty (8-runs)", StreamSpec::bursty(stream_len)),
        ("drifting", StreamSpec::drifting(stream_len)),
    ] {
        let stream = query_stream(&pool, spec.with_seed(BENCH_SEED + 80));

        let uncached = GenerationBackend::new(cell.clone(), 1);
        let off = run(&uncached, &stream, BENCH_SEED + 81);

        // Contract: with the semantic layer off, every cache-on
        // completion — exact hit or miss — is bit-identical to
        // recomputation at the current generation.
        let store = cell.current();
        let engine = Engine::for_store(&store);
        let exact = CachedBackend::new(cell.clone(), 1, CacheConfig::default().exact_only());
        let strict = run(&exact, &stream, BENCH_SEED + 81);
        assert_eq!(strict.completions.len(), stream.len(), "{name}: lost requests");
        for c in &strict.completions {
            let want = engine.execute(&c.request.query).unwrap();
            assert_eq!(
                c.outcome.as_ref(),
                Some(&want),
                "{name}: exact-cache completion diverged from recomputation"
            );
        }

        let cached = CachedBackend::new(cell.clone(), 1, CacheConfig::default());
        let on = run(&cached, &stream, BENCH_SEED + 81);

        // With the semantic layer on, only near-duplicate hits may serve
        // a neighbouring query's (exact) outcome — divergence from
        // per-query recomputation is bounded by the semantic hit count.
        let divergent = on
            .completions
            .iter()
            .filter(|c| {
                c.outcome.as_ref() != Some(&engine.execute(&c.request.query).unwrap())
            })
            .count();
        assert!(
            divergent as u64 <= cached.cache_stats().semantic_hits,
            "{name}: {divergent} divergent completions exceed semantic hits"
        );

        let stats = cached.cache_stats();
        let rate = stats.hit_rate();
        if name.starts_with("repeated") {
            repeated_hit_rate = Some(rate);
            repeated_p99 = Some((off.serve.sojourn.p99(), on.serve.sojourn.p99()));
        }
        cache_table.push(Row::new(
            name,
            vec![
                format!("{:.0}%", rate * 100.0),
                format!("{}", stats.exact_hits),
                format!("{}", stats.semantic_hits),
                format!("{}", stats.misses),
                format!("{}", stats.stale),
                us(off.serve.sojourn.p50()),
                us(on.serve.sojourn.p50()),
                us(off.serve.sojourn.p99()),
                us(on.serve.sojourn.p99()),
            ],
        ));
    }
    let repeated_hit_rate = repeated_hit_rate.unwrap();
    assert!(
        repeated_hit_rate >= 0.30,
        "repeated-Zipf hit rate {:.0}% below the 30% bar",
        repeated_hit_rate * 100.0
    );
    if !smoke() {
        let (p99_off, p99_on) = repeated_p99.unwrap();
        assert!(
            p99_on < p99_off,
            "cache did not improve p99 on the repeated workload ({p99_on} vs {p99_off})"
        );
    }

    println!("{}", frontier.render());
    println!("{}", cache_table.render());
    if smoke() {
        println!("(smoke mode: bench_results/ext_adaptive.md left untouched)\n");
    } else {
        let path = out_dir().join("ext_adaptive.md");
        let report = format!(
            "{}\n{}",
            frontier.render_markdown(),
            cache_table.render_markdown()
        );
        std::fs::write(&path, report).expect("write report");
        println!("(written to {})\n", path.display());
    }
    println!(
        "contracts held: pinned adaptive knobs were bit-identical to the\n\
         fixed engine, and every cache-on completion matched a standalone\n\
         recomputation at the same generation; latencies are hermes-trace\n\
         log2 histograms (bucket floors, within 2x)."
    );
}
