//! Figure 16: normalized TTFT latency at 1B/10B/1T tokens — the paper's
//! 9.1x TTFT improvement at the trillion-token scale.

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_metrics::{Row, Table};
use hermes_sim::{
    Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig,
};

fn main() {
    let serving = ServingConfig::paper_default();
    let hermes = RetrievalScheme::Hermes {
        clusters_to_search: 3,
        sample_nprobe: 8,
    };

    let mut table = Table::new(
        "Figure 16 — TTFT, normalized to the monolithic baseline",
        &["datastore", "Baseline", "Hermes", "Hermes/PipeRAG/RAGCache", "speedup"],
    );
    let mut t1_speedup = 0.0;
    for tokens in [1_000_000_000u64, 10_000_000_000, 1_000_000_000_000] {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 10));
        let base = sim
            .run(&serving, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off)
            .ttft_s;
        let h = sim
            .run(&serving, hermes, PipelinePolicy::baseline(), DvfsMode::Off)
            .ttft_s;
        let hc = sim
            .run(&serving, hermes, PipelinePolicy::combined(), DvfsMode::Off)
            .ttft_s;
        if tokens == 1_000_000_000_000 {
            t1_speedup = base / hc;
        }
        table.push(Row::new(
            format_tokens(tokens),
            vec![
                "1.000".to_string(),
                format!("{:.3}", h / base),
                format!("{:.3}", hc / base),
                format!("{:.2}x", base / hc),
            ],
        ));
    }
    emit("fig16", &table);

    println!(
        "shape check: TTFT speedup grows with datastore size, reaching\n\
         {t1_speedup:.2}x at 1T tokens (paper: 9.1x). Pipelining/caching cannot\n\
         help TTFT — the first retrieval is on the critical path — so the\n\
         gain comes entirely from Hermes' distributed hierarchical search."
    );
}
