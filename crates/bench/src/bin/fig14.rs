//! Figure 14: normalized end-to-end latency and energy of Baseline,
//! RAGCache, PipeRAG, Hermes and Hermes+both, swept over batch size,
//! datastore size and stride length (multi-node analysis tool).

use hermes_bench::emit;
use hermes_datagen::scale::format_tokens;
use hermes_metrics::{report::normalize_to_max, Row, Table};
use hermes_sim::{
    Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig,
};

const SYSTEMS: [&str; 5] = [
    "Baseline",
    "RAGCache",
    "PipeRAG",
    "Hermes",
    "Hermes/PipeRAG/RAGCache",
];

fn run_all(sim: &MultiNodeSim, serving: &ServingConfig) -> Vec<(f64, f64)> {
    let hermes = RetrievalScheme::Hermes {
        clusters_to_search: 3,
        sample_nprobe: 8,
    };
    [
        (RetrievalScheme::Monolithic, PipelinePolicy::baseline()),
        (RetrievalScheme::Monolithic, PipelinePolicy::ragcache()),
        (RetrievalScheme::Monolithic, PipelinePolicy::piperag()),
        (hermes, PipelinePolicy::baseline()),
        (hermes, PipelinePolicy::combined()),
    ]
    .into_iter()
    .map(|(scheme, policy)| {
        let r = sim.run(serving, scheme, policy, DvfsMode::Off);
        (r.e2e_s, r.total_joules())
    })
    .collect()
}

fn push_norm(table: &mut Table, label: String, values: &[f64]) {
    let norm = normalize_to_max(values);
    table.push(Row::new(
        label,
        norm.iter().map(|v| format!("{v:.3}")).collect(),
    ));
}

fn main() {
    let tokens_default = 10_000_000_000u64;

    // --- Sweep 1: batch size (datastore 10B over 10 nodes, stride 16). ---
    let sim = MultiNodeSim::new(Deployment::uniform(tokens_default, 10));
    let mut lat = Table::new(
        "Figure 14 — normalized E2E latency vs batch size (10B tokens)",
        &["batch", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    let mut energy = Table::new(
        "Figure 14 — normalized E2E energy vs batch size (10B tokens)",
        &["batch", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    for batch in [32usize, 64, 128, 256] {
        let serving = ServingConfig::paper_default().with_batch(batch);
        let results = run_all(&sim, &serving);
        push_norm(&mut lat, batch.to_string(), &results.iter().map(|r| r.0).collect::<Vec<_>>());
        push_norm(
            &mut energy,
            batch.to_string(),
            &results.iter().map(|r| r.1).collect::<Vec<_>>(),
        );
    }
    emit("fig14_batch_latency", &lat);
    emit("fig14_batch_energy", &energy);

    // --- Sweep 2: datastore size (batch 128, stride 16). ---
    let mut lat = Table::new(
        "Figure 14 — normalized E2E latency vs datastore size (batch 128)",
        &["datastore", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    let mut energy = Table::new(
        "Figure 14 — normalized E2E energy vs datastore size (batch 128)",
        &["datastore", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    let mut headline = (0.0f64, 0.0f64);
    for tokens in [1_000_000_000u64, 10_000_000_000, 100_000_000_000, 1_000_000_000_000] {
        let sim = MultiNodeSim::new(Deployment::uniform(tokens, 10));
        let serving = ServingConfig::paper_default();
        let results = run_all(&sim, &serving);
        if tokens == 1_000_000_000_000 {
            headline = (
                results[0].0 / results[4].0,
                results[0].1 / results[4].1,
            );
        }
        push_norm(
            &mut lat,
            format_tokens(tokens),
            &results.iter().map(|r| r.0).collect::<Vec<_>>(),
        );
        push_norm(
            &mut energy,
            format_tokens(tokens),
            &results.iter().map(|r| r.1).collect::<Vec<_>>(),
        );
    }
    emit("fig14_size_latency", &lat);
    emit("fig14_size_energy", &energy);

    // --- Sweep 3: stride length (10B tokens, batch 128). ---
    let sim = MultiNodeSim::new(Deployment::uniform(tokens_default, 10));
    let mut lat = Table::new(
        "Figure 14 — normalized E2E latency vs stride (10B tokens, batch 128)",
        &["stride", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    let mut energy = Table::new(
        "Figure 14 — normalized E2E energy vs stride (10B tokens, batch 128)",
        &["stride", SYSTEMS[0], SYSTEMS[1], SYSTEMS[2], SYSTEMS[3], SYSTEMS[4]],
    );
    for stride in [4u32, 8, 16, 32, 64] {
        let serving = ServingConfig::paper_default().with_stride(stride);
        let results = run_all(&sim, &serving);
        push_norm(
            &mut lat,
            stride.to_string(),
            &results.iter().map(|r| r.0).collect::<Vec<_>>(),
        );
        push_norm(
            &mut energy,
            stride.to_string(),
            &results.iter().map(|r| r.1).collect::<Vec<_>>(),
        );
    }
    emit("fig14_stride_latency", &lat);
    emit("fig14_stride_energy", &energy);

    println!(
        "shape check: Hermes+PipeRAG+RAGCache wins everywhere; at 1T tokens\n\
         the combined system is {:.2}x faster and {:.2}x more energy-efficient\n\
         than the monolithic baseline (paper: up to 9.33x / 2.10x).",
        headline.0, headline.1
    );
}
