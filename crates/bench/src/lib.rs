//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary follows the same contract:
//!
//! 1. Build its workload (real indices at laptop scale, device models for
//!    at-scale projections).
//! 2. Print an ASCII table whose rows carry both the **paper** value and
//!    the **measured** value, so EXPERIMENTS.md can be regenerated
//!    mechanically.
//! 3. Write the same table (markdown) into `bench_results/`.
//!
//! Run everything with `cargo run -p hermes-bench --release --bin
//! all_figures`.

use std::path::PathBuf;

use hermes_core::HermesConfig;
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_index::FlatIndex;
use hermes_math::Metric;
use hermes_metrics::Table;

/// The base RNG seed every binary derives its streams from; printed with
/// each report for replayability.
pub const BENCH_SEED: u64 = 0x4E52_4D45; // "HERM"

/// An evaluation workload: corpus, queries, and per-query brute-force
/// ground truth (the paper's NDCG oracle).
#[derive(Debug)]
pub struct EvalSetup {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// The query workload.
    pub queries: QuerySet,
    /// Brute-force top-k ids per query.
    pub truth: Vec<Vec<u64>>,
}

impl EvalSetup {
    /// Builds a workload and computes the exact ground truth for `k`.
    pub fn new(docs: usize, dim: usize, topics: usize, num_queries: usize, k: usize) -> Self {
        let corpus = Corpus::generate(CorpusSpec::new(docs, dim, topics).with_seed(BENCH_SEED));
        let queries = QuerySet::generate(
            &corpus,
            QuerySpec::new(num_queries).with_seed(BENCH_SEED + 1),
        );
        let oracle = FlatIndex::new(corpus.embeddings().clone(), Metric::InnerProduct);
        // The exhaustive oracle scan is the slowest part of every
        // accuracy bench; it fans out per query on the shared pool.
        let truth = hermes_metrics::ground_truth(&oracle, &queries.to_vecs(), k)
            .expect("oracle search");
        EvalSetup {
            corpus,
            queries,
            truth,
        }
    }

    /// The standard evaluation corpus for accuracy figures (Fig 11/12):
    /// 30k docs, 48 dims, 10 topics, 60 queries, k = 5.
    pub fn standard() -> Self {
        EvalSetup::new(30_000, 48, 10, 60, 5)
    }

    /// A smaller workload for sweeps that rebuild stores repeatedly.
    pub fn small() -> Self {
        EvalSetup::new(8_000, 32, 10, 40, 5)
    }
}

/// Standard Hermes configuration for the accuracy benches: 10 clusters,
/// defaults elsewhere.
pub fn standard_config() -> HermesConfig {
    HermesConfig::new(10).with_seed(BENCH_SEED + 2)
}

/// Directory all reports are written to (`bench_results/` under the
/// workspace root, created on demand).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("HERMES_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results")
        });
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    dir
}

/// Prints a report table and writes its markdown twin to
/// `bench_results/<name>.md`.
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.render());
    let path = out_dir().join(format!("{name}.md"));
    std::fs::write(&path, table.render_markdown()).expect("write report");
    println!("(written to {})\n", path.display());
}

/// Wall-clock seconds of `f`, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_setup_has_truth_per_query() {
        let s = EvalSetup::new(500, 8, 4, 7, 3);
        assert_eq!(s.truth.len(), 7);
        assert!(s.truth.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn time_it_returns_result_and_duration() {
        let (v, secs) = time_it(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(secs >= 0.0);
    }

    #[test]
    fn ratio_formats_two_decimals() {
        assert_eq!(ratio(9.0, 3.0), "3.00x");
    }
}
