//! Benchmarks comparing the retrieval strategies end to end: monolithic
//! IVF, naive all-cluster fan-out, and Hermes hierarchical search at
//! different deep-cluster counts. Runs on the `hermes-testkit`
//! wall-clock runner (`cargo bench --bench hierarchical_search`).

use hermes_core::{ClusteredStore, HermesConfig, SearchOutcome};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_index::{IvfIndex, SearchParams, VectorIndex};
use hermes_pool::Pool;
use hermes_quant::CodecSpec;
use hermes_testkit::bench::Runner;

fn setup() -> (Corpus, QuerySet) {
    let corpus = Corpus::generate(CorpusSpec::new(20_000, 32, 10).with_seed(17));
    let queries = QuerySet::generate(&corpus, QuerySpec::new(16).with_seed(18));
    (corpus, queries)
}

fn main() {
    let mut runner = Runner::from_args("hierarchical_search");
    let (corpus, queries) = setup();
    let qs = queries.to_vecs();

    let index = IvfIndex::builder()
        .codec(CodecSpec::Sq8)
        .seed(19)
        .build(corpus.embeddings())
        .expect("build");
    let params = SearchParams::new().with_nprobe(128);
    runner.bench("search/monolithic_ivf_20k", || {
        for q in &qs {
            std::hint::black_box(index.search(q, 5, &params).expect("search"));
        }
    });
    runner.bench("batch/monolithic_ivf_pooled", || {
        std::hint::black_box(index.batch_search(&qs, 5, &params, 0).expect("search"))
    });

    for m in [1usize, 3, 10] {
        let cfg = HermesConfig::new(10)
            .with_clusters_to_search(m)
            .with_seed(19);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
        runner.bench(&format!("search/hermes_20k/deep_clusters/{m}"), || {
            for q in &qs {
                std::hint::black_box(store.hierarchical_search(q).expect("search"));
            }
        });
    }

    let cfg = HermesConfig::new(10).with_clusters_to_search(3).with_seed(19);
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
    runner.bench("search/naive_all_clusters_20k", || {
        for q in &qs {
            std::hint::black_box(store.search_all_clusters(q).expect("search"));
        }
    });

    // Batch scheduling: fresh OS threads with static chunks per call
    // (the pre-pool design) vs the persistent work-stealing executor.
    // Run with HERMES_THREADS=<n> to size the pool; the spawn baseline
    // uses the same fan-out width.
    let threads = Pool::global().threads();
    runner.bench(&format!("batch/spawn_per_batch/t{threads}"), || {
        std::hint::black_box(spawn_per_batch(&store, &qs, threads))
    });
    runner.bench(&format!("batch/pooled/t{threads}"), || {
        std::hint::black_box(store.batch_hierarchical_search(&qs, 0).expect("search"))
    });
    runner.bench("batch/sequential", || {
        std::hint::black_box(store.batch_hierarchical_search(&qs, 1).expect("search"))
    });

    runner.finish();
}

/// The pre-pool `batch_hierarchical_search`: spawn `threads` scoped OS
/// threads per call, each owning a static contiguous chunk. Kept here as
/// the bench baseline the pooled path is measured against.
fn spawn_per_batch(store: &ClusteredStore, qs: &[Vec<f32>], threads: usize) -> Vec<SearchOutcome> {
    let chunk = qs.len().div_ceil(threads.max(1));
    let mut partials: Vec<Vec<SearchOutcome>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = qs
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .map(|q| store.hierarchical_search(q).expect("search"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("worker"));
        }
    });
    partials.concat()
}
