//! Criterion benchmarks comparing the retrieval strategies end to end:
//! monolithic IVF, naive all-cluster fan-out, and Hermes hierarchical
//! search at different deep-cluster counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_core::{ClusteredStore, HermesConfig};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_index::{IvfIndex, SearchParams, VectorIndex};
use hermes_quant::CodecSpec;

fn setup() -> (Corpus, QuerySet) {
    let corpus = Corpus::generate(CorpusSpec::new(20_000, 32, 10).with_seed(17));
    let queries = QuerySet::generate(&corpus, QuerySpec::new(16).with_seed(18));
    (corpus, queries)
}

fn bench_monolithic(c: &mut Criterion) {
    let (corpus, queries) = setup();
    let index = IvfIndex::builder()
        .codec(CodecSpec::Sq8)
        .seed(19)
        .build(corpus.embeddings())
        .expect("build");
    let params = SearchParams::new().with_nprobe(128);
    let qs = queries.to_vecs();
    c.bench_function("search/monolithic_ivf_20k", |bench| {
        bench.iter(|| {
            for q in &qs {
                std::hint::black_box(index.search(q, 5, &params).expect("search"));
            }
        })
    });
}

fn bench_hermes_by_clusters(c: &mut Criterion) {
    let (corpus, queries) = setup();
    let qs = queries.to_vecs();
    let mut group = c.benchmark_group("search/hermes_20k");
    for m in [1usize, 3, 10] {
        let cfg = HermesConfig::new(10)
            .with_clusters_to_search(m)
            .with_seed(19);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
        group.bench_with_input(BenchmarkId::new("deep_clusters", m), &m, |bench, _| {
            bench.iter(|| {
                for q in &qs {
                    std::hint::black_box(store.hierarchical_search(q).expect("search"));
                }
            })
        });
    }
    group.finish();
}

fn bench_naive_fanout(c: &mut Criterion) {
    let (corpus, queries) = setup();
    let qs = queries.to_vecs();
    let cfg = HermesConfig::new(10).with_clusters_to_search(3).with_seed(19);
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
    c.bench_function("search/naive_all_clusters_20k", |bench| {
        bench.iter(|| {
            for q in &qs {
                std::hint::black_box(store.search_all_clusters(q).expect("search"));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_monolithic, bench_hermes_by_clusters, bench_naive_fanout
}
criterion_main!(benches);
