//! Benchmarks comparing the retrieval strategies end to end: monolithic
//! IVF, naive all-cluster fan-out, and Hermes hierarchical search at
//! different deep-cluster counts. Runs on the `hermes-testkit`
//! wall-clock runner (`cargo bench --bench hierarchical_search`).

use hermes_core::{ClusteredStore, HermesConfig};
use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
use hermes_index::{IvfIndex, SearchParams, VectorIndex};
use hermes_quant::CodecSpec;
use hermes_testkit::bench::Runner;

fn setup() -> (Corpus, QuerySet) {
    let corpus = Corpus::generate(CorpusSpec::new(20_000, 32, 10).with_seed(17));
    let queries = QuerySet::generate(&corpus, QuerySpec::new(16).with_seed(18));
    (corpus, queries)
}

fn main() {
    let mut runner = Runner::from_args("hierarchical_search");
    let (corpus, queries) = setup();
    let qs = queries.to_vecs();

    let index = IvfIndex::builder()
        .codec(CodecSpec::Sq8)
        .seed(19)
        .build(corpus.embeddings())
        .expect("build");
    let params = SearchParams::new().with_nprobe(128);
    runner.bench("search/monolithic_ivf_20k", || {
        for q in &qs {
            std::hint::black_box(index.search(q, 5, &params).expect("search"));
        }
    });

    for m in [1usize, 3, 10] {
        let cfg = HermesConfig::new(10)
            .with_clusters_to_search(m)
            .with_seed(19);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
        runner.bench(&format!("search/hermes_20k/deep_clusters/{m}"), || {
            for q in &qs {
                std::hint::black_box(store.hierarchical_search(q).expect("search"));
            }
        });
    }

    let cfg = HermesConfig::new(10).with_clusters_to_search(3).with_seed(19);
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).expect("build");
    runner.bench("search/naive_all_clusters_20k", || {
        for q in &qs {
            std::hint::black_box(store.search_all_clusters(q).expect("search"));
        }
    });

    runner.finish();
}
