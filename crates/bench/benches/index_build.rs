//! Criterion benchmarks for index construction: IVF vs HNSW build cost
//! and the K-means seed sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_index::{HnswIndex, IvfIndex};
use hermes_kmeans::{KMeansConfig, SeedSweep};
use hermes_math::rng::seeded_rng;
use hermes_math::{Mat, Metric};
use hermes_quant::CodecSpec;
use rand::Rng;

fn random_mat(n: usize, dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    Mat::from_rows(
        &(0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect::<Vec<f32>>())
            .collect::<Vec<_>>(),
    )
}

fn bench_ivf_build(c: &mut Criterion) {
    let data = random_mat(5_000, 48, 1);
    c.bench_function("build/ivf_sq8_5k_docs", |bench| {
        bench.iter(|| {
            IvfIndex::builder()
                .nlist(64)
                .codec(CodecSpec::Sq8)
                .metric(Metric::InnerProduct)
                .build(std::hint::black_box(&data))
                .expect("build")
        })
    });
}

fn bench_hnsw_build(c: &mut Criterion) {
    let data = random_mat(2_000, 48, 2);
    c.bench_function("build/hnsw_2k_docs", |bench| {
        bench.iter(|| {
            HnswIndex::builder()
                .m(16)
                .ef_construction(64)
                .metric(Metric::InnerProduct)
                .build(std::hint::black_box(&data))
                .expect("build")
        })
    });
}

fn bench_seed_sweep(c: &mut Criterion) {
    let data = random_mat(10_000, 32, 3);
    c.bench_function("build/kmeans_seed_sweep_2pct", |bench| {
        bench.iter(|| {
            SeedSweep::new(KMeansConfig::new(10), 4)
                .with_subsample(0.02, 9)
                .run(std::hint::black_box(&data))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ivf_build, bench_hnsw_build, bench_seed_sweep
}
criterion_main!(benches);
