//! Benchmarks for index construction: IVF vs HNSW build cost and the
//! K-means seed sweep. Runs on the `hermes-testkit` wall-clock runner
//! (`cargo bench --bench index_build`).

use hermes_index::{HnswIndex, IvfIndex};
use hermes_kmeans::{KMeansConfig, SeedSweep};
use hermes_math::rng::seeded_rng;
use hermes_math::{Mat, Metric};
use hermes_quant::CodecSpec;
use hermes_testkit::bench::Runner;

fn random_mat(n: usize, dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    Mat::from_rows(
        &(0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32()).collect::<Vec<f32>>())
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let mut runner = Runner::from_args("index_build");

    let data = random_mat(5_000, 48, 1);
    runner.bench("build/ivf_sq8_5k_docs", || {
        IvfIndex::builder()
            .nlist(64)
            .codec(CodecSpec::Sq8)
            .metric(Metric::InnerProduct)
            .build(std::hint::black_box(&data))
            .expect("build")
    });

    let data = random_mat(2_000, 48, 2);
    runner.bench("build/hnsw_2k_docs", || {
        HnswIndex::builder()
            .m(16)
            .ef_construction(64)
            .metric(Metric::InnerProduct)
            .build(std::hint::black_box(&data))
            .expect("build")
    });

    let data = random_mat(10_000, 32, 3);
    runner.bench("build/kmeans_seed_sweep_2pct", || {
        SeedSweep::new(KMeansConfig::new(10), 4)
            .with_subsample(0.02, 9)
            .run(std::hint::black_box(&data))
    });

    runner.finish();
}
