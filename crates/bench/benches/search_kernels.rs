//! Micro-benchmarks for the hot search kernels: distance computation,
//! top-k selection and asymmetric code scoring. Runs on the
//! `hermes-testkit` wall-clock runner (`cargo bench --bench search_kernels`).

use hermes_math::rng::seeded_rng;
use hermes_math::{distance, Mat, Metric, TopK};
use hermes_quant::{Codec, CodecSpec};
use hermes_testkit::bench::Runner;

fn random_mat(n: usize, dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    Mat::from_rows(
        &(0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32()).collect::<Vec<f32>>())
            .collect::<Vec<_>>(),
    )
}

fn bench_distances(runner: &mut Runner) {
    for dim in [64usize, 768] {
        let data = random_mat(2, dim, 1);
        let (a, b) = (data.row(0).to_vec(), data.row(1).to_vec());
        runner.bench(&format!("distance/l2_sq/{dim}"), || {
            distance::l2_sq(std::hint::black_box(&a), std::hint::black_box(&b))
        });
        runner.bench(&format!("distance/inner_product/{dim}"), || {
            distance::inner_product(std::hint::black_box(&a), std::hint::black_box(&b))
        });
    }
}

fn bench_topk(runner: &mut Runner) {
    let mut rng = seeded_rng(7);
    let scores: Vec<f32> = (0..100_000).map(|_| rng.next_f32()).collect();
    runner.bench("topk/100k_candidates_k10", || {
        let mut top = TopK::new(10);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i as u64, s);
        }
        top.into_sorted_vec()
    });
}

fn bench_codec_scoring(runner: &mut Runner) {
    let data = random_mat(4096, 96, 3);
    let query = data.row(0).to_vec();
    for spec in [CodecSpec::Flat, CodecSpec::Sq8, CodecSpec::Pq { m: 24 }] {
        let codec = Codec::train(spec, &data, 5);
        let codes: Vec<Vec<u8>> = data.iter_rows().map(|r| codec.encode(r)).collect();
        runner.bench(&format!("codec_scan_4096x96/{}", spec.label()), || {
            let scorer = codec.query_scorer(&query, Metric::InnerProduct);
            let mut acc = 0.0f32;
            for code in &codes {
                acc += scorer.score(code);
            }
            acc
        });
    }
}

fn main() {
    let mut runner = Runner::from_args("search_kernels");
    bench_distances(&mut runner);
    bench_topk(&mut runner);
    bench_codec_scoring(&mut runner);
    runner.finish();
}
