//! Criterion micro-benchmarks for the hot search kernels: distance
//! computation, top-k selection and asymmetric code scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_math::rng::seeded_rng;
use hermes_math::{distance, Mat, Metric, TopK};
use hermes_quant::{Codec, CodecSpec};
use rand::Rng;

fn random_mat(n: usize, dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    Mat::from_rows(
        &(0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect::<Vec<f32>>())
            .collect::<Vec<_>>(),
    )
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [64usize, 768] {
        let data = random_mat(2, dim, 1);
        let (a, b) = (data.row(0).to_vec(), data.row(1).to_vec());
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bench, _| {
            bench.iter(|| distance::l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("inner_product", dim), &dim, |bench, _| {
            bench.iter(|| {
                distance::inner_product(std::hint::black_box(&a), std::hint::black_box(&b))
            })
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = seeded_rng(7);
    let scores: Vec<f32> = (0..100_000).map(|_| rng.gen()).collect();
    c.bench_function("topk/100k_candidates_k10", |bench| {
        bench.iter(|| {
            let mut top = TopK::new(10);
            for (i, &s) in scores.iter().enumerate() {
                top.push(i as u64, s);
            }
            top.into_sorted_vec()
        })
    });
}

fn bench_codec_scoring(c: &mut Criterion) {
    let data = random_mat(4096, 96, 3);
    let query = data.row(0).to_vec();
    let mut group = c.benchmark_group("codec_scan_4096x96");
    for spec in [CodecSpec::Flat, CodecSpec::Sq8, CodecSpec::Pq { m: 24 }] {
        let codec = Codec::train(spec, &data, 5);
        let codes: Vec<bytes::Bytes> = data.iter_rows().map(|r| codec.encode(r)).collect();
        group.bench_function(spec.label(), |bench| {
            bench.iter(|| {
                let scorer = codec.query_scorer(&query, Metric::InnerProduct);
                let mut acc = 0.0f32;
                for code in &codes {
                    acc += scorer.score(code);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distances, bench_topk, bench_codec_scoring
}
criterion_main!(benches);
