//! Vector codecs: the quantization schemes of the paper's Table 1.
//!
//! An IVF index stores each vector as a fixed-size byte code. The paper
//! compares `Flat` (raw f32), scalar quantization (`SQ8`, `SQ4`), product
//! quantization (`PQ256`, `PQ384`) and rotated product quantization
//! (`OPQ256`, `OPQ384`), choosing **IVF-SQ8** as the deployment point:
//! 4× smaller than Flat with near-identical recall.
//!
//! [`Codec`] is the trained codec; [`CodecSpec`] describes what to train;
//! [`QueryScorer`] performs asymmetric scoring — the query stays in f32
//! while database vectors stay encoded, with PQ using per-subspace lookup
//! tables (ADC).
//!
//! *Substitution note:* true OPQ alternates PQ training with a Procrustes
//! rotation update. We use a seeded random orthonormal rotation before PQ,
//! which captures OPQ's subspace-decorrelation effect on the synthetic
//! corpora used here; DESIGN.md records this simplification.
//!
//! # Examples
//!
//! ```
//! use hermes_math::{Mat, Metric};
//! use hermes_quant::{Codec, CodecSpec};
//!
//! let data = Mat::from_rows(&(0..32).map(|i| vec![i as f32, 1.0, -i as f32, 0.5]).collect::<Vec<_>>());
//! let codec = Codec::train(CodecSpec::Sq8, &data, 0);
//! let code = codec.encode(data.row(3));
//! assert_eq!(code.len(), 4); // one byte per dimension
//! let approx = codec.decode(&code);
//! assert!((approx[0] - 3.0).abs() < 0.5);
//! ```

use hermes_kmeans::{KMeans, KMeansConfig};
use hermes_math::distance::{inner_product, l2_sq};
use hermes_math::rng::{derive_seed, seeded_rng};
use hermes_math::simd::{simd_level, SimdLevel};
use hermes_math::{Mat, Metric};

/// Which codec to train; mirrors the rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecSpec {
    /// Raw little-endian f32 storage (4 bytes/dim).
    Flat,
    /// 8-bit scalar quantization (1 byte/dim) — the paper's deployment pick.
    Sq8,
    /// 4-bit scalar quantization (0.5 bytes/dim).
    Sq4,
    /// Product quantization with `m` subspaces of 256 centroids each
    /// (1 byte per subspace).
    Pq {
        /// Number of subspaces; must divide the dimension.
        m: usize,
    },
    /// PQ preceded by a seeded random orthonormal rotation (OPQ stand-in).
    Opq {
        /// Number of subspaces; must divide the dimension.
        m: usize,
    },
}

impl CodecSpec {
    /// Bytes per encoded vector at dimensionality `dim`.
    pub fn code_size(self, dim: usize) -> usize {
        match self {
            CodecSpec::Flat => dim * 4,
            CodecSpec::Sq8 => dim,
            CodecSpec::Sq4 => dim.div_ceil(2),
            CodecSpec::Pq { m } | CodecSpec::Opq { m } => m,
        }
    }

    /// Table-1-style label.
    pub fn label(self) -> String {
        match self {
            CodecSpec::Flat => "Flat".to_string(),
            CodecSpec::Sq8 => "SQ8".to_string(),
            CodecSpec::Sq4 => "SQ4".to_string(),
            CodecSpec::Pq { m } => format!("PQ{m}"),
            CodecSpec::Opq { m } => format!("OPQ{m}"),
        }
    }
}

impl std::fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A trained vector codec.
#[derive(Debug, Clone)]
pub struct Codec {
    dim: usize,
    kind: CodecKind,
}

#[derive(Debug, Clone)]
enum CodecKind {
    Flat,
    Sq(ScalarQuantizer),
    Pq(ProductQuantizer),
}

impl Codec {
    /// Trains a codec of the requested kind on `training` vectors.
    ///
    /// Training cost: `Flat` is free; `SQ` scans once for per-dimension
    /// ranges; `PQ`/`OPQ` run K-means per subspace.
    ///
    /// # Panics
    ///
    /// Panics if `training` is empty, or for PQ/OPQ if `m` does not divide
    /// the dimension or is zero.
    pub fn train(spec: CodecSpec, training: &Mat, seed: u64) -> Self {
        assert!(training.rows() > 0, "codec training set is empty");
        let dim = training.cols();
        let kind = match spec {
            CodecSpec::Flat => CodecKind::Flat,
            CodecSpec::Sq8 => CodecKind::Sq(ScalarQuantizer::train(training, SqBits::B8)),
            CodecSpec::Sq4 => CodecKind::Sq(ScalarQuantizer::train(training, SqBits::B4)),
            CodecSpec::Pq { m } => {
                CodecKind::Pq(ProductQuantizer::train(training, m, None, seed))
            }
            CodecSpec::Opq { m } => {
                let rotation = random_rotation(dim, derive_seed(seed, 0xC0DE));
                CodecKind::Pq(ProductQuantizer::train(training, m, Some(rotation), seed))
            }
        };
        Codec { dim, kind }
    }

    /// Dimensionality of vectors this codec encodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes per encoded vector.
    pub fn code_size(&self) -> usize {
        match &self.kind {
            CodecKind::Flat => self.dim * 4,
            CodecKind::Sq(sq) => sq.code_size(),
            CodecKind::Pq(pq) => pq.m,
        }
    }

    /// Encodes `v` into a fresh byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.code_size());
        self.encode_into(v, &mut buf);
        buf
    }

    /// Appends the encoding of `v` to `out` — the bulk-ingest path used by
    /// the IVF inverted lists.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        match &self.kind {
            CodecKind::Flat => {
                for &x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            CodecKind::Sq(sq) => sq.encode_into(v, out),
            CodecKind::Pq(pq) => pq.encode_into(v, out),
        }
    }

    /// Reconstructs an approximate vector from a code.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.code_size()`.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.code_size(), "code size mismatch");
        match &self.kind {
            CodecKind::Flat => code
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
            CodecKind::Sq(sq) => sq.decode(code),
            CodecKind::Pq(pq) => pq.decode(code),
        }
    }

    /// Prepares an asymmetric scorer for `query` under `metric`.
    ///
    /// The scorer's `score(code)` returns a similarity (greater = closer)
    /// comparable with [`Metric::similarity`] on decoded vectors. For PQ
    /// this builds the ADC lookup tables once per query.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn query_scorer<'a>(&'a self, query: &[f32], metric: Metric) -> QueryScorer<'a> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        // Cosine reduces to inner product on a normalized query; database
        // vectors are assumed normalized upstream (the encoder stand-in
        // emits unit vectors).
        let (query, metric) = match metric {
            Metric::Cosine => {
                let mut q = query.to_vec();
                hermes_math::distance::normalize(&mut q);
                (q, Metric::InnerProduct)
            }
            _ => (query.to_vec(), metric),
        };
        match &self.kind {
            CodecKind::Flat => QueryScorer::Flat { query, metric },
            CodecKind::Sq(sq) => QueryScorer::Sq {
                sq,
                query,
                metric,
            },
            CodecKind::Pq(pq) => QueryScorer::Pq {
                tables: pq.adc_tables(&query, metric),
                m: pq.m,
            },
        }
    }
}

/// Asymmetric per-query scorer produced by [`Codec::query_scorer`].
#[derive(Debug)]
pub enum QueryScorer<'a> {
    /// Raw f32 comparison.
    Flat {
        /// Query vector (normalized if the metric was cosine).
        query: Vec<f32>,
        /// Effective metric.
        metric: Metric,
    },
    /// Scalar-quantized comparison decoded on the fly.
    Sq {
        /// The trained scalar quantizer.
        sq: &'a ScalarQuantizer,
        /// Query vector.
        query: Vec<f32>,
        /// Effective metric.
        metric: Metric,
    },
    /// Product-quantized comparison via ADC lookup tables.
    Pq {
        /// `m * 256` similarity contributions, laid out per subspace.
        tables: Vec<f32>,
        /// Number of subspaces.
        m: usize,
    },
}

impl QueryScorer<'_> {
    /// Similarity of the encoded vector `code` to the query.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `code` has the wrong length.
    #[inline]
    pub fn score(&self, code: &[u8]) -> f32 {
        match self {
            QueryScorer::Flat { query, metric } => {
                debug_assert_eq!(code.len(), query.len() * 4);
                let mut acc = 0.0f32;
                match metric {
                    Metric::InnerProduct | Metric::Cosine => {
                        for (i, c) in code.chunks_exact(4).enumerate() {
                            acc += query[i] * f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                        }
                        acc
                    }
                    Metric::L2 => {
                        for (i, c) in code.chunks_exact(4).enumerate() {
                            let d = query[i] - f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                            acc += d * d;
                        }
                        -acc
                    }
                }
            }
            QueryScorer::Sq { sq, query, metric } => sq.score(code, query, *metric),
            QueryScorer::Pq { tables, m } => {
                debug_assert_eq!(code.len(), *m);
                let mut acc = 0.0f32;
                for (sub, &c) in code.iter().enumerate() {
                    acc += tables[sub * 256 + c as usize];
                }
                acc
            }
        }
    }

    /// Bytes per code this scorer consumes.
    #[inline]
    pub fn code_size(&self) -> usize {
        match self {
            QueryScorer::Flat { query, .. } => query.len() * 4,
            QueryScorer::Sq { sq, .. } => sq.code_size(),
            QueryScorer::Pq { m, .. } => *m,
        }
    }

    /// Scores a contiguous block of `out.len()` codes at once — the form
    /// the IVF inverted-list probe consumes — at the process-wide
    /// [`simd_level`]. `out[i]` is **bit-identical to `self.score(code_i)`
    /// at every dispatch level** (the tier-A contract): the SQ8 and
    /// PQ/ADC kernels in `hermes_math::block` vectorize across codes, so
    /// each code keeps the exact scalar operation sequence. SQ decode
    /// constants and ADC table rows are reused across a tile of codes
    /// instead of being reloaded per code, and the code-size check runs
    /// once per block instead of once per code.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out.len() * self.code_size()`.
    pub fn score_block(&self, codes: &[u8], out: &mut [f32]) {
        self.score_block_at(simd_level(), codes, out);
    }

    /// [`QueryScorer::score_block`] at an explicit dispatch level — the
    /// seam the equivalence suites use to pin tier-A bit-identity for
    /// every runnable kernel in one process.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out.len() * self.code_size()`.
    pub fn score_block_at(&self, level: SimdLevel, codes: &[u8], out: &mut [f32]) {
        let cs = self.code_size();
        assert_eq!(
            codes.len(),
            out.len() * cs,
            "code block size mismatch: {} bytes is not {} codes x {cs} bytes",
            codes.len(),
            out.len()
        );
        if cs == 0 {
            // Degenerate zero-dim codec: every code is empty.
            out.fill(self.score(&[]));
            return;
        }
        match self {
            QueryScorer::Sq { sq, query, metric } => {
                sq.score_block_at(level, codes, query, *metric, out)
            }
            QueryScorer::Pq { tables, m } => {
                hermes_math::block::adc_block_at(level, tables, *m, codes, out)
            }
            // Flat decodes four little-endian bytes per dim with a single
            // sequential accumulator; it stays scalar at every level (the
            // deployment codecs are SQ8 and PQ — see DESIGN.md).
            QueryScorer::Flat { .. } => {
                for (o, code) in out.iter_mut().zip(codes.chunks_exact(cs)) {
                    *o = self.score(code);
                }
            }
        }
    }
}

/// Scalar quantizer bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqBits {
    /// One byte per dimension (256 levels).
    B8,
    /// Half a byte per dimension (16 levels), two dims packed per byte.
    B4,
}

impl SqBits {
    fn levels(self) -> u32 {
        match self {
            SqBits::B8 => 256,
            SqBits::B4 => 16,
        }
    }
}

/// Per-dimension min/max scalar quantizer.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    bits: SqBits,
    mins: Vec<f32>,
    scales: Vec<f32>,
}

impl ScalarQuantizer {
    /// Learns per-dimension ranges from `training`.
    pub fn train(training: &Mat, bits: SqBits) -> Self {
        let dim = training.cols();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for row in training.iter_rows() {
            for (d, &x) in row.iter().enumerate() {
                mins[d] = mins[d].min(x);
                maxs[d] = maxs[d].max(x);
            }
        }
        let denom = (bits.levels() - 1) as f32;
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let span = hi - lo;
                if span > 0.0 {
                    span / denom
                } else {
                    // Constant dimension: decode to the constant exactly.
                    0.0
                }
            })
            .collect();
        ScalarQuantizer { bits, mins, scales }
    }

    fn dim(&self) -> usize {
        self.mins.len()
    }

    fn code_size(&self) -> usize {
        match self.bits {
            SqBits::B8 => self.dim(),
            SqBits::B4 => self.dim().div_ceil(2),
        }
    }

    fn quantize_one(&self, d: usize, x: f32) -> u32 {
        if self.scales[d] == 0.0 {
            return 0;
        }
        let max_level = self.bits.levels() - 1;
        (((x - self.mins[d]) / self.scales[d]).round())
            .clamp(0.0, max_level as f32) as u32
    }

    fn dequantize_one(&self, d: usize, level: u32) -> f32 {
        self.mins[d] + level as f32 * self.scales[d]
    }

    fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        match self.bits {
            SqBits::B8 => {
                for (d, &x) in v.iter().enumerate() {
                    out.push(self.quantize_one(d, x) as u8);
                }
            }
            SqBits::B4 => {
                let mut d = 0;
                while d < v.len() {
                    let lo = self.quantize_one(d, v[d]) as u8;
                    let hi = if d + 1 < v.len() {
                        self.quantize_one(d + 1, v[d + 1]) as u8
                    } else {
                        0
                    };
                    out.push(lo | (hi << 4));
                    d += 2;
                }
            }
        }
    }

    fn decode(&self, code: &[u8]) -> Vec<f32> {
        let dim = self.dim();
        let mut out = Vec::with_capacity(dim);
        match self.bits {
            SqBits::B8 => {
                for (d, &c) in code.iter().enumerate() {
                    out.push(self.dequantize_one(d, c as u32));
                }
            }
            SqBits::B4 => {
                for d in 0..dim {
                    let byte = code[d / 2];
                    let level = if d.is_multiple_of(2) { byte & 0x0F } else { byte >> 4 };
                    out.push(self.dequantize_one(d, level as u32));
                }
            }
        }
        out
    }

    /// Blocked form of [`ScalarQuantizer::score`]: per code the same
    /// dequantize-and-accumulate operation order at every dispatch
    /// level (tier A — bit-identical). SQ8 routes through the
    /// level-dispatched `hermes_math::block` kernels, which vectorize
    /// across codes and share the per-dimension `(q, min, scale)`
    /// constants across a tile of codes; B4 codes (packed nibbles) take
    /// the scalar path at every level.
    fn score_block_at(
        &self,
        level: SimdLevel,
        codes: &[u8],
        query: &[f32],
        metric: Metric,
        out: &mut [f32],
    ) {
        let cs = self.code_size();
        if self.bits == SqBits::B8 {
            match metric {
                Metric::InnerProduct | Metric::Cosine => hermes_math::block::sq8_ip_block_at(
                    level,
                    query,
                    &self.mins,
                    &self.scales,
                    codes,
                    out,
                ),
                Metric::L2 => hermes_math::block::sq8_l2_block_at(
                    level,
                    query,
                    &self.mins,
                    &self.scales,
                    codes,
                    out,
                ),
            }
            return;
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.score(&codes[r * cs..(r + 1) * cs], query, metric);
        }
    }

    fn score(&self, code: &[u8], query: &[f32], metric: Metric) -> f32 {
        // Decode-on-the-fly scoring; SQ decode is a fused multiply-add per
        // dimension, so a separate table gains little.
        let mut acc = 0.0f32;
        let dim = self.dim();
        let level_at = |d: usize| -> u32 {
            match self.bits {
                SqBits::B8 => code[d] as u32,
                SqBits::B4 => {
                    let byte = code[d / 2];
                    (if d.is_multiple_of(2) { byte & 0x0F } else { byte >> 4 }) as u32
                }
            }
        };
        match metric {
            Metric::InnerProduct | Metric::Cosine => {
                for (d, q) in query.iter().enumerate().take(dim) {
                    acc += q * self.dequantize_one(d, level_at(d));
                }
                acc
            }
            Metric::L2 => {
                for (d, q) in query.iter().enumerate().take(dim) {
                    let diff = q - self.dequantize_one(d, level_at(d));
                    acc += diff * diff;
                }
                -acc
            }
        }
    }
}

/// Product quantizer: `m` subspaces, 256 centroids per subspace (8 bits),
/// optionally preceded by an orthonormal rotation (OPQ stand-in).
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    m: usize,
    dsub: usize,
    /// Per-subspace codebooks: `codebooks[s]` is a `256 x dsub` matrix
    /// (fewer rows if the training set was tiny).
    codebooks: Vec<Mat>,
    rotation: Option<Mat>,
}

impl ProductQuantizer {
    /// Trains PQ codebooks with K-means per subspace.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m` does not divide the dimension.
    pub fn train(training: &Mat, m: usize, rotation: Option<Mat>, seed: u64) -> Self {
        let dim = training.cols();
        assert!(m > 0, "PQ needs at least one subspace");
        assert!(dim.is_multiple_of(m), "m={m} must divide dim={dim}");
        let dsub = dim / m;

        // Apply rotation to the training set once.
        let rotated: Vec<Vec<f32>> = training
            .iter_rows()
            .map(|r| match &rotation {
                Some(rot) => rot.mat_vec(r),
                None => r.to_vec(),
            })
            .collect();

        let k = 256.min(training.rows());
        let mut codebooks = Vec::with_capacity(m);
        for s in 0..m {
            let sub_rows: Vec<Vec<f32>> = rotated
                .iter()
                .map(|r| r[s * dsub..(s + 1) * dsub].to_vec())
                .collect();
            let sub = Mat::from_rows(&sub_rows);
            let cfg = KMeansConfig::new(k)
                .with_seed(derive_seed(seed, s as u64))
                .with_max_iters(12);
            codebooks.push(KMeans::train(&sub, &cfg).centroids().clone());
        }
        ProductQuantizer {
            m,
            dsub,
            codebooks,
            rotation,
        }
    }

    fn rotate(&self, v: &[f32]) -> Vec<f32> {
        match &self.rotation {
            Some(rot) => rot.mat_vec(v),
            None => v.to_vec(),
        }
    }

    fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        let rv = self.rotate(v);
        for s in 0..self.m {
            let sub = &rv[s * self.dsub..(s + 1) * self.dsub];
            let (best, _) = hermes_math::block::nearest_row_l2(sub, &self.codebooks[s]);
            out.push(best as u8);
        }
    }

    fn decode(&self, code: &[u8]) -> Vec<f32> {
        let mut rotated = Vec::with_capacity(self.m * self.dsub);
        for (s, &c) in code.iter().enumerate() {
            let row = (c as usize).min(self.codebooks[s].rows() - 1);
            rotated.extend_from_slice(self.codebooks[s].row(row));
        }
        match &self.rotation {
            Some(rot) => rot.transpose_vec(&rotated),
            None => rotated,
        }
    }

    /// Builds the `m * 256` ADC table of per-subspace similarity
    /// contributions for `query` under `metric`.
    fn adc_tables(&self, query: &[f32], metric: Metric) -> Vec<f32> {
        let rq = self.rotate(query);
        let mut tables = vec![0.0f32; self.m * 256];
        for s in 0..self.m {
            let sub = &rq[s * self.dsub..(s + 1) * self.dsub];
            for (c, row) in self.codebooks[s].iter_rows().enumerate() {
                tables[s * 256 + c] = match metric {
                    Metric::InnerProduct | Metric::Cosine => inner_product(sub, row),
                    Metric::L2 => -l2_sq(sub, row),
                };
            }
            // Unused codebook slots (tiny training sets) keep similarity 0,
            // matching an all-zero reconstruction.
        }
        tables
    }
}

impl hermes_math::wire::WireEncode for Codec {
    fn encode_wire(&self, w: &mut hermes_math::wire::Writer) {
        w.u64(self.dim as u64);
        match &self.kind {
            CodecKind::Flat => w.u8(0),
            CodecKind::Sq(sq) => {
                w.u8(match sq.bits {
                    SqBits::B8 => 1,
                    SqBits::B4 => 2,
                });
                w.f32s(&sq.mins);
                w.f32s(&sq.scales);
            }
            CodecKind::Pq(pq) => {
                w.u8(3);
                w.u64(pq.m as u64);
                w.u64(pq.dsub as u64);
                w.u64(pq.codebooks.len() as u64);
                for cb in &pq.codebooks {
                    w.mat(cb);
                }
                match &pq.rotation {
                    Some(rot) => {
                        w.u8(1);
                        w.mat(rot);
                    }
                    None => w.u8(0),
                }
            }
        }
    }
}

impl hermes_math::wire::WireDecode for Codec {
    fn decode_wire(
        r: &mut hermes_math::wire::Reader<'_>,
    ) -> Result<Self, hermes_math::wire::WireError> {
        use hermes_math::wire::WireError;
        let dim = r.u64()? as usize;
        let tag = r.u8()?;
        let kind = match tag {
            0 => CodecKind::Flat,
            1 | 2 => {
                let bits = if tag == 1 { SqBits::B8 } else { SqBits::B4 };
                let mins = r.f32s()?;
                let scales = r.f32s()?;
                if mins.len() != dim || scales.len() != dim {
                    return Err(WireError::Corrupt("SQ table length mismatch".into()));
                }
                CodecKind::Sq(ScalarQuantizer { bits, mins, scales })
            }
            3 => {
                let m = r.u64()? as usize;
                let dsub = r.u64()? as usize;
                let n_cb = r.u64()? as usize;
                if m == 0 || n_cb != m || m.checked_mul(dsub) != Some(dim) {
                    return Err(WireError::Corrupt("PQ shape mismatch".into()));
                }
                let mut codebooks = Vec::with_capacity(n_cb);
                for _ in 0..n_cb {
                    codebooks.push(r.mat()?);
                }
                let rotation = match r.u8()? {
                    0 => None,
                    1 => Some(r.mat()?),
                    t => return Err(WireError::Corrupt(format!("bad rotation tag {t}"))),
                };
                CodecKind::Pq(ProductQuantizer {
                    m,
                    dsub,
                    codebooks,
                    rotation,
                })
            }
            t => return Err(WireError::Corrupt(format!("bad codec tag {t}"))),
        };
        Ok(Codec { dim, kind })
    }
}

/// A seeded random orthonormal `dim x dim` rotation (Gaussian + modified
/// Gram–Schmidt).
pub fn random_rotation(dim: usize, seed: u64) -> Mat {
    let mut rng = seeded_rng(seed);
    let rows: Vec<Vec<f32>> = (0..dim)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    // Box-Muller standard normal.
                    let u1: f32 = rng.next_f32().max(1e-7);
                    let u2: f32 = rng.next_f32();
                    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                })
                .collect()
        })
        .collect();
    let mut m = Mat::from_rows(&rows);
    m.orthonormalize_rows();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_math::rng::seeded_rng;

    fn gaussian_data(n: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
            .collect();
        Mat::from_rows(&rows)
    }

    #[test]
    fn code_sizes_match_table_1_at_768_dims() {
        // Table 1 of the paper, bytes per vector at d=768.
        assert_eq!(CodecSpec::Flat.code_size(768), 3072);
        assert_eq!(CodecSpec::Sq8.code_size(768), 768);
        assert_eq!(CodecSpec::Sq4.code_size(768), 384);
        assert_eq!(CodecSpec::Pq { m: 256 }.code_size(768), 256);
        assert_eq!(CodecSpec::Opq { m: 256 }.code_size(768), 256);
        assert_eq!(CodecSpec::Pq { m: 384 }.code_size(768), 384);
        assert_eq!(CodecSpec::Opq { m: 384 }.code_size(768), 384);
    }

    #[test]
    fn flat_round_trips_exactly() {
        let data = gaussian_data(8, 16, 1);
        let codec = Codec::train(CodecSpec::Flat, &data, 0);
        for row in data.iter_rows() {
            assert_eq!(codec.decode(&codec.encode(row)), row.to_vec());
        }
    }

    #[test]
    fn sq8_reconstruction_error_is_small() {
        let data = gaussian_data(64, 32, 2);
        let codec = Codec::train(CodecSpec::Sq8, &data, 0);
        for row in data.iter_rows() {
            let approx = codec.decode(&codec.encode(row));
            let err = l2_sq(&approx, row).sqrt();
            assert!(err < 0.1, "err {err}");
        }
    }

    #[test]
    fn sq4_is_coarser_than_sq8() {
        let data = gaussian_data(64, 32, 3);
        let sq8 = Codec::train(CodecSpec::Sq8, &data, 0);
        let sq4 = Codec::train(CodecSpec::Sq4, &data, 0);
        let mut err8 = 0.0;
        let mut err4 = 0.0;
        for row in data.iter_rows() {
            err8 += l2_sq(&sq8.decode(&sq8.encode(row)), row);
            err4 += l2_sq(&sq4.decode(&sq4.encode(row)), row);
        }
        assert!(err4 > err8);
        assert_eq!(sq4.code_size(), sq8.code_size() / 2);
    }

    #[test]
    fn sq4_handles_odd_dimensions() {
        let data = gaussian_data(16, 7, 4);
        let codec = Codec::train(CodecSpec::Sq4, &data, 0);
        assert_eq!(codec.code_size(), 4);
        let decoded = codec.decode(&codec.encode(data.row(0)));
        assert_eq!(decoded.len(), 7);
    }

    #[test]
    fn constant_dimension_decodes_exactly() {
        let rows: Vec<Vec<f32>> = (0..8).map(|i| vec![5.0, i as f32]).collect();
        let data = Mat::from_rows(&rows);
        let codec = Codec::train(CodecSpec::Sq8, &data, 0);
        let decoded = codec.decode(&codec.encode(&[5.0, 3.0]));
        assert_eq!(decoded[0], 5.0);
    }

    #[test]
    fn pq_reconstruction_beats_random_guess() {
        let data = gaussian_data(256, 16, 5);
        let codec = Codec::train(CodecSpec::Pq { m: 4 }, &data, 7);
        let mut err = 0.0f32;
        let mut base = 0.0f32;
        for row in data.iter_rows() {
            err += l2_sq(&codec.decode(&codec.encode(row)), row);
            base += l2_sq(&[0.0; 16], row);
        }
        assert!(err < base * 0.5, "pq err {err} vs baseline {base}");
    }

    #[test]
    fn opq_round_trip_dimension_is_preserved() {
        let data = gaussian_data(128, 8, 6);
        let codec = Codec::train(CodecSpec::Opq { m: 2 }, &data, 9);
        let decoded = codec.decode(&codec.encode(data.row(0)));
        assert_eq!(decoded.len(), 8);
    }

    #[test]
    fn scorer_matches_decoded_similarity_for_flat() {
        let data = gaussian_data(16, 12, 7);
        let codec = Codec::train(CodecSpec::Flat, &data, 0);
        let query: Vec<f32> = data.row(0).to_vec();
        for metric in [Metric::L2, Metric::InnerProduct] {
            let scorer = codec.query_scorer(&query, metric);
            for row in data.iter_rows() {
                let code = codec.encode(row);
                let want = metric.similarity(&query, row);
                let got = scorer.score(&code);
                assert!((want - got).abs() < 1e-4, "{metric}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn scorer_matches_decode_then_score_for_sq() {
        let data = gaussian_data(32, 24, 8);
        let codec = Codec::train(CodecSpec::Sq8, &data, 0);
        let query: Vec<f32> = data.row(1).to_vec();
        for metric in [Metric::L2, Metric::InnerProduct] {
            let scorer = codec.query_scorer(&query, metric);
            for row in data.iter_rows() {
                let code = codec.encode(row);
                let want = metric.similarity(&query, &codec.decode(&code));
                let got = scorer.score(&code);
                assert!((want - got).abs() < 1e-3, "{metric}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn scorer_matches_decode_then_score_for_pq() {
        let data = gaussian_data(300, 16, 9);
        let codec = Codec::train(CodecSpec::Pq { m: 4 }, &data, 3);
        let query: Vec<f32> = data.row(2).to_vec();
        let scorer = codec.query_scorer(&query, Metric::L2);
        for row in data.iter_rows().take(32) {
            let code = codec.encode(row);
            // ADC decomposes L2 exactly across subspaces.
            let want = Metric::L2.similarity(&query, &codec.decode(&code));
            let got = scorer.score(&code);
            assert!((want - got).abs() < 1e-2, "{want} vs {got}");
        }
    }

    #[test]
    fn score_block_is_bit_identical_to_score_for_every_codec() {
        let data = gaussian_data(16, 12, 21);
        let specs = [
            CodecSpec::Flat,
            CodecSpec::Sq8,
            CodecSpec::Sq4,
            CodecSpec::Pq { m: 4 },
        ];
        for spec in specs {
            let codec = Codec::train(spec, &data, 5);
            let mut codes = Vec::new();
            for row in data.iter_rows() {
                codec.encode_into(row, &mut codes);
            }
            let query: Vec<f32> = data.row(3).to_vec();
            for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
                let scorer = codec.query_scorer(&query, metric);
                let cs = scorer.code_size();
                let mut out = vec![0.0f32; data.rows()];
                scorer.score_block(&codes, &mut out);
                for (i, got) in out.iter().enumerate() {
                    let want = scorer.score(&codes[i * cs..(i + 1) * cs]);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{spec} {metric} code {i}"
                    );
                }
                // Tier A: the same bit-identity must hold at every
                // runnable dispatch level, not just the selected one.
                for level in SimdLevel::available() {
                    scorer.score_block_at(level, &codes, &mut out);
                    for (i, got) in out.iter().enumerate() {
                        let want = scorer.score(&codes[i * cs..(i + 1) * cs]);
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{spec} {metric} {level} code {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "code block size mismatch")]
    fn score_block_rejects_short_code_buffers() {
        let data = gaussian_data(8, 6, 22);
        let codec = Codec::train(CodecSpec::Sq8, &data, 0);
        let scorer = codec.query_scorer(data.row(0), Metric::L2);
        let mut out = [0.0f32; 2];
        scorer.score_block(&[0u8; 6], &mut out);
    }

    #[test]
    fn quantized_search_preserves_nearest_neighbor_most_of_the_time() {
        let data = gaussian_data(200, 32, 10);
        let codec = Codec::train(CodecSpec::Sq8, &data, 0);
        let codes: Vec<Vec<u8>> = data.iter_rows().map(|r| codec.encode(r)).collect();
        let mut agree = 0;
        for qi in 0..50 {
            let query = data.row(qi);
            // Exact nearest by L2.
            let exact = (0..data.rows())
                .min_by(|&a, &b| {
                    l2_sq(data.row(a), query)
                        .partial_cmp(&l2_sq(data.row(b), query))
                        .unwrap()
                })
                .unwrap();
            let scorer = codec.query_scorer(query, Metric::L2);
            let approx = (0..codes.len())
                .max_by(|&a, &b| {
                    scorer
                        .score(&codes[a])
                        .partial_cmp(&scorer.score(&codes[b]))
                        .unwrap()
                })
                .unwrap();
            if exact == approx {
                agree += 1;
            }
        }
        assert!(agree >= 45, "SQ8 agreement too low: {agree}/50");
    }

    #[test]
    fn random_rotation_is_orthonormal() {
        let rot = random_rotation(16, 42);
        for i in 0..16 {
            for j in 0..16 {
                let got = inner_product(rot.row(i), rot.row(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((got - want).abs() < 1e-4, "({i},{j}) = {got}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn pq_checks_divisibility() {
        let data = gaussian_data(32, 10, 11);
        let _ = Codec::train(CodecSpec::Pq { m: 3 }, &data, 0);
    }

    #[test]
    fn codec_spec_labels_match_table_1() {
        assert_eq!(CodecSpec::Opq { m: 384 }.to_string(), "OPQ384");
        assert_eq!(CodecSpec::Sq8.to_string(), "SQ8");
    }

    #[test]
    fn codecs_round_trip_through_the_wire() {
        use hermes_math::wire::{Reader, WireDecode, WireEncode, Writer};
        let data = gaussian_data(300, 16, 12);
        for spec in [
            CodecSpec::Flat,
            CodecSpec::Sq8,
            CodecSpec::Sq4,
            CodecSpec::Pq { m: 4 },
            CodecSpec::Opq { m: 4 },
        ] {
            let codec = Codec::train(spec, &data, 9);
            let mut w = Writer::new();
            codec.encode_wire(&mut w);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            let loaded = Codec::decode_wire(&mut r).unwrap();
            assert_eq!(loaded.dim(), codec.dim(), "{spec}");
            assert_eq!(loaded.code_size(), codec.code_size(), "{spec}");
            for row in data.iter_rows().take(8) {
                assert_eq!(loaded.encode(row), codec.encode(row), "{spec}");
                assert_eq!(loaded.decode(&codec.encode(row)), codec.decode(&codec.encode(row)));
            }
        }
    }

    #[test]
    fn corrupt_codec_tag_is_rejected() {
        use hermes_math::wire::{Reader, WireDecode, Writer};
        let mut w = Writer::new();
        w.u64(8);
        w.u8(99); // invalid codec tag
        let buf = w.finish();
        assert!(Codec::decode_wire(&mut Reader::new(&buf)).is_err());
    }
}
