//! `hermes` — command-line front end for the reproduction.
//!
//! Mirrors the paper artifact's workflow (Appendix A.5): offline index
//! construction, accuracy evaluation and online serving, as subcommands:
//!
//! ```text
//! hermes build  --docs 20000 --dim 64 --topics 10 --clusters 10 --out store.hcls
//! hermes info   --store store.hcls
//! hermes search --store store.hcls --query "what is in the datastore" --k 5
//! hermes eval   --docs 10000 --dim 48 --topics 10 --clusters 10 --queries 40
//! hermes plan   --tokens 100000000000 --batch 128 --stride 16
//! hermes trace  --queries 40 --out trace.json
//! hermes stats  --queries 40
//! ```
//!
//! `trace` and `stats` run a synthetic hierarchical-search workload
//! twice — telemetry off, then on — assert the results are
//! bit-identical, and emit the captured events as Chrome trace-event
//! JSON (Perfetto-loadable) or an ASCII span/counter summary. The
//! `trace` path re-parses its own output before writing it, so it
//! doubles as the `verify.sh` telemetry smoke test.

use std::collections::HashMap;
use std::process::ExitCode;

use hermes::datagen::scale::format_tokens;
use hermes::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "build" => cmd_build(&opts),
        "info" => cmd_info(&opts),
        "search" => cmd_search(&opts),
        "eval" => cmd_eval(&opts),
        "plan" => cmd_plan(&opts),
        "trace" => cmd_trace(&opts),
        "stats" => cmd_stats(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "report" => cmd_report(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "hermes — Hermes RAG-at-scale reproduction CLI

USAGE:
  hermes build  --out <file> [--docs N] [--dim D] [--topics T]
                [--clusters C] [--deep M] [--seed S]
  hermes info   --store <file>
  hermes search --store <file> --query <text> [--k K]
  hermes eval   [--docs N] [--dim D] [--topics T] [--clusters C]
                [--deep M] [--queries Q] [--seed S]
  hermes plan   --tokens <count> [--batch B] [--stride S] [--nprobe P]
  hermes trace  --out <file> [--docs N] [--dim D] [--topics T]
                [--clusters C] [--deep M] [--queries Q] [--seed S]
                [--threads T]
  hermes stats  [--docs N] [--dim D] [--topics T] [--clusters C]
                [--deep M] [--queries Q] [--seed S] [--threads T]
                [--cache] [--adaptive] [--slo] [--requests R]
  hermes serve  [--docs N] [--dim D] [--topics T] [--clusters C]
                [--deep M] [--queries Q] [--seed S] [--threads T]
                [--requests R] [--qps RATE] [--capacity C]
                [--max-batch B] [--slo-us US] [--metrics-path FILE]
  hermes report [--docs N] [--dim D] [--topics T] [--clusters C]
                [--deep M] [--queries Q] [--seed S] [--threads T]
                [--requests R] [--qps RATE] [--capacity C]
                [--max-batch B] [--slo-us US] [--metrics-path FILE]
                [--recorder-path FILE]
  hermes loadgen [--docs N] [--dim D] [--topics T] [--clusters C]
                [--deep M] [--queries Q] [--seed S] [--threads T]
                [--requests R] [--qps RATE] [--users U] [--think-us US]
                [--capacity C] [--max-batch B] [--slo-us US] [--smoke]
                [--churn]

`stats --cache` replays a Zipf-repeated query stream through the
semantic cache and prints its hit/miss/stale counters; `--adaptive`
runs per-query adaptive retrieval depth and prints the chosen-depth
histogram (the flags compose). Both verify served results against
standalone engine execution before reporting.

`stats --slo` attaches a per-request observer to an open-loop serving
session and prints deadline hit/miss, shed/expired counts and the SLO
burn rate per class. `report` is the full observability roll-up: the
same observed session rendered as a tail-latency phase-attribution
table, the SLO table, the flight-recorder dump of the slowest
requests, and a Prometheus-style text exposition (re-parsed before it
is written, so it doubles as the verify.sh obs smoke test). On both,
`--metrics-path`/`--recorder-path` write the artifacts to files.

`serve` runs one open-loop serving session and reports per-class
latency (`--metrics-path` also writes the exposition); `loadgen`
drives closed and open loops and asserts every
served result bit-identical to standalone engine execution (--smoke
shrinks the workload for CI). `loadgen --churn` instead mutates the
store (inserts/removes) while serving and rebalances it live through
a generation-swapped cell, asserting the incremental store is
bit-identical to a stop-the-world rebalance at every generation
boundary.

Defaults: docs 20000, dim 64, topics 10, clusters 10, deep 3, k 5,
queries 40, seed 42, batch 128, stride 16, nprobe 128, threads 0
(full pool width); serving: requests 200, qps 500, users 8, think-us 0,
capacity 64, max-batch 8, no SLO.";

type Flags = HashMap<String, String>;

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["smoke", "churn", "cache", "adaptive", "slo"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} is missing a value"))?;
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn get_usize(opts: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer, got `{v}`")),
        None => Ok(default),
    }
}

fn get_u64(opts: &Flags, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer, got `{v}`")),
        None => Ok(default),
    }
}

fn require<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required"))
}

fn build_config(opts: &Flags) -> Result<(CorpusSpec, HermesConfig), String> {
    let docs = get_usize(opts, "docs", 20_000)?;
    let dim = get_usize(opts, "dim", 64)?;
    let topics = get_usize(opts, "topics", 10)?;
    let clusters = get_usize(opts, "clusters", 10)?;
    let deep = get_usize(opts, "deep", 3)?;
    let k = get_usize(opts, "k", 5)?;
    let seed = get_u64(opts, "seed", 42)?;
    let spec = CorpusSpec::new(docs, dim, topics).with_seed(seed);
    let cfg = HermesConfig::new(clusters)
        .with_clusters_to_search(deep)
        .with_k(k)
        .with_seed(seed.wrapping_add(1));
    cfg.validate().map_err(|e| e.to_string())?;
    Ok((spec, cfg))
}

fn cmd_build(opts: &Flags) -> Result<(), String> {
    let out = require(opts, "out")?;
    let (spec, cfg) = build_config(opts)?;
    println!(
        "generating corpus: {} docs, {} dims, {} topics (seed {})",
        spec.num_docs, spec.dim, spec.num_topics, spec.seed
    );
    let corpus = Corpus::generate(spec);
    println!("building clustered store ({} clusters)...", cfg.num_clusters);
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).map_err(|e| e.to_string())?;
    store.save(out).map_err(|e| e.to_string())?;
    println!(
        "saved {} ({} docs, {} clusters, imbalance {:.2}x, {:.1} MB resident)",
        out,
        store.len(),
        store.num_clusters(),
        store.imbalance(),
        store.memory_bytes() as f64 / 1e6,
    );
    Ok(())
}

fn load_store(opts: &Flags) -> Result<ClusteredStore, String> {
    let path = require(opts, "store")?;
    ClusteredStore::load(path).map_err(|e| format!("cannot load `{path}`: {e}"))
}

fn cmd_info(opts: &Flags) -> Result<(), String> {
    let store = load_store(opts)?;
    let cfg = store.config();
    println!(
        "clusters {}  docs {}  imbalance {:.2}x  resident {:.1} MB  generation {}  tombstones {}",
        store.num_clusters(),
        store.len(),
        store.imbalance(),
        store.memory_bytes() as f64 / 1e6,
        store.generation(),
        store.tombstones(),
    );
    println!(
        "config: sample nProbe {}, deep nProbe {}, deep clusters {}, k {}, codec {}, metric {}",
        cfg.sample_nprobe, cfg.deep_nprobe, cfg.clusters_to_search, cfg.k, cfg.codec, cfg.metric
    );
    match &cfg.adaptive {
        Some(a) => println!(
            "adaptive depth: on (clusters {}..{}, deep nProbe {}..{}, entropy weight {}‰)",
            a.min_clusters, a.max_clusters, a.min_deep_nprobe, a.max_deep_nprobe,
            a.entropy_weight_permille
        ),
        None => println!(
            "adaptive depth: off — persisted stores load with fixed knobs; \
             opt in per deployment (`stats --adaptive`, HermesConfig::with_adaptive)"
        ),
    }
    for info in store.cluster_infos() {
        println!(
            "  cluster {:>2}: {:>8} docs  {:>10.2} KB  {:>6} tombstones  drift {:.3}",
            info.cluster,
            info.size,
            info.memory_bytes as f64 / 1e3,
            info.tombstones,
            info.drift,
        );
    }
    Ok(())
}

fn cmd_search(opts: &Flags) -> Result<(), String> {
    let store = load_store(opts)?;
    let query_text = require(opts, "query")?;
    let k = get_usize(opts, "k", store.config().k)?;
    let dim = store.split_centroids_mat().cols();
    let query = HashEncoder::new(dim).encode(query_text);
    let out = store.hierarchical_search(&query).map_err(|e| e.to_string())?;
    println!(
        "routed to clusters {:?} (of {:?})",
        out.searched_clusters, out.ranked_clusters
    );
    for (rank, hit) in out.hits.iter().take(k).enumerate() {
        println!("  {:>2}. doc {:>10}  score {:+.4}", rank + 1, hit.id, hit.score);
    }
    println!(
        "work: {} sampled + {} deep codes scanned",
        out.sample_cost().scanned_codes,
        out.deep_cost().scanned_codes
    );
    Ok(())
}

fn cmd_eval(opts: &Flags) -> Result<(), String> {
    let (spec, cfg) = build_config(opts)?;
    let num_queries = get_usize(opts, "queries", 40)?;
    let corpus = Corpus::generate(spec);
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(num_queries).with_seed(spec.seed.wrapping_add(7)),
    );
    let oracle = FlatIndex::new(corpus.embeddings().clone(), cfg.metric);

    println!(
        "strategy        mean NDCG@{}   codes/query   route share",
        cfg.k
    );
    for kind in [
        RetrieverKind::Monolithic,
        RetrieverKind::NaiveSplit,
        RetrieverKind::CentroidRouted,
        RetrieverKind::Hermes,
    ] {
        let retriever =
            Retriever::build(kind, corpus.embeddings(), &cfg).map_err(|e| e.to_string())?;
        let mut ndcg_sum = 0.0;
        let mut cost = CostBreakdown::new();
        for q in queries.embeddings().iter_rows() {
            let truth: Vec<u64> = oracle
                .search(q, cfg.k, &SearchParams::new())
                .map_err(|e| e.to_string())?
                .iter()
                .map(|n| n.id)
                .collect();
            let r = retriever.retrieve(q).map_err(|e| e.to_string())?;
            let ids: Vec<u64> = r.hits.iter().map(|n| n.id).collect();
            ndcg_sum += ndcg_at_k(&truth, &ids, cfg.k);
            cost.record(r.route_codes, r.scanned_codes - r.route_codes);
        }
        println!(
            "{:<15} {:>8.3}     {:>10.0}       {:>5.1}%",
            kind.to_string(),
            ndcg_sum / num_queries as f64,
            cost.mean_codes_per_query(),
            cost.route_share() * 100.0
        );
    }
    Ok(())
}

/// Runs the `eval`-shaped synthetic workload twice — telemetry off,
/// then on — asserts bit-identical outcomes, and returns the drained
/// trace snapshot. Shared by `trace` and `stats`.
fn run_traced_workload(opts: &Flags) -> Result<hermes::trace::TraceSnapshot, String> {
    let (spec, cfg) = build_config(opts)?;
    let num_queries = get_usize(opts, "queries", 40)?;
    let threads = get_usize(opts, "threads", 0)?;
    println!(
        "tracing hierarchical search: {} docs, {} clusters, {} queries",
        spec.num_docs, cfg.num_clusters, num_queries
    );
    let corpus = Corpus::generate(spec);
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(num_queries).with_seed(spec.seed.wrapping_add(7)),
    );
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).map_err(|e| e.to_string())?;
    let qs: Vec<Vec<f32>> = queries
        .embeddings()
        .iter_rows()
        .map(<[f32]>::to_vec)
        .collect();
    hermes::trace::clear();
    let baseline = store
        .batch_hierarchical_search(&qs, threads)
        .map_err(|e| e.to_string())?;
    hermes::trace::enable();
    let traced = store.batch_hierarchical_search(&qs, threads);
    hermes::trace::disable();
    let snap = hermes::trace::snapshot();
    if traced.map_err(|e| e.to_string())? != baseline {
        return Err("telemetry perturbed search results (bit-identity violated)".into());
    }
    Ok(snap)
}

fn cmd_trace(opts: &Flags) -> Result<(), String> {
    let out_path = require(opts, "out")?;
    let snap = run_traced_workload(opts)?;
    let spans = snap
        .spans()
        .map_err(|e| format!("unbalanced trace: {e}"))?;
    let json_text = hermes::trace::export::to_chrome_json(&snap);
    // Prove the export is loadable before writing it out.
    let doc = hermes::trace::json::parse(&json_text)
        .map_err(|e| format!("exporter emitted invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("exported JSON is missing the traceEvents array")?;
    std::fs::write(out_path, &json_text).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!(
        "wrote {out_path}: {} trace events ({} spans on {} threads, {} dropped)",
        events.len(),
        spans.len(),
        snap.threads.len(),
        snap.dropped
    );
    println!("results bit-identical with telemetry on and off");
    Ok(())
}

fn cmd_stats(opts: &Flags) -> Result<(), String> {
    let use_cache = get_bool(opts, "cache");
    let use_adaptive = get_bool(opts, "adaptive");
    if use_cache || use_adaptive {
        return cmd_stats_cached(opts, use_cache, use_adaptive);
    }
    if get_bool(opts, "slo") {
        return cmd_stats_slo(opts);
    }
    let snap = run_traced_workload(opts)?;
    let summary = hermes::metrics::trace_report::render_summary(&snap)
        .map_err(|e| format!("unbalanced trace: {e}"))?;
    print!("{summary}");
    Ok(())
}

/// `stats --cache` / `--adaptive`: replay a Zipf-repeated query stream
/// through the serving backend — cache-fronted and/or depth-adaptive —
/// verify every completion against standalone engine execution, and
/// print the cache counters and chosen-depth histogram.
fn cmd_stats_cached(opts: &Flags, use_cache: bool, use_adaptive: bool) -> Result<(), String> {
    use hermes::serve::{Backend, Request};
    use std::sync::Arc;

    let (spec, mut cfg) = build_config(opts)?;
    let pool_size = get_usize(opts, "queries", 40)?;
    let requests = get_usize(opts, "requests", 200)?;
    let threads = get_usize(opts, "threads", 0)?;
    if use_adaptive {
        // Fixed knobs become the ceiling; easy queries may pay as little
        // as one cluster at half the deep nProbe.
        cfg = cfg.with_adaptive(AdaptiveConfig::new(
            1,
            cfg.clusters_to_search,
            (cfg.deep_nprobe / 2).max(1),
            cfg.deep_nprobe,
        ));
        cfg.validate().map_err(|e| e.to_string())?;
    }
    println!(
        "replaying {requests} Zipf-repeated requests over a {pool_size}-query pool \
         ({} docs, {} clusters, cache {}, adaptive {})",
        spec.num_docs,
        cfg.num_clusters,
        if use_cache { "on" } else { "off" },
        if use_adaptive { "on" } else { "off" },
    );
    let corpus = Corpus::generate(spec);
    let pool = QuerySet::generate(
        &corpus,
        QuerySpec::new(pool_size).with_seed(spec.seed.wrapping_add(7)),
    );
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).map_err(|e| e.to_string())?;
    let stream = query_stream(
        &pool,
        StreamSpec::repeated(requests).with_seed(spec.seed.wrapping_add(13)),
    );

    let cell = Arc::new(GenerationCell::new(store));
    let cached =
        use_cache.then(|| CachedBackend::new(cell.clone(), threads, CacheConfig::default()));
    let plain = GenerationBackend::new(cell.clone(), threads);
    let mut outcomes = Vec::with_capacity(stream.len());
    for (batch_no, chunk) in stream.chunks(8).enumerate() {
        let reqs: Vec<Request> = chunk
            .iter()
            .enumerate()
            .map(|(j, q)| {
                Request::new((batch_no * 8 + j) as u64, q.clone(), Priority::Standard, 0)
            })
            .collect();
        let out = match &cached {
            Some(b) => b.run(&reqs),
            None => plain.run(&reqs),
        }
        .map_err(|e| e.to_string())?;
        outcomes.extend(out.outcomes);
    }

    // Every completion either equals standalone recomputation or is an
    // (accounted) semantic hit serving the stored query's outcome.
    let snapshot = cell.current();
    let engine = Engine::for_store(&snapshot);
    let mut histogram = DepthHistogram::new();
    let mut divergent = 0u64;
    for (q, got) in stream.iter().zip(&outcomes) {
        histogram.record(got.searched_clusters.len());
        if *got != engine.execute(q).map_err(|e| e.to_string())? {
            divergent += 1;
        }
    }
    let semantic_hits = cached.as_ref().map_or(0, |b| b.cache_stats().semantic_hits);
    if divergent > semantic_hits {
        return Err(format!(
            "{divergent} completions diverged from standalone execution \
             but only {semantic_hits} semantic hits can explain divergence"
        ));
    }

    if let Some(backend) = &cached {
        let s = backend.cache_stats();
        let effect = CacheEffect {
            exact_hits: s.exact_hits,
            semantic_hits: s.semantic_hits,
            misses: s.misses,
            stale: s.stale,
            bypass: s.bypass,
            evictions: s.evictions,
        };
        print!("{}", effect.table("semantic cache").render());
    }
    if use_adaptive {
        print!("{}", histogram.table("adaptive retrieval depth").render());
    }
    println!(
        "verified {} completions against standalone execution \
         ({divergent} served as semantic near-duplicates)",
        outcomes.len()
    );
    Ok(())
}

fn get_f64(opts: &Flags, key: &str, default: f64) -> Result<f64, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} wants a number, got `{v}`")),
        None => Ok(default),
    }
}

fn get_bool(opts: &Flags, key: &str) -> bool {
    opts.get(key).is_some_and(|v| v != "false")
}

/// The serving workload every serving subcommand shares: a synthetic
/// corpus + store from the common flags, the query set, and the server
/// knobs.
struct ServeSetup {
    store: ClusteredStore,
    queries: Vec<Vec<f32>>,
    threads: usize,
    requests: usize,
    server_cfg: hermes::serve::ServerConfig,
    slo_ns: Option<u64>,
    seed: u64,
}

fn build_serve_setup(opts: &Flags) -> Result<ServeSetup, String> {
    let (spec, cfg) = build_config(opts)?;
    let num_queries = get_usize(opts, "queries", 40)?;
    let corpus = Corpus::generate(spec);
    let queries = QuerySet::generate(
        &corpus,
        QuerySpec::new(num_queries).with_seed(spec.seed.wrapping_add(7)),
    );
    let store = ClusteredStore::build(corpus.embeddings(), &cfg).map_err(|e| e.to_string())?;
    let slo_us = get_u64(opts, "slo-us", 0)?;
    Ok(ServeSetup {
        store,
        queries: queries.to_vecs(),
        threads: get_usize(opts, "threads", 0)?,
        requests: get_usize(opts, "requests", 200)?,
        server_cfg: hermes::serve::ServerConfig {
            queue_capacity: get_usize(opts, "capacity", 64)?,
            max_batch: get_usize(opts, "max-batch", 8)?,
        },
        slo_ns: (slo_us > 0).then_some(slo_us * 1_000),
        seed: spec.seed,
    })
}

/// The priority mix the serving subcommands offer: half standard, a
/// quarter each interactive and batch.
fn priority_mix() -> Vec<hermes::serve::Priority> {
    use hermes::serve::Priority;
    vec![
        Priority::Interactive,
        Priority::Standard,
        Priority::Standard,
        Priority::Batch,
    ]
}

fn print_serve_report(label: &str, report: &hermes::serve::ServeReport) {
    println!(
        "{label}: {} completed, {} shed (queue full), {} expired, {} batches (mean size {:.2}, {} shard visits shared), busy {:.1}%",
        report.completed,
        report.shed_full,
        report.expired,
        report.batches,
        report.mean_batch_size(),
        report.shared_visits,
        report.busy_fraction() * 100.0
    );
    println!(
        "  latency p50 {:>8}  p95 {:>8}  p99 {:>8}  (ns bucket floors; wait p99 {})",
        report.sojourn.p50(),
        report.sojourn.p95(),
        report.sojourn.p99(),
        report.wait.p99()
    );
    for (p, hist) in hermes::serve::Priority::ALL.iter().zip(&report.sojourn_by_class) {
        if hist.count() > 0 {
            println!(
                "  {:<12} {:>6} reqs  p50 {:>8}  p99 {:>8}",
                p.label(),
                hist.count(),
                hist.p50(),
                hist.p99()
            );
        }
    }
}

fn cmd_serve(opts: &Flags) -> Result<(), String> {
    let setup = build_serve_setup(opts)?;
    let qps = get_f64(opts, "qps", 500.0)?;
    if qps <= 0.0 {
        return Err("--qps must be positive".into());
    }
    println!(
        "serving open-loop: {} requests at {} qps (queue {}, max batch {})",
        setup.requests, qps, setup.server_cfg.queue_capacity, setup.server_cfg.max_batch
    );
    let metrics_path = opts.get("metrics-path");
    let engine = Engine::for_store(&setup.store);
    let mut server = hermes::serve::Server::new(
        hermes::serve::EngineBackend::new(engine, setup.threads),
        setup.server_cfg,
    );
    if metrics_path.is_some() {
        server = server.with_observer(Observer::new(
            hermes::serve::obs_config(setup.seed).with_slo(slo_policy(setup.slo_ns)),
        ));
    }
    let mut spec = hermes::serve::OpenLoopSpec::new(setup.requests, qps)
        .with_seed(setup.seed.wrapping_add(11))
        .with_priority_cycle(priority_mix());
    if let Some(slo) = setup.slo_ns {
        spec = spec.with_slo_ns(slo);
    }
    let load = hermes::serve::run_open_loop(&mut server, &setup.queries, &spec)
        .map_err(|e| e.to_string())?;
    print_serve_report("open loop", &load.serve);
    if let Some(path) = metrics_path {
        let obs = server
            .take_observer()
            .ok_or("observer vanished during the run")?;
        write_exposition(path, &obs, &load.serve)?;
    }
    Ok(())
}

/// Deadline targets the observed subcommands fall back to when
/// `--slo-us` is not given: 50 ms interactive, 500 ms standard,
/// best-effort batch. An explicit `--slo-us` applies to interactive
/// and standard alike, matching the deadline the loadgen spec stamps
/// on every request.
fn slo_policy(slo_ns: Option<u64>) -> SloPolicy {
    match slo_ns {
        Some(t) => SloPolicy::new(vec![Some(t), Some(t), None]),
        None => SloPolicy::new(vec![Some(50_000_000), Some(500_000_000), None]),
    }
}

/// Folds observer + serve-report state into one registry, re-parses the
/// rendered exposition (shape, histogram monotonicity), and writes it.
fn write_exposition(
    path: &str,
    obs: &Observer,
    report: &hermes::serve::ServeReport,
) -> Result<(), String> {
    let mut reg = MetricsRegistry::new();
    obs.export(&mut reg);
    hermes::serve::export_serve_report(&mut reg, report);
    let text = reg.render_text();
    let parsed = hermes::obs::parse_text(&text)
        .map_err(|e| format!("exposition failed to re-parse: {e}"))?;
    std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "wrote {path}: {} metrics, {} samples (re-parsed clean)",
        parsed.metrics, parsed.samples
    );
    Ok(())
}

/// One open-loop session with a request observer attached, every served
/// outcome verified bit-identical to standalone engine execution and
/// every timeline checked for phase balance.
struct ObservedRun {
    load: hermes::serve::LoadReport,
    obs: Observer,
}

fn run_observed_open_loop(opts: &Flags, setup: &ServeSetup) -> Result<ObservedRun, String> {
    let qps = get_f64(opts, "qps", 500.0)?;
    if qps <= 0.0 {
        return Err("--qps must be positive".into());
    }
    let engine = Engine::for_store(&setup.store);
    let mut server = hermes::serve::Server::new(
        hermes::serve::EngineBackend::new(engine, setup.threads),
        setup.server_cfg,
    )
    .with_observer(Observer::new(
        hermes::serve::obs_config(setup.seed)
            .with_slo(slo_policy(setup.slo_ns))
            .with_recorder(64, 64),
    ));
    let mut spec = hermes::serve::OpenLoopSpec::new(setup.requests, qps)
        .with_seed(setup.seed.wrapping_add(11))
        .with_priority_cycle(priority_mix());
    if let Some(slo) = setup.slo_ns {
        spec = spec.with_slo_ns(slo);
    }
    let load = hermes::serve::run_open_loop(&mut server, &setup.queries, &spec)
        .map_err(|e| e.to_string())?;
    let obs = server
        .take_observer()
        .ok_or("observer vanished during the run")?;
    for c in &load.completions {
        let standalone = engine.execute(&c.request.query).map_err(|e| e.to_string())?;
        if c.outcome.as_ref() != Some(&standalone) {
            return Err(format!(
                "request {} diverged from standalone engine execution under observation",
                c.request.id
            ));
        }
    }
    if obs.unbalanced() > 0 {
        return Err(format!(
            "{} request timelines violated phase balance",
            obs.unbalanced()
        ));
    }
    Ok(ObservedRun { load, obs })
}

/// `stats --slo`: one observed open-loop session reported as per-class
/// SLO accounting — deadline hit/miss, shed/expired and burn rate.
fn cmd_stats_slo(opts: &Flags) -> Result<(), String> {
    let setup = build_serve_setup(opts)?;
    println!(
        "slo accounting over an observed open loop: {} requests (queue {}, max batch {})",
        setup.requests, setup.server_cfg.queue_capacity, setup.server_cfg.max_batch
    );
    let run = run_observed_open_loop(opts, &setup)?;
    print_serve_report("open loop", &run.load.serve);
    print!("{}", hermes::metrics::slo_table(run.obs.slo()).render());
    println!(
        "verified {} served results against standalone execution; all timelines balanced",
        run.load.completions.len()
    );
    Ok(())
}

/// `report`: the end-to-end observability roll-up for one observed
/// open-loop session — tail-latency phase attribution, SLO accounting,
/// the flight recorder's slowest requests, and the text exposition —
/// each artifact re-parsed before it is printed or written.
fn cmd_report(opts: &Flags) -> Result<(), String> {
    let setup = build_serve_setup(opts)?;
    println!(
        "observability report: {} requests over a {}-query pool (queue {}, max batch {})",
        setup.requests,
        setup.queries.len(),
        setup.server_cfg.queue_capacity,
        setup.server_cfg.max_batch
    );
    let run = run_observed_open_loop(opts, &setup)?;
    print_serve_report("open loop", &run.load.serve);
    print!(
        "{}",
        hermes::metrics::phase_breakdown_table(run.obs.attribution()).render()
    );
    print!("{}", hermes::metrics::slo_table(run.obs.slo()).render());

    // Flight dump: the parser re-checks every record's balance invariant.
    let dump = run.obs.recorder().render_dump();
    let summary = hermes::obs::parse_dump(&dump)
        .map_err(|e| format!("flight dump failed to re-parse: {e}"))?;
    if summary.unbalanced > 0 {
        return Err(format!(
            "{} flight records violate phase balance",
            summary.unbalanced
        ));
    }
    match opts.get("recorder-path") {
        Some(path) => {
            std::fs::write(path, &dump).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!(
                "wrote {path}: {} flight records over {} requests (re-parsed clean)",
                summary.records, summary.seen
            );
        }
        None => print!("{dump}"),
    }

    match opts.get("metrics-path") {
        Some(path) => write_exposition(path, &run.obs, &run.load.serve)?,
        None => {
            let mut reg = MetricsRegistry::new();
            run.obs.export(&mut reg);
            hermes::serve::export_serve_report(&mut reg, &run.load.serve);
            let parsed = hermes::obs::parse_text(&reg.render_text())
                .map_err(|e| format!("exposition failed to re-parse: {e}"))?;
            println!(
                "exposition: {} metrics, {} samples (pass --metrics-path to write it)",
                parsed.metrics, parsed.samples
            );
        }
    }
    println!(
        "verified {} served results against standalone execution; all timelines balanced",
        run.load.completions.len()
    );
    Ok(())
}

fn cmd_loadgen(opts: &Flags) -> Result<(), String> {
    let smoke = get_bool(opts, "smoke");
    let mut setup = build_serve_setup(opts)?;
    if smoke && !opts.contains_key("requests") {
        setup.requests = 60;
    }
    if get_bool(opts, "churn") {
        // Churn wants mutation volume comparable to shard size; default
        // to a smaller corpus than the read-only loops unless the user
        // pinned one.
        let mut churn_opts = opts.clone();
        churn_opts
            .entry("docs".to_string())
            .or_insert_with(|| if smoke { "2000" } else { "6000" }.to_string());
        churn_opts
            .entry("clusters".to_string())
            .or_insert_with(|| "5".to_string());
        let churn_setup = build_serve_setup(&churn_opts)?;
        return cmd_loadgen_churn(&churn_setup, smoke);
    }
    let qps = get_f64(opts, "qps", 500.0)?;
    let users = get_usize(opts, "users", 8)?;
    let think_us = get_u64(opts, "think-us", 0)?;
    if qps <= 0.0 {
        return Err("--qps must be positive".into());
    }
    if users == 0 {
        return Err("--users must be positive".into());
    }
    let engine = Engine::for_store(&setup.store);

    let mut closed_spec = hermes::serve::ClosedLoopSpec::new(setup.requests, users)
        .with_think_ns(think_us * 1_000)
        .with_priority_cycle(priority_mix());
    let mut open_spec = hermes::serve::OpenLoopSpec::new(setup.requests, qps)
        .with_seed(setup.seed.wrapping_add(11))
        .with_priority_cycle(priority_mix());
    if let Some(slo) = setup.slo_ns {
        closed_spec = closed_spec.with_slo_ns(slo);
        open_spec = open_spec.with_slo_ns(slo);
    }

    let mut server = hermes::serve::Server::new(
        hermes::serve::EngineBackend::new(engine, setup.threads),
        setup.server_cfg,
    );
    let closed = hermes::serve::run_closed_loop(&mut server, &setup.queries, &closed_spec)
        .map_err(|e| e.to_string())?;
    let mut server = hermes::serve::Server::new(
        hermes::serve::EngineBackend::new(engine, setup.threads),
        setup.server_cfg,
    );
    let open = hermes::serve::run_open_loop(&mut server, &setup.queries, &open_spec)
        .map_err(|e| e.to_string())?;

    // The bar that makes this a verification step, not just a driver:
    // every batched/coalesced completion must carry exactly the outcome
    // the standalone engine produces for its query.
    let mut checked = 0usize;
    for c in closed.completions.iter().chain(open.completions.iter()) {
        let standalone = engine.execute(&c.request.query).map_err(|e| e.to_string())?;
        if c.outcome.as_ref() != Some(&standalone) {
            return Err(format!(
                "request {} diverged from standalone engine execution",
                c.request.id
            ));
        }
        checked += 1;
    }
    print_serve_report("closed loop", &closed.serve);
    print_serve_report("open loop", &open.serve);
    println!("served results bit-identical to standalone execution ({checked} requests checked)");
    Ok(())
}

/// Mutate-while-serving verification: a seeded stream of inserts,
/// removes and queries runs through a generation-swapped server while
/// the rebalancer splits/merges live. A stop-the-world twin applies the
/// identical op stream offline; at every generation boundary the two
/// stores must be **bit-identical** (paged images compared byte for
/// byte), and every served completion must match standalone engine
/// execution on its dispatch generation.
fn cmd_loadgen_churn(setup: &ServeSetup, smoke: bool) -> Result<(), String> {
    use hermes::math::rng::SeededRng;
    use hermes::serve::Request;
    use std::sync::Arc;

    let ops = if smoke { 900 } else { 2_600 };
    println!(
        "churn loadgen: {} docs, {} clusters, {} seeded ops (inserts/removes/queries)",
        setup.store.len(),
        setup.store.num_clusters(),
        ops
    );

    let cell = Arc::new(GenerationCell::new(setup.store.clone()));
    let mut reference = setup.store.clone();
    let rebalancer = Rebalancer::new(hermes::core::RebalanceConfig {
        max_imbalance: 3.0,
        ..Default::default()
    });
    let mut server = hermes::serve::Server::new(
        GenerationBackend::new(cell.clone(), setup.threads),
        setup.server_cfg,
    );

    let mut rng = SeededRng::new(setup.seed.wrapping_add(23));
    let mut next_id = 1_000_000u64;
    let mut inserted: Vec<u64> = Vec::new();
    let mut now_ns = 0u64;
    let mut queries_checked = 0usize;
    let mut boundaries = 0usize;

    for op in 0..ops {
        now_ns += 2_000;
        let roll = rng.gen_range(0u32..100);
        if roll < 60 {
            // Topical insert: pile onto cluster 0's (running) centroid so
            // the skew the rebalancer must repair actually builds up.
            let mut v = cell.current().split_centroid(0).to_vec();
            for x in v.iter_mut() {
                *x += (rng.next_f32() - 0.5) * 0.05;
            }
            let id = next_id;
            next_id += 1;
            let live_c = cell.mutate(|s| s.insert(id, &v)).map_err(|e| e.to_string())?;
            let ref_c = reference.insert(id, &v).map_err(|e| e.to_string())?;
            if live_c != ref_c {
                return Err(format!("insert {id} routed to {live_c} live vs {ref_c} offline"));
            }
            inserted.push(id);
        } else if roll < 72 {
            if !inserted.is_empty() {
                let i = rng.gen_range(0..inserted.len());
                let id = inserted.swap_remove(i);
                let live_c = cell.mutate(|s| s.remove(id));
                let ref_c = reference.remove(id);
                if live_c != ref_c {
                    return Err(format!("remove {id}: {live_c:?} live vs {ref_c:?} offline"));
                }
            }
        } else {
            let q = setup.queries[rng.gen_range(0..setup.queries.len())].clone();
            server.run_until(now_ns).map_err(|e| e.to_string())?;
            let _ = server.submit(Request::new(op as u64, q, Priority::Standard, now_ns));
            // Drain immediately so the completion's dispatch generation
            // is the one published right now.
            server.run_until(u64::MAX).map_err(|e| e.to_string())?;
            let snapshot = cell.current();
            let engine = Engine::for_store(&snapshot);
            for done in server.take_completions() {
                let standalone = engine.execute(&done.request.query).map_err(|e| e.to_string())?;
                if done.outcome.as_ref() != Some(&standalone) {
                    return Err(format!(
                        "request {} diverged from standalone execution on its generation",
                        done.request.id
                    ));
                }
                queries_checked += 1;
            }
        }

        // Rebalance checkpoint: run up to two incremental steps, each
        // published via an atomic generation swap, the twin stopped-world.
        if op % 64 == 63 {
            for _ in 0..2 {
                let live = cell.current();
                let Some(action) = rebalancer.next_action(&live) else {
                    break;
                };
                let ref_action = rebalancer
                    .next_action(&reference)
                    .ok_or("offline twin quiescent while live store wants rebalancing")?;
                if ref_action != action {
                    return Err(format!(
                        "action divergence: {action:?} live vs {ref_action:?} offline"
                    ));
                }
                let next = rebalancer.apply(&live, action).map_err(|e| e.to_string())?;
                cell.swap(next);
                reference = rebalancer.apply(&reference, ref_action).map_err(|e| e.to_string())?;
                boundaries += 1;

                let live = cell.current();
                if live.to_paged_bytes() != reference.to_paged_bytes() {
                    return Err(format!(
                        "generation {} boundary: incremental store diverged from stop-the-world twin",
                        live.generation()
                    ));
                }
            }
        }
    }
    server.run_until(u64::MAX).map_err(|e| e.to_string())?;

    if boundaries == 0 {
        return Err("churn workload never triggered a rebalance — no boundary was verified".into());
    }
    let live = cell.current();
    if live.to_paged_bytes() != reference.to_paged_bytes() {
        return Err("final state diverged from stop-the-world twin".into());
    }
    println!(
        "served {} queries during churn, all bit-identical to their generation",
        queries_checked
    );
    println!(
        "verified {} generation boundaries bit-identical to stop-the-world rebalance \
         (final: {} clusters, {} docs, generation {}, epoch {})",
        boundaries,
        live.num_clusters(),
        live.len(),
        live.generation(),
        cell.epoch()
    );
    Ok(())
}

fn cmd_plan(opts: &Flags) -> Result<(), String> {
    let tokens = get_u64(opts, "tokens", 0)?;
    if tokens == 0 {
        return Err("--tokens is required (e.g. --tokens 100000000000)".into());
    }
    let batch = get_usize(opts, "batch", 128)?;
    let stride = get_usize(opts, "stride", 16)? as u32;
    let nprobe = get_usize(opts, "nprobe", 128)?;
    let planner = ClusterPlanner::default();
    let per = planner.max_cluster_tokens(batch, nprobe, 512, stride);
    let nodes = planner.nodes_required(tokens, batch, nprobe, 512, stride);
    println!(
        "datastore {}  batch {batch}  stride {stride}  nProbe {nprobe}",
        format_tokens(tokens)
    );
    println!(
        "max cluster size hiding under inference: {}",
        format_tokens(per)
    );
    println!("nodes required: {nodes} ({} per node)", format_tokens(tokens / nodes as u64));
    let retrieval = RetrievalModel::default();
    println!(
        "monolithic search: {:.2} s/batch  |  per-cluster search: {:.3} s/batch",
        retrieval.batch_latency(tokens, batch, nprobe),
        retrieval.batch_latency(tokens / nodes as u64, batch, nprobe)
    );
    Ok(())
}
