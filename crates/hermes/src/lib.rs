//! # Hermes — RAG at scale, reproduced in Rust
//!
//! This is the facade crate of a from-scratch reproduction of *"Hermes:
//! Algorithm-System Co-design for Efficient Retrieval-Augmented Generation
//! At Scale"* (ISCA 2025). It re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `hermes-core` | datastore disaggregation + the scatter–gather query-execution engine (the contribution) |
//! | [`cache`] | `hermes-cache` | exact + near-duplicate semantic result cache with generation invalidation |
//! | [`index`] | `hermes-index` | Flat / IVF / HNSW ANN indices (FAISS substitute) |
//! | [`quant`] | `hermes-quant` | SQ8/SQ4/PQ/OPQ codecs |
//! | [`kmeans`] | `hermes-kmeans` | Lloyd's K-means + seed-swept splitting |
//! | [`datagen`] | `hermes-datagen` | synthetic corpora, queries, scale accounting |
//! | [`rag`] | `hermes-rag` | strided RAG pipeline, baselines, quality model |
//! | [`serve`] | `hermes-serve` | online serving: admission control, SLO scheduling, coalesced dynamic batching |
//! | [`perfmodel`] | `hermes-perfmodel` | calibrated CPU/GPU/LLM cost models |
//! | [`sim`] | `hermes-sim` | multi-node serving simulator |
//! | [`metrics`] | `hermes-metrics` | NDCG/recall, energy accounting, reports |
//! | [`obs`] | `hermes-obs` | per-request timelines, tail attribution, SLO burn, metrics exposition |
//! | [`trace`] | `hermes-trace` | runtime telemetry: spans, counters, Chrome trace export |
//! | [`math`] | `hermes-math` | distances, top-k, matrices, stats, RNG |
//!
//! # Quickstart
//!
//! ```
//! use hermes::prelude::*;
//!
//! // 1. A corpus with topical structure (stands in for Common Crawl).
//! let corpus = Corpus::generate(CorpusSpec::new(2_000, 32, 10).with_seed(1));
//!
//! // 2. Split it into 10 clustered IVF indices, Hermes-style.
//! let config = HermesConfig::new(10).with_clusters_to_search(3).with_seed(2);
//! let store = ClusteredStore::build(corpus.embeddings(), &config)?;
//!
//! // 3. Hierarchical search: sample all clusters, deep-search the top 3.
//! let queries = QuerySet::generate(&corpus, QuerySpec::new(4).with_seed(3));
//! let outcome = store.hierarchical_search(queries.embeddings().row(0))?;
//! assert_eq!(outcome.hits.len(), config.k);
//! assert_eq!(outcome.searched_clusters.len(), 3);
//! # Ok::<(), hermes::core::HermesError>(())
//! ```

pub use hermes_cache as cache;
pub use hermes_core as core;
pub use hermes_datagen as datagen;
pub use hermes_index as index;
pub use hermes_kmeans as kmeans;
pub use hermes_math as math;
pub use hermes_metrics as metrics;
pub use hermes_obs as obs;
pub use hermes_perfmodel as perfmodel;
pub use hermes_pool as pool;
pub use hermes_quant as quant;
pub use hermes_rag as rag;
pub use hermes_serve as serve;
pub use hermes_sim as sim;
pub use hermes_trace as trace;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use hermes_cache::{CacheConfig, CacheStats, SemanticCache};
    pub use hermes_core::{
        AdaptiveConfig, ClusteredStore, DepthChoice, DifficultyEstimator, Engine, HermesConfig,
        PagedStoreReader, PersistError, QueryPlan, RebalanceAction, RebalanceConfig, Rebalancer,
        Routing, SearchStats, SplitStrategy,
    };
    pub use hermes_datagen::{
        query_stream, ChunkStore, Corpus, CorpusSpec, DatastoreScale, QuerySet, QuerySpec,
        StreamKind, StreamSpec,
    };
    pub use hermes_index::{
        FlatIndex, HnswIndex, IvfIndex, SearchParams, VectorIndex,
    };
    pub use hermes_math::{simd_level, Mat, Metric, Neighbor, SimdLevel};
    pub use hermes_metrics::{
        ndcg_at_k, recall_at_k, CacheEffect, CostBreakdown, DepthHistogram, EnergyMeter,
    };
    pub use hermes_perfmodel::{
        ClusterPlanner, CpuPlatform, EncoderModel, GpuPlatform, InferenceModel, LlmModel,
        RetrievalModel,
    };
    pub use hermes_obs::{
        Attribution, FlightRecorder, MetricsRegistry, ObsConfig, Observer, RequestTimeline,
        SloPolicy, SloTracker,
    };
    pub use hermes_quant::{Codec, CodecSpec};
    pub use hermes_rag::{HashEncoder, RagPipeline, Retriever, RetrieverKind};
    pub use hermes_serve::{
        CachedBackend, ClosedLoopSpec, EngineBackend, GenerationBackend, GenerationCell,
        OpenLoopSpec, Priority, Server, ServerConfig,
    };
    pub use hermes_sim::{
        Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        #[allow(unused_imports)]
        use crate::prelude::*;
    }
}
