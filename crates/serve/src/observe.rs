//! Glue between the serving loop and `hermes-obs`: canonical observer
//! configuration for the serving priority classes, plus exporters that
//! fold the serving layer's own aggregates ([`ServeReport`],
//! [`CacheStats`]) into a [`MetricsRegistry`] under the same names the
//! observer exports — one scrapeable page for the whole stack.
//!
//! The dependency direction is deliberate: `hermes-obs` knows nothing
//! about serving types (it sits next to `hermes-trace` in the layering),
//! so the folding lives here, where both sides are visible.

use hermes_cache::CacheStats;
use hermes_obs::{MetricsRegistry, ObsConfig};
use hermes_trace::names;

use crate::request::Priority;
use crate::server::ServeReport;

/// The canonical [`ObsConfig`] for a serving run: one class per
/// [`Priority`], labelled with [`Priority::label`], recorder seeded from
/// `seed`. Targets default to none; attach them with
/// [`ObsConfig::with_slo`].
pub fn obs_config(seed: u64) -> ObsConfig {
    ObsConfig::new(Priority::ALL.iter().map(|p| p.label()).collect(), seed)
}

/// Help text for a counter stream, resolved from the canonical
/// [`names::COUNTERS`] registry.
fn help_for(name: &str) -> &'static str {
    names::COUNTERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, h)| *h)
        .unwrap_or("Serving counter")
}

/// Folds a [`ServeReport`]'s totals and latency histograms into `reg`.
/// Per-class sojourn histograms land under the same
/// `serve.sojourn_ns{class=…}` series the observer exports — both are
/// derived from the same completions, so the overlap is consistent by
/// construction.
pub fn export_serve_report(reg: &mut MetricsRegistry, report: &ServeReport) {
    reg.set_counter(
        "serve.admitted",
        "Requests accepted into the queue",
        &[],
        report.admitted as u64,
    );
    reg.set_counter(
        "serve.completed",
        "Requests completed",
        &[],
        report.completed as u64,
    );
    reg.set_counter(
        "serve.shed_full",
        "Requests shed at admission (queue full)",
        &[],
        report.shed_full as u64,
    );
    reg.set_counter(
        "serve.expired",
        "Admitted requests expired before dispatch",
        &[],
        report.expired as u64,
    );
    reg.set_counter(
        "serve.batches",
        "Dispatches executed",
        &[],
        report.batches as u64,
    );
    reg.set_counter(
        "serve.shared_visits",
        "Shard visits saved by coalescing",
        &[],
        report.shared_visits as u64,
    );
    reg.set_gauge(
        "serve.busy_fraction",
        "Fraction of the run the backend was busy",
        &[],
        report.busy_fraction(),
    );
    reg.set_gauge(
        "serve.mean_batch_size",
        "Mean requests per dispatch",
        &[],
        report.mean_batch_size(),
    );
    reg.set_histogram(
        "serve.wait_ns",
        "Queueing delay (arrival to dispatch), ns",
        &[],
        &report.wait,
    );
    for (p, hist) in Priority::ALL.iter().zip(&report.sojourn_by_class) {
        if hist.count() == 0 {
            continue;
        }
        reg.set_histogram(
            "serve.sojourn_ns",
            "Request sojourn (arrival to finish), ns",
            &[("class", p.label())],
            hist,
        );
    }
}

/// Folds [`CacheStats`] counters into `reg` under the canonical
/// [`names`] constants — the same streams the trace layer records, so a
/// scrape and a trace snapshot can never disagree on what a hit is
/// called.
pub fn export_cache_stats(reg: &mut MetricsRegistry, stats: &CacheStats) {
    let pairs: [(&str, u64); 6] = [
        (names::CACHE_HIT_EXACT, stats.exact_hits),
        (names::CACHE_HIT_SEMANTIC, stats.semantic_hits),
        (names::CACHE_MISS, stats.misses),
        (names::CACHE_STALE, stats.stale),
        (names::CACHE_BYPASS, stats.bypass),
        (names::CACHE_EVICT, stats.evictions),
    ];
    for (name, value) in pairs {
        reg.set_counter(name, help_for(name), &[], value);
    }
    reg.set_counter(
        "cache.insertions",
        "Fresh outcomes inserted into the cache",
        &[],
        stats.insertions,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_obs::parse_text;
    use hermes_trace::hist::LogHistogram;

    #[test]
    fn obs_config_mirrors_priority_classes() {
        let cfg = obs_config(9);
        assert_eq!(
            cfg.class_labels,
            vec!["interactive", "standard", "batch"]
        );
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn report_and_cache_export_render_parseable() {
        let mut sojourn = LogHistogram::new();
        let mut wait = LogHistogram::new();
        for v in [100u64, 220, 90_000] {
            sojourn.record(v);
            wait.record(v / 10);
        }
        let mut by_class: [LogHistogram; crate::request::PRIORITY_CLASSES] = Default::default();
        by_class[0] = sojourn.clone();
        let report = ServeReport {
            admitted: 4,
            completed: 3,
            shed_full: 1,
            expired: 0,
            batches: 2,
            shared_visits: 5,
            sojourn,
            wait,
            sojourn_by_class: by_class,
            busy_ns: 500,
            makespan_ns: 1_000,
        };
        let stats = CacheStats {
            exact_hits: 2,
            semantic_hits: 1,
            misses: 3,
            stale: 0,
            bypass: 0,
            insertions: 3,
            evictions: 0,
        };
        let mut reg = MetricsRegistry::new();
        export_serve_report(&mut reg, &report);
        export_cache_stats(&mut reg, &stats);
        let text = reg.render_text();
        parse_text(&text).unwrap();
        assert!(text.contains("hermes_serve_admitted_total 4"));
        assert!(text.contains("hermes_serve_busy_fraction 0.5"));
        assert!(text.contains("hermes_cache_hit_exact_total 2"));
        assert!(text.contains("hermes_serve_sojourn_ns_bucket{class=\"interactive\",le="));
    }
}
