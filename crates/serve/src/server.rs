//! The discrete-event serving loop: admission → dynamic batch → dispatch.
//!
//! The server is a *virtual-time machine*: it never reads a wall clock.
//! Drivers (the load generators, the CLI, the oracle tests) own time —
//! they call [`Server::run_until`] to let the server advance through the
//! dispatches that fall before an instant, then [`Server::submit`] the
//! next arrival. Dispatch timing is pure arithmetic over `free_at_ns`
//! and arrival times, so a run is exactly reproducible and — with a
//! fixed-service backend and `max_batch = 1` — *is* the
//! `hermes_sim::queueing` M/D/1 recurrence, which is what
//! `tests/serving_oracle.rs` exploits.
//!
//! Only the [`Backend`] touches clocks: [`EngineBackend`] brackets each
//! dispatch with two [`hermes_trace::now_ns`] reads to measure real
//! service time (under an installed
//! [`hermes_trace::clock::TestClock`] those reads are deterministic
//! too).
//!
//! Results are never affected by scheduling: every completed request
//! carries the exact [`SearchOutcome`] the standalone engine returns for
//! its query, because both engine paths
//! ([`Engine::execute_batch`] / [`Engine::execute_coalesced`]) are
//! bit-identical to [`Engine::execute`] per query.

use hermes_core::exec::Engine;
use hermes_core::search::SearchOutcome;
use hermes_core::HermesError;
use hermes_obs::{CachePath, Observer, Phase, PhaseNs, RequestId, RequestTimeline, ShedCause};
use hermes_trace::hist::LogHistogram;
use hermes_trace::names;

use crate::batch::coalesce_groups;
use crate::queue::AdmissionQueue;
use crate::request::{Completion, Request, ShedReason, ShedRecord, PRIORITY_CLASSES};

/// Executes one dispatched batch and reports how long it took.
pub trait Backend {
    /// Runs `batch` (non-empty, priority-FIFO order). Returns per-request
    /// outcomes aligned with `batch` (may be empty for synthetic
    /// backends) and the service time to charge the server for the whole
    /// batch.
    ///
    /// # Errors
    ///
    /// Propagates engine failures; the server aborts the run.
    fn run(&self, batch: &[Request]) -> Result<BatchOutcome, HermesError>;
}

/// What one dispatch produced.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-request search results, aligned with the dispatched batch;
    /// empty when the backend executes nothing (queue-model backends).
    pub outcomes: Vec<SearchOutcome>,
    /// Service time charged for the batch, nanoseconds.
    pub service_ns: u64,
    /// Distinct clusters the batch touched (0 when unknown).
    pub distinct_clusters: usize,
    /// Shard visits saved by coalescing (0 when unknown).
    pub shared_visits: usize,
    /// How the service time splits into named phases (cache probe,
    /// route, deep scatter). Phase sums never exceed `service_ns`;
    /// whatever the backend leaves unattributed lands in
    /// [`hermes_obs::Phase::Residual`] when timelines are built.
    pub phases: PhaseNs,
    /// Per-request cache disposition aligned with the batch; empty when
    /// the backend has no cache (every request then counts as
    /// [`CachePath::Computed`]).
    pub cache_paths: Vec<CachePath>,
}

/// Real execution over [`Engine`], coalesced by default.
pub struct EngineBackend<'s> {
    engine: Engine<'s>,
    threads: usize,
    coalesce: bool,
}

impl<'s> EngineBackend<'s> {
    /// A backend dispatching batches to `engine` with inter-query
    /// fan-out `threads` (`0` = full pool, `1` = inline), scatter
    /// coalesced by cluster.
    pub fn new(engine: Engine<'s>, threads: usize) -> Self {
        EngineBackend {
            engine,
            threads,
            coalesce: true,
        }
    }

    /// Disables cluster coalescing (each request scatters independently
    /// via [`Engine::execute_batch`]) — the A/B lever for the
    /// `ext_serving` bench. Results are identical either way.
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine<'s> {
        &self.engine
    }
}

impl Backend for EngineBackend<'_> {
    fn run(&self, batch: &[Request]) -> Result<BatchOutcome, HermesError> {
        let queries: Vec<Vec<f32>> = batch.iter().map(|r| r.query.clone()).collect();
        let mut phases = PhaseNs::new();
        let t0 = hermes_trace::now_ns();
        let outcomes = if self.coalesce {
            // The coalesced path split at its route/scatter seam — the
            // exact decomposition `Engine::execute_coalesced` performs
            // internally, pinned bit-identical by the core equivalence
            // tests — so the clock reads bracket Route vs Deep.
            let routes = self.engine.route_batch(&queries, self.threads)?;
            let t_routed = hermes_trace::now_ns();
            phases.add(Phase::Route, t_routed.saturating_sub(t0));
            let outcomes =
                self.engine
                    .execute_coalesced_routed(&queries, routes, self.threads)?;
            phases.add(Phase::Deep, hermes_trace::now_ns().saturating_sub(t_routed));
            outcomes
        } else {
            let outcomes = self.engine.execute_batch(&queries, self.threads)?;
            phases.add(Phase::Deep, hermes_trace::now_ns().saturating_sub(t0));
            outcomes
        };
        let service_ns = phases.total();
        let searched: Vec<Vec<usize>> = outcomes
            .iter()
            .map(|o| o.searched_clusters.clone())
            .collect();
        let plan = coalesce_groups(&searched);
        Ok(BatchOutcome {
            outcomes,
            service_ns,
            distinct_clusters: plan.distinct_clusters,
            shared_visits: plan.shared_visits(),
            phases,
            cache_paths: Vec::new(),
        })
    }
}

/// Synthetic backend with a deterministic service-time law — the queue
/// model in backend form. With `per_request_ns = 0` and `max_batch = 1`
/// the server reproduces `hermes_sim::queueing::simulate_md1` exactly.
#[derive(Debug, Clone, Copy)]
pub struct FixedServiceBackend {
    base_ns: u64,
    per_request_ns: u64,
}

impl FixedServiceBackend {
    /// Service time `base_ns` per dispatch regardless of batch size.
    pub fn new(base_ns: u64) -> Self {
        FixedServiceBackend {
            base_ns,
            per_request_ns: 0,
        }
    }

    /// Adds a per-request component: `base + per_request × batch_size`.
    pub fn with_per_request_ns(mut self, per_request_ns: u64) -> Self {
        self.per_request_ns = per_request_ns;
        self
    }
}

impl Backend for FixedServiceBackend {
    fn run(&self, batch: &[Request]) -> Result<BatchOutcome, HermesError> {
        Ok(BatchOutcome {
            outcomes: Vec::new(),
            service_ns: self.base_ns + self.per_request_ns * batch.len() as u64,
            distinct_clusters: 0,
            shared_visits: 0,
            phases: PhaseNs::new(),
            cache_paths: Vec::new(),
        })
    }
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission-queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Most requests one dispatch may carry.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch: 8,
        }
    }
}

/// Aggregate view of a finished (or in-flight) run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub admitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed at admission (queue full or already expired).
    pub shed_full: usize,
    /// Admitted requests whose deadline passed before dispatch.
    pub expired: usize,
    /// Dispatches executed.
    pub batches: usize,
    /// Shard visits saved by coalescing, summed over dispatches.
    pub shared_visits: usize,
    /// End-to-end latency (arrival → finish) histogram, nanoseconds.
    pub sojourn: LogHistogram,
    /// Queueing delay (arrival → dispatch) histogram, nanoseconds.
    pub wait: LogHistogram,
    /// Per-priority-class sojourn histograms, [`Priority::ALL`] order.
    pub sojourn_by_class: [LogHistogram; PRIORITY_CLASSES],
    /// Total backend service time, nanoseconds.
    pub busy_ns: u64,
    /// Departure time of the last completed batch, nanoseconds.
    pub makespan_ns: u64,
}

impl ServeReport {
    /// Fraction of the run the backend was busy — comparable to
    /// `hermes_sim::queueing::QueueTrace::busy_fraction`.
    pub fn busy_fraction(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.makespan_ns as f64
        }
    }

    /// Mean requests per dispatch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// The serving loop. See the module docs for the time model.
pub struct Server<B: Backend> {
    backend: B,
    cfg: ServerConfig,
    queue: AdmissionQueue,
    /// Last request id minted; ids are dense from 1 in admission order
    /// and stamped whether or not an observer is attached, so attaching
    /// one never perturbs anything the run computes.
    next_rid: u64,
    observer: Option<Observer>,
    free_at_ns: u64,
    busy_ns: u64,
    admitted: usize,
    batches: usize,
    shared_visits: usize,
    sojourn: LogHistogram,
    wait: LogHistogram,
    sojourn_by_class: [LogHistogram; PRIORITY_CLASSES],
    completions: Vec<Completion>,
    shed: Vec<ShedRecord>,
    completed: usize,
    expired: usize,
    shed_full: usize,
}

impl<B: Backend> Server<B> {
    /// A server over `backend` with `cfg` knobs, idle at time 0.
    pub fn new(backend: B, cfg: ServerConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        Server {
            backend,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            cfg,
            next_rid: 0,
            observer: None,
            free_at_ns: 0,
            busy_ns: 0,
            admitted: 0,
            batches: 0,
            shared_visits: 0,
            sojourn: LogHistogram::new(),
            wait: LogHistogram::new(),
            sojourn_by_class: Default::default(),
            completions: Vec::new(),
            shed: Vec::new(),
            completed: 0,
            expired: 0,
            shed_full: 0,
        }
    }

    /// Attaches a request observer: every completion from here on folds
    /// into its timelines, attribution and SLO accounting. Request ids
    /// are minted whether or not one is attached, so results and timing
    /// are bit-identical with and without (`tests/request_observability.rs`
    /// pins this).
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Observer> {
        self.observer.as_ref()
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> Option<&mut Observer> {
        self.observer.as_mut()
    }

    /// Detaches and returns the observer (for reporting after a run).
    pub fn take_observer(&mut self) -> Option<Observer> {
        self.observer.take()
    }

    /// Offers `req` for admission, minting its serving-layer request id
    /// ([`Request::rid`]). Sheds immediately — without touching the
    /// queue or the pool — when the queue is full or the request arrives
    /// already expired; the shed is recorded exactly once and also
    /// returned.
    ///
    /// Drivers must call [`Server::run_until`]`(req.arrival_ns)` first so
    /// dispatches that precede this arrival have happened.
    pub fn submit(&mut self, mut req: Request) -> Result<(), ShedRecord> {
        self.next_rid += 1;
        req.rid = self.next_rid;
        if req.expired_at(req.arrival_ns) {
            return Err(self.record_shed(req.arrival_ns, req, ShedReason::Expired));
        }
        let at_ns = req.arrival_ns;
        match self.queue.try_admit(req) {
            Ok(()) => {
                self.admitted += 1;
                hermes_trace::counter(names::SERVE_QUEUE_DEPTH, self.queue.len() as u64);
                Ok(())
            }
            Err(rejected) => Err(self.record_shed(at_ns, rejected, ShedReason::QueueFull)),
        }
    }

    fn record_shed(&mut self, at_ns: u64, request: Request, reason: ShedReason) -> ShedRecord {
        match reason {
            ShedReason::QueueFull => self.shed_full += 1,
            ShedReason::Expired => self.expired += 1,
        }
        hermes_trace::complete_with(
            names::SERVE_SHED,
            at_ns,
            0,
            &[
                (names::ARG_REQUEST_ID, request.rid),
                (names::ARG_CLASS, request.priority.index() as u64),
            ],
        );
        if let Some(obs) = self.observer.as_mut() {
            let cause = match reason {
                ShedReason::QueueFull => ShedCause::QueueFull,
                ShedReason::Expired => ShedCause::Expired,
            };
            obs.on_shed(request.priority.index(), at_ns, cause);
        }
        let record = ShedRecord {
            request,
            reason,
            at_ns,
        };
        self.shed.push(record.clone());
        record
    }

    /// Runs every dispatch that starts strictly before `now_ns`, then
    /// stops — later dispatches stay uncommitted so higher-priority
    /// arrivals before their start time can still overtake. Pass
    /// `u64::MAX` to drain.
    ///
    /// # Errors
    ///
    /// Propagates the backend's first error.
    pub fn run_until(&mut self, now_ns: u64) -> Result<(), HermesError> {
        while let Some(head) = self.queue.peek_next() {
            let start = self.free_at_ns.max(head.arrival_ns);
            if start >= now_ns {
                break;
            }
            self.dispatch_at(start)?;
        }
        Ok(())
    }

    /// Commits exactly one dispatch (the one `run_until` would run next)
    /// regardless of any time bound; returns its finish time, or `None`
    /// when nothing is dispatchable. Closed-loop drivers use this to
    /// advance time when every client is blocked on a completion.
    ///
    /// # Errors
    ///
    /// Propagates the backend's first error.
    pub fn step(&mut self) -> Result<Option<u64>, HermesError> {
        while let Some(head) = self.queue.peek_next() {
            let start = self.free_at_ns.max(head.arrival_ns);
            if self.dispatch_at(start)? {
                return Ok(Some(self.free_at_ns));
            }
        }
        Ok(None)
    }

    /// Forms and executes one batch starting at `start`; `false` when
    /// the candidates all expired (no service consumed).
    fn dispatch_at(&mut self, start: u64) -> Result<bool, HermesError> {
        let (batch, culled) = self.queue.take_batch(start, self.cfg.max_batch);
        for req in culled {
            self.record_shed(start, req, ShedReason::Expired);
        }
        if batch.is_empty() {
            return Ok(false);
        }
        let out = self.backend.run(&batch)?;
        let finish = start + out.service_ns;
        self.busy_ns += out.service_ns;
        self.free_at_ns = finish;
        self.batches += 1;
        self.shared_visits += out.shared_visits;
        hermes_trace::complete_with(
            names::SERVE_BATCH,
            start,
            out.service_ns,
            &[(names::ARG_BATCH_SIZE, batch.len() as u64)],
        );
        let batch_size = batch.len();
        for (i, req) in batch.into_iter().enumerate() {
            let sojourn = finish - req.arrival_ns;
            self.sojourn.record(sojourn);
            self.wait.record(start - req.arrival_ns);
            self.sojourn_by_class[req.priority.index()].record(sojourn);
            hermes_trace::complete_with(
                names::SERVE_REQUEST,
                req.arrival_ns,
                sojourn,
                &[
                    (names::ARG_REQUEST_ID, req.rid),
                    (names::ARG_CLASS, req.priority.index() as u64),
                ],
            );
            self.completed += 1;
            if let Some(obs) = self.observer.as_mut() {
                let tl = RequestTimeline::from_dispatch(
                    RequestId(req.rid),
                    req.id,
                    req.priority.index(),
                    req.priority.label(),
                    req.arrival_ns,
                    start,
                    finish,
                    batch_size,
                    &out.phases,
                    out.cache_paths.get(i).copied().unwrap_or(CachePath::Computed),
                    req.deadline_ns,
                );
                obs.on_completion(&tl);
            }
            self.completions.push(Completion {
                outcome: out.outcomes.get(i).cloned(),
                request: req,
                start_ns: start,
                finish_ns: finish,
                batch_size,
            });
        }
        Ok(true)
    }

    /// Completions accumulated since the last take, in dispatch order.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Shed records accumulated since the last take.
    pub fn take_shed(&mut self) -> Vec<ShedRecord> {
        std::mem::take(&mut self.shed)
    }

    /// When the next dispatch would start (`max(free_at, head arrival)`),
    /// or `None` with an empty queue — the server's half of a
    /// discrete-event driver's "which event is next?" decision.
    pub fn next_dispatch_start(&self) -> Option<u64> {
        self.queue
            .peek_next()
            .map(|head| self.free_at_ns.max(head.arrival_ns))
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// When the backend frees up (time of the last committed departure).
    pub fn free_at_ns(&self) -> u64 {
        self.free_at_ns
    }

    /// Aggregate statistics so far.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            admitted: self.admitted,
            completed: self.completed,
            shed_full: self.shed_full,
            expired: self.expired,
            batches: self.batches,
            shared_visits: self.shared_visits,
            sojourn: self.sojourn.clone(),
            wait: self.wait.clone(),
            sojourn_by_class: self.sojourn_by_class.clone(),
            busy_ns: self.busy_ns,
            makespan_ns: self.free_at_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64, arrival_ns: u64) -> Request {
        Request::new(id, vec![0.0], Priority::Standard, arrival_ns)
    }

    fn drive(server: &mut Server<FixedServiceBackend>, reqs: Vec<Request>) {
        for r in reqs {
            server.run_until(r.arrival_ns).unwrap();
            let _ = server.submit(r);
        }
        server.run_until(u64::MAX).unwrap();
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = Server::new(
            FixedServiceBackend::new(100),
            ServerConfig {
                queue_capacity: 4,
                max_batch: 1,
            },
        );
        drive(&mut s, vec![req(0, 1_000), req(1, 5_000)]);
        let done = s.take_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].start_ns, 1_000);
        assert_eq!(done[0].finish_ns, 1_100);
        assert_eq!(done[1].start_ns, 5_000);
        assert_eq!(done[0].sojourn_ns(), 100);
        let report = s.report();
        assert_eq!(report.busy_ns, 200);
        assert_eq!(report.makespan_ns, 5_100);
    }

    #[test]
    fn back_to_back_arrivals_queue_fifo() {
        let mut s = Server::new(
            FixedServiceBackend::new(100),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 1,
            },
        );
        drive(&mut s, vec![req(0, 10), req(1, 10), req(2, 10)]);
        let done = s.take_completions();
        let ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(done[0].sojourn_ns(), 100);
        assert_eq!(done[1].sojourn_ns(), 200);
        assert_eq!(done[2].sojourn_ns(), 300);
    }

    #[test]
    fn max_batch_coalesces_queued_requests() {
        let mut s = Server::new(
            FixedServiceBackend::new(100),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 4,
            },
        );
        // First arrival dispatches alone; three queue behind it and
        // share the second dispatch.
        drive(&mut s, vec![req(0, 0), req(1, 10), req(2, 20), req(3, 30)]);
        let done = s.take_completions();
        assert_eq!(done[0].batch_size, 1);
        assert!(done[1..].iter().all(|c| c.batch_size == 3));
        assert_eq!(s.report().batches, 2);
        assert!((s.report().mean_batch_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn priority_overtakes_within_the_queue() {
        let mut s = Server::new(
            FixedServiceBackend::new(100),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 1,
            },
        );
        let mut reqs = vec![
            req(0, 0),
            req(1, 10),
            Request::new(2, vec![0.0], Priority::Interactive, 20),
        ];
        let last = reqs.pop().unwrap();
        for r in reqs {
            s.run_until(r.arrival_ns).unwrap();
            s.submit(r).unwrap();
        }
        s.run_until(last.arrival_ns).unwrap();
        s.submit(last).unwrap();
        s.run_until(u64::MAX).unwrap();
        let ids: Vec<u64> = s.take_completions().iter().map(|c| c.request.id).collect();
        // Request 0 was in service; the interactive 2 overtakes 1.
        assert_eq!(ids, vec![0, 2, 1]);
    }

    #[test]
    fn queue_full_sheds_at_admission() {
        let mut s = Server::new(
            FixedServiceBackend::new(1_000),
            ServerConfig {
                queue_capacity: 2,
                max_batch: 1,
            },
        );
        // One in service, two queued, the fourth is shed.
        s.run_until(0).unwrap();
        s.submit(req(0, 0)).unwrap();
        s.run_until(1).unwrap();
        for id in 1..=2 {
            s.submit(req(id, 1)).unwrap();
        }
        let shed = s.submit(req(3, 1)).unwrap_err();
        assert_eq!(shed.reason, ShedReason::QueueFull);
        assert_eq!(shed.request.id, 3);
        s.run_until(u64::MAX).unwrap();
        let report = s.report();
        assert_eq!(report.completed, 3);
        assert_eq!(report.shed_full, 1);
        assert_eq!(s.take_shed().len(), 1);
    }

    #[test]
    fn expired_requests_never_dispatch() {
        let mut s = Server::new(
            FixedServiceBackend::new(1_000),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 1,
            },
        );
        s.run_until(0).unwrap();
        s.submit(req(0, 0)).unwrap();
        s.run_until(1).unwrap();
        // Deadline 500 passes while request 0 holds the server to 1000.
        s.submit(req(1, 1).with_deadline_ns(500)).unwrap();
        s.submit(req(2, 1)).unwrap();
        s.run_until(u64::MAX).unwrap();
        let done = s.take_completions();
        let ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(ids, vec![0, 2]);
        let report = s.report();
        assert_eq!(report.expired, 1);
        let shed = s.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].request.id, 1);
        assert_eq!(shed[0].reason, ShedReason::Expired);
        assert_eq!(shed[0].at_ns, 1_000);
        // The expired slot went to request 2 at t=1000, not later.
        assert_eq!(done[1].start_ns, 1_000);
    }

    #[test]
    fn already_expired_sheds_at_admission() {
        let mut s = Server::new(
            FixedServiceBackend::new(10),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 1,
            },
        );
        let shed = s
            .submit(req(0, 100).with_deadline_ns(50))
            .unwrap_err();
        assert_eq!(shed.reason, ShedReason::Expired);
        assert_eq!(s.report().admitted, 0);
    }

    #[test]
    fn step_commits_exactly_one_dispatch() {
        let mut s = Server::new(
            FixedServiceBackend::new(100),
            ServerConfig {
                queue_capacity: 8,
                max_batch: 1,
            },
        );
        s.run_until(0).unwrap();
        s.submit(req(0, 0)).unwrap();
        s.submit(req(1, 0)).unwrap();
        assert_eq!(s.step().unwrap(), Some(100));
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.step().unwrap(), Some(200));
        assert_eq!(s.step().unwrap(), None);
    }

    #[test]
    fn md1_equivalence_shape() {
        // max_batch = 1 + fixed service: sojourns follow the M/D/1
        // recurrence done = max(arrival, prev_done) + s.
        let s_ns = 1_000u64;
        let arrivals = [100u64, 150, 2_000, 2_010, 9_000];
        let mut server = Server::new(
            FixedServiceBackend::new(s_ns),
            ServerConfig {
                queue_capacity: 64,
                max_batch: 1,
            },
        );
        drive(
            &mut server,
            arrivals
                .iter()
                .enumerate()
                .map(|(i, &a)| req(i as u64, a))
                .collect(),
        );
        let done = server.take_completions();
        let mut prev_done = 0u64;
        for (c, &a) in done.iter().zip(&arrivals) {
            let expect = a.max(prev_done) + s_ns;
            assert_eq!(c.finish_ns, expect);
            prev_done = expect;
        }
    }
}
