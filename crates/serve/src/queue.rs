//! Bounded, priority-classed admission queue with load shedding.
//!
//! The queue is the server's only buffer: a request is either admitted
//! (and later dispatched or expired) or turned away at the door — there
//! is no unbounded backlog to stall the pool behind. Three invariants,
//! pinned property-style below, define it:
//!
//! 1. **Conservation** — every admitted request leaves exactly once, via
//!    dispatch or expiry; every rejected request is returned exactly once.
//! 2. **Priority FIFO** — dispatch order is priority class first
//!    ([`Priority::ALL`] order), arrival order within a class.
//! 3. **Bounded** — `len() <= capacity()` always.

use std::collections::VecDeque;

use crate::request::{Request, PRIORITY_CLASSES};

/// The bounded admission queue. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    classes: [VecDeque<Request>; PRIORITY_CLASSES],
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests across all
    /// priority classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            classes: Default::default(),
            capacity,
        }
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `req`, or returns it unchanged when the queue is full —
    /// the load-shedding path: rejection is immediate and costs nothing
    /// downstream.
    pub fn try_admit(&mut self, req: Request) -> Result<(), Request> {
        if self.len() >= self.capacity {
            return Err(req);
        }
        self.classes[req.priority.index()].push_back(req);
        Ok(())
    }

    /// The request the next dispatch would start with: front of the
    /// highest-priority non-empty class.
    pub fn peek_next(&self) -> Option<&Request> {
        self.classes.iter().find_map(VecDeque::front)
    }

    /// Removes and returns the next request in priority-FIFO order.
    pub fn pop_next(&mut self) -> Option<Request> {
        self.classes
            .iter_mut()
            .find(|c| !c.is_empty())
            .and_then(VecDeque::pop_front)
    }

    /// Forms the batch for a dispatch starting at `start_ns`: walks the
    /// classes in priority order (FIFO within), taking up to `max_batch`
    /// dispatchable requests. A scanned request whose deadline has
    /// passed is culled into the second list instead (it never occupies
    /// a batch slot); one that arrives *after* `start_ns` is left queued
    /// — it cannot ride a batch that started before it existed. The scan
    /// stops as soon as the batch is full, so later requests keep their
    /// position (and their own expiry is judged at their own dispatch).
    ///
    /// Returns `(batch, expired)`; both preserve priority-FIFO order.
    pub fn take_batch(&mut self, start_ns: u64, max_batch: usize) -> (Vec<Request>, Vec<Request>) {
        let mut batch = Vec::new();
        let mut expired = Vec::new();
        for class in &mut self.classes {
            let mut kept = VecDeque::with_capacity(class.len());
            while let Some(req) = class.pop_front() {
                if batch.len() >= max_batch {
                    kept.push_back(req);
                } else if req.expired_at(start_ns) {
                    expired.push(req);
                } else if req.arrival_ns <= start_ns {
                    batch.push(req);
                } else {
                    kept.push_back(req);
                }
            }
            *class = kept;
            if batch.len() >= max_batch {
                break;
            }
        }
        (batch, expired)
    }

    /// Queued requests in dispatch order, for inspection.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.classes.iter().flat_map(|c| c.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use hermes_testkit::prelude::*;

    fn req(id: u64, priority: Priority, arrival_ns: u64) -> Request {
        Request::new(id, vec![0.0], priority, arrival_ns)
    }

    #[test]
    fn priority_classes_dispatch_in_order_fifo_within() {
        let mut q = AdmissionQueue::new(10);
        q.try_admit(req(1, Priority::Batch, 0)).unwrap();
        q.try_admit(req(2, Priority::Interactive, 1)).unwrap();
        q.try_admit(req(3, Priority::Standard, 2)).unwrap();
        q.try_admit(req(4, Priority::Interactive, 3)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_next()).map(|r| r.id).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn full_queue_returns_the_request() {
        let mut q = AdmissionQueue::new(2);
        q.try_admit(req(1, Priority::Standard, 0)).unwrap();
        q.try_admit(req(2, Priority::Standard, 0)).unwrap();
        let rejected = q.try_admit(req(3, Priority::Interactive, 0)).unwrap_err();
        assert_eq!(rejected.id, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_batch_culls_expired_and_skips_future_arrivals() {
        let mut q = AdmissionQueue::new(10);
        q.try_admit(req(1, Priority::Standard, 0).with_deadline_ns(50)).unwrap();
        q.try_admit(req(2, Priority::Standard, 10)).unwrap();
        q.try_admit(req(3, Priority::Standard, 200)).unwrap();
        let (batch, expired) = q.take_batch(100, 8);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(expired.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_next().unwrap().id, 3);
    }

    #[test]
    fn take_batch_respects_max_batch_across_classes() {
        let mut q = AdmissionQueue::new(10);
        for id in 0..4 {
            q.try_admit(req(id, Priority::Batch, 0)).unwrap();
        }
        q.try_admit(req(9, Priority::Interactive, 0)).unwrap();
        let (batch, expired) = q.take_batch(10, 3);
        // The interactive request leads, then batch-class FIFO.
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![9, 0, 1]);
        assert!(expired.is_empty());
        assert_eq!(q.len(), 2);
    }

    /// Reference model for the property suite: same semantics, written
    /// as the obvious O(n) list program.
    #[derive(Default)]
    struct ModelQueue {
        items: Vec<Request>,
        capacity: usize,
    }

    impl ModelQueue {
        fn admit(&mut self, req: Request) -> Result<(), Request> {
            if self.items.len() >= self.capacity {
                Err(req)
            } else {
                self.items.push(req);
                Ok(())
            }
        }

        fn pop(&mut self) -> Option<Request> {
            let pos = Priority::ALL
                .iter()
                .find_map(|p| self.items.iter().position(|r| r.priority == *p))?;
            Some(self.items.remove(pos))
        }
    }

    /// One randomized interleaving step: admit a request (with a
    /// priority and optional deadline drawn from the seed) or drain one.
    fn apply_ops(ops: &[(u64, u64)], capacity: usize) -> Result<(), String> {
        let mut q = AdmissionQueue::new(capacity);
        let mut model = ModelQueue {
            items: Vec::new(),
            capacity,
        };
        let mut next_id = 0u64;
        let mut admitted = Vec::new();
        let mut shed = Vec::new();
        let mut drained = Vec::new();
        for &(op, tag) in ops {
            if op % 3 < 2 {
                // Admit with a priority cycling through the classes.
                let priority = Priority::ALL[(tag % 3) as usize];
                let r = req(next_id, priority, tag);
                next_id += 1;
                let got = q.try_admit(r.clone());
                let want = model.admit(r.clone());
                prop_assert_eq!(got.is_ok(), want.is_ok());
                if got.is_ok() {
                    admitted.push(r.id);
                } else {
                    shed.push(r.id);
                }
            } else {
                let got = q.pop_next();
                let want = model.pop();
                prop_assert_eq!(&got, &want);
                if let Some(r) = got {
                    drained.push(r.id);
                }
            }
            prop_assert!(q.len() <= capacity, "capacity bound violated");
            prop_assert_eq!(q.len(), model.items.len());
        }
        // Conservation: drain the rest; every admitted id comes out
        // exactly once, shed ids never do.
        while let Some(r) = q.pop_next() {
            drained.push(r.id);
        }
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert!(sorted.len() == drained.len(), "duplicate dispatch");
        let mut expected = admitted.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
        for id in &shed {
            prop_assert!(!drained.contains(id), "shed request {id} was dispatched");
        }
        Ok(())
    }

    #[test]
    fn prop_queue_matches_model_across_interleavings() {
        check(
            "admission_queue_model",
            &tuple2(
                vec_of(tuple2(u64_in(0..1_000), u64_in(0..1_000)), 0..60),
                usize_in(1..9),
            ),
            |(ops, capacity)| apply_ops(ops, *capacity),
        );
    }

    #[test]
    fn prop_take_batch_loses_nothing_and_keeps_priority_fifo() {
        check(
            "take_batch_conservation",
            &tuple2(
                vec_of(tuple2(u64_in(0..200), u64_in(0..4)), 1..40),
                tuple2(u64_in(0..200), usize_in(1..6)),
            ),
            |(arrivals, (start_ns, max_batch))| {
                let mut q = AdmissionQueue::new(64);
                for (id, &(arrival, ptag)) in arrivals.iter().enumerate() {
                    let mut r = req(id as u64, Priority::ALL[(ptag % 3) as usize], arrival);
                    if ptag == 3 {
                        // Some requests carry a deadline near their arrival.
                        r = r.with_deadline_ns(arrival + 10);
                    }
                    q.try_admit(r).unwrap();
                }
                let before: Vec<u64> = q.iter().map(|r| r.id).collect();
                let (batch, expired) = q.take_batch(*start_ns, *max_batch);
                prop_assert!(batch.len() <= *max_batch);
                for r in &batch {
                    prop_assert!(r.arrival_ns <= *start_ns, "future request dispatched");
                    prop_assert!(!r.expired_at(*start_ns), "expired request dispatched");
                }
                for r in &expired {
                    prop_assert!(r.expired_at(*start_ns));
                }
                // Conservation: batch + expired + remaining == before, as sets.
                let mut all: Vec<u64> = batch
                    .iter()
                    .chain(&expired)
                    .map(|r| r.id)
                    .chain(q.iter().map(|r| r.id))
                    .collect();
                all.sort_unstable();
                let mut want = before.clone();
                want.sort_unstable();
                prop_assert_eq!(all, want);
                // Priority FIFO within the batch: class indices
                // non-decreasing, ids increasing within a class (ids
                // were admitted in increasing order).
                for w in batch.windows(2) {
                    prop_assert!(
                        w[0].priority <= w[1].priority,
                        "batch violates class order"
                    );
                    if w[0].priority == w[1].priority {
                        prop_assert!(w[0].id < w[1].id, "batch violates FIFO");
                    }
                }
                Ok(())
            },
        );
    }
}
