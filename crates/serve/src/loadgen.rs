//! Open- and closed-loop load generation against a [`Server`].
//!
//! Both drivers are discrete-event: they own virtual time, the server
//! reacts. The **open loop** replays a seeded Poisson arrival trace from
//! [`hermes_datagen::arrivals`] — offered load is independent of service
//! times, so queues grow without bound past saturation (the honest way
//! to measure latency-vs-QPS, and the trace the `sim` queueing oracle
//! can predict). The **closed loop** models `users` clients that each
//! wait for their previous request (or its shed notice) plus a think
//! time before submitting again — throughput self-limits, the classic
//! interactive workload.
//!
//! Neither driver reads a clock; a whole run is reproducible from its
//! spec, which is what lets `scripts/verify.sh` assert served results
//! bit-identical to standalone engine execution.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hermes_core::HermesError;
use hermes_datagen::arrivals::poisson_arrival_times_ns;

use crate::request::{Completion, Priority, Request, ShedRecord};
use crate::server::{Backend, ServeReport, Server};

/// Everything a finished load-generation run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The server's aggregate view (histograms, shed counts, busy time).
    pub serve: ServeReport,
    /// Every completion, in dispatch order, with per-request results.
    pub completions: Vec<Completion>,
    /// Every shed, exactly once per shed request.
    pub shed: Vec<ShedRecord>,
}

/// Open-loop traffic description.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Total requests to offer.
    pub requests: usize,
    /// Offered arrival rate, queries per second.
    pub rate_qps: f64,
    /// Seed of the Poisson arrival trace.
    pub seed: u64,
    /// Priority classes assigned round-robin by request index.
    pub priority_cycle: Vec<Priority>,
    /// Relative dispatch SLO: each request's deadline is
    /// `arrival + slo`. `None` = no deadlines.
    pub slo_ns: Option<u64>,
}

impl OpenLoopSpec {
    /// `requests` arrivals at `rate_qps`, all [`Priority::Standard`], no
    /// deadlines, seed 0.
    pub fn new(requests: usize, rate_qps: f64) -> Self {
        OpenLoopSpec {
            requests,
            rate_qps,
            seed: 0,
            priority_cycle: vec![Priority::Standard],
            slo_ns: None,
        }
    }

    /// Sets the arrival-trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the priority cycle (must be non-empty).
    pub fn with_priority_cycle(mut self, cycle: Vec<Priority>) -> Self {
        assert!(!cycle.is_empty(), "priority cycle must be non-empty");
        self.priority_cycle = cycle;
        self
    }

    /// Sets the relative dispatch SLO.
    pub fn with_slo_ns(mut self, slo_ns: u64) -> Self {
        self.slo_ns = Some(slo_ns);
        self
    }
}

/// Closed-loop traffic description.
#[derive(Debug, Clone)]
pub struct ClosedLoopSpec {
    /// Total requests to submit across all users.
    pub requests: usize,
    /// Concurrent clients.
    pub users: usize,
    /// Pause between a user's completion (or shed notice) and their next
    /// submission, nanoseconds.
    pub think_ns: u64,
    /// Priority classes assigned per user (`cycle[user % len]`), so each
    /// client keeps one SLO class for the whole run.
    pub priority_cycle: Vec<Priority>,
    /// Relative dispatch SLO, as in [`OpenLoopSpec::slo_ns`].
    pub slo_ns: Option<u64>,
}

impl ClosedLoopSpec {
    /// `requests` submissions from `users` clients, zero think time, all
    /// [`Priority::Standard`], no deadlines.
    pub fn new(requests: usize, users: usize) -> Self {
        ClosedLoopSpec {
            requests,
            users,
            think_ns: 0,
            priority_cycle: vec![Priority::Standard],
            slo_ns: None,
        }
    }

    /// Sets the think time.
    pub fn with_think_ns(mut self, think_ns: u64) -> Self {
        self.think_ns = think_ns;
        self
    }

    /// Sets the per-user priority cycle (must be non-empty).
    pub fn with_priority_cycle(mut self, cycle: Vec<Priority>) -> Self {
        assert!(!cycle.is_empty(), "priority cycle must be non-empty");
        self.priority_cycle = cycle;
        self
    }

    /// Sets the relative dispatch SLO.
    pub fn with_slo_ns(mut self, slo_ns: u64) -> Self {
        self.slo_ns = Some(slo_ns);
        self
    }
}

fn build_request(
    id: u64,
    queries: &[Vec<f32>],
    priority: Priority,
    arrival_ns: u64,
    slo_ns: Option<u64>,
) -> Request {
    let mut req = Request::new(
        id,
        queries[id as usize % queries.len()].clone(),
        priority,
        arrival_ns,
    );
    if let Some(slo) = slo_ns {
        req = req.with_deadline_ns(arrival_ns.saturating_add(slo));
    }
    req
}

/// Drives `server` with an open-loop Poisson stream over `queries`
/// (request `i` uses `queries[i % len]`), then drains it.
///
/// # Errors
///
/// Propagates the backend's first error.
///
/// # Panics
///
/// Panics if `queries` is empty or the spec has zero requests or a
/// non-positive rate.
pub fn run_open_loop<B: Backend>(
    server: &mut Server<B>,
    queries: &[Vec<f32>],
    spec: &OpenLoopSpec,
) -> Result<LoadReport, HermesError> {
    assert!(!queries.is_empty(), "need at least one query");
    let arrivals = poisson_arrival_times_ns(spec.rate_qps, spec.requests, spec.seed);
    let mut completions = Vec::with_capacity(spec.requests);
    let mut shed = Vec::new();
    for (i, &arrival) in arrivals.iter().enumerate() {
        server.run_until(arrival)?;
        let priority = spec.priority_cycle[i % spec.priority_cycle.len()];
        let _ = server.submit(build_request(i as u64, queries, priority, arrival, spec.slo_ns));
        completions.append(&mut server.take_completions());
        shed.append(&mut server.take_shed());
    }
    server.run_until(u64::MAX)?;
    completions.append(&mut server.take_completions());
    shed.append(&mut server.take_shed());
    Ok(LoadReport {
        serve: server.report(),
        completions,
        shed,
    })
}

/// Drives `server` with `spec.users` closed-loop clients: each submits,
/// waits for its completion or shed notice, thinks, and submits again
/// until `spec.requests` total submissions have been made; then the
/// queue drains.
///
/// The driver is an exact event loop: the earliest pending event — a
/// user submission or the server's next dispatch — is processed first,
/// with submissions winning ties so a dispatch starting at the same
/// instant can carry the new arrival.
///
/// # Errors
///
/// Propagates the backend's first error.
///
/// # Panics
///
/// Panics if `queries` is empty or the spec has zero requests or users.
pub fn run_closed_loop<B: Backend>(
    server: &mut Server<B>,
    queries: &[Vec<f32>],
    spec: &ClosedLoopSpec,
) -> Result<LoadReport, HermesError> {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(spec.requests > 0, "need at least one request");
    assert!(spec.users > 0, "need at least one user");

    // Min-heap of (wake time, user): every user is always either here or
    // waiting on an in-flight request in `owner`.
    let mut ready: BinaryHeap<Reverse<(u64, usize)>> = (0..spec.users)
        .map(|u| Reverse((0u64, u)))
        .collect();
    let mut owner: HashMap<u64, usize> = HashMap::new();
    let mut submitted = 0usize;
    let mut completions = Vec::with_capacity(spec.requests);
    let mut shed = Vec::new();

    loop {
        let user_t = if submitted < spec.requests {
            ready.peek().map(|Reverse((t, _))| *t)
        } else {
            None
        };
        let dispatch_t = server.next_dispatch_start();
        match (user_t, dispatch_t) {
            (None, None) => break,
            (Some(_), None) | (Some(_), Some(_))
                if dispatch_t.is_none() || user_t <= dispatch_t =>
            {
                // Submission first on ties: a dispatch starting at this
                // instant may include the new arrival.
                let Reverse((t, u)) = ready.pop().expect("peeked above");
                let id = submitted as u64;
                let priority = spec.priority_cycle[u % spec.priority_cycle.len()];
                submitted += 1;
                match server.submit(build_request(id, queries, priority, t, spec.slo_ns)) {
                    Ok(()) => {
                        owner.insert(id, u);
                    }
                    Err(_notice) => {
                        // Shed at the door: the user saw the rejection,
                        // thinks, retries with a fresh request.
                        ready.push(Reverse((t + spec.think_ns.max(1), u)));
                    }
                }
            }
            _ => {
                if server.step()?.is_none() {
                    break;
                }
            }
        }
        for c in server.take_completions() {
            if let Some(u) = owner.remove(&c.request.id) {
                ready.push(Reverse((c.finish_ns + spec.think_ns, u)));
            }
            completions.push(c);
        }
        for s in server.take_shed() {
            if let Some(u) = owner.remove(&s.request.id) {
                // Expired in queue: the user learns at the would-be
                // dispatch time.
                ready.push(Reverse((s.at_ns + spec.think_ns, u)));
            }
            shed.push(s);
        }
    }
    server.run_until(u64::MAX)?;
    completions.append(&mut server.take_completions());
    shed.append(&mut server.take_shed());
    Ok(LoadReport {
        serve: server.report(),
        completions,
        shed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FixedServiceBackend, ServerConfig};

    fn queries() -> Vec<Vec<f32>> {
        (0..4).map(|i| vec![i as f32, 1.0]).collect()
    }

    fn server(service_ns: u64, capacity: usize, max_batch: usize) -> Server<FixedServiceBackend> {
        Server::new(
            FixedServiceBackend::new(service_ns),
            ServerConfig {
                queue_capacity: capacity,
                max_batch,
            },
        )
    }

    #[test]
    fn open_loop_accounts_for_every_request() {
        let mut s = server(1_000, 16, 1);
        let spec = OpenLoopSpec::new(500, 500_000.0).with_seed(7);
        let report = run_open_loop(&mut s, &queries(), &spec).unwrap();
        assert_eq!(report.completions.len() + report.shed.len(), 500);
        assert_eq!(report.serve.completed, report.completions.len());
        // Offered load ρ = 500k qps × 1µs = 0.5: light queueing, nothing shed.
        assert!(report.shed.is_empty());
        assert!(report.serve.busy_fraction() > 0.3);
    }

    #[test]
    fn open_loop_is_deterministic() {
        let spec = OpenLoopSpec::new(300, 800_000.0).with_seed(3);
        let mut a = server(1_000, 8, 4);
        let mut b = server(1_000, 8, 4);
        let ra = run_open_loop(&mut a, &queries(), &spec).unwrap();
        let rb = run_open_loop(&mut b, &queries(), &spec).unwrap();
        assert_eq!(ra.completions, rb.completions);
        assert_eq!(ra.shed, rb.shed);
        assert_eq!(ra.serve.sojourn, rb.serve.sojourn);
    }

    #[test]
    fn open_loop_overload_sheds_instead_of_stalling() {
        // ρ = 2: the queue saturates; the bounded queue sheds the excess
        // and the run still terminates with every request accounted for.
        let mut s = server(1_000, 4, 1);
        let spec = OpenLoopSpec::new(400, 2_000_000.0).with_seed(9);
        let report = run_open_loop(&mut s, &queries(), &spec).unwrap();
        assert_eq!(report.completions.len() + report.shed.len(), 400);
        assert!(report.serve.shed_full > 0, "overload must shed");
        assert!(s.queue_len() == 0);
    }

    #[test]
    fn closed_loop_self_limits() {
        // 2 users, service 1000ns, zero think: steady state alternates
        // users; nothing is ever shed with capacity >= users.
        let mut s = server(1_000, 4, 1);
        let spec = ClosedLoopSpec::new(50, 2);
        let report = run_closed_loop(&mut s, &queries(), &spec).unwrap();
        assert_eq!(report.completions.len(), 50);
        assert!(report.shed.is_empty());
        // With 2 users and batch=1 the server never idles after warmup:
        // makespan ≈ 50 × 1000.
        assert_eq!(report.serve.makespan_ns, 50_000);
        assert!((report.serve.busy_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_think_time_creates_idle_gaps() {
        let mut s = server(1_000, 4, 1);
        let spec = ClosedLoopSpec::new(20, 1).with_think_ns(9_000);
        let report = run_closed_loop(&mut s, &queries(), &spec).unwrap();
        assert_eq!(report.completions.len(), 20);
        // One user, think 9µs, service 1µs: utilization ~10%.
        assert!(report.serve.busy_fraction() < 0.2);
        // Exact: completions at 1000, 11000, 21000, ...
        assert_eq!(report.completions[0].finish_ns, 1_000);
        assert_eq!(report.completions[1].finish_ns, 11_000);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let spec = ClosedLoopSpec::new(40, 3)
            .with_think_ns(500)
            .with_priority_cycle(vec![
                Priority::Interactive,
                Priority::Standard,
                Priority::Batch,
            ]);
        let mut a = server(700, 8, 2);
        let mut b = server(700, 8, 2);
        let ra = run_closed_loop(&mut a, &queries(), &spec).unwrap();
        let rb = run_closed_loop(&mut b, &queries(), &spec).unwrap();
        assert_eq!(ra.completions, rb.completions);
        assert_eq!(ra.shed, rb.shed);
    }

    #[test]
    fn closed_loop_slo_expiry_wakes_the_user() {
        // Users race for one server; with a tight SLO some queued
        // requests expire, but every submission is accounted for and the
        // run terminates.
        let mut s = server(10_000, 8, 1);
        let spec = ClosedLoopSpec::new(30, 4).with_slo_ns(5_000);
        let report = run_closed_loop(&mut s, &queries(), &spec).unwrap();
        assert_eq!(report.completions.len() + report.shed.len(), 30);
        assert!(report.serve.expired > 0, "tight SLO must expire requests");
        for rec in &report.shed {
            assert_eq!(rec.reason, crate::request::ShedReason::Expired);
        }
    }
}
