//! Cache-fronted serving backend: the [`SemanticCache`] wired between
//! the dispatch loop and the engine.
//!
//! [`CachedBackend`] wraps a [`GenerationCell`] the way
//! [`GenerationBackend`](crate::GenerationBackend) does, but consults a
//! [`SemanticCache`] of [`SearchOutcome`]s before touching any shard.
//! One dispatched batch flows through three phases:
//!
//! 1. **Exact phase** — every query is probed by bit pattern. Hits are
//!    answered immediately: zero routing, zero scatter.
//! 2. **Semantic phase** — the remaining queries are routed once
//!    ([`Engine::route_batch`]); each route's top cluster buckets a
//!    near-duplicate lookup. Hits return the stored query's outcome.
//! 3. **Compute phase** — true misses reuse their phase-2 routes via
//!    [`Engine::execute_coalesced_routed`] (the route stage is never
//!    paid twice), and every fresh outcome is inserted for the next
//!    batch.
//!
//! **Invalidation:** entries are stamped with
//! [`GenerationCell::version`], which counts *every* publish — swaps
//! *and* in-place churn mutations. A lookup from any other version
//! evicts the entry and recomputes, so a generation swap can never serve
//! a pre-swap result (`tests/adaptive_cache_equivalence.rs` pins this).
//!
//! **Exactness:** an exact hit is byte-for-byte the outcome the engine
//! produced at the same version — recomputing it now would produce the
//! same bits (the engine is deterministic). A semantic hit is exact *for
//! the stored query*; serving it for a probe within `1 − threshold`
//! cosine is the layer's explicit approximation, disabled entirely by
//! [`CacheConfig::exact_only`].

use std::sync::{Arc, Mutex};

use hermes_cache::{CacheConfig, CacheStats, SemanticCache};
use hermes_core::exec::Engine;
use hermes_core::search::SearchOutcome;
use hermes_core::HermesError;
use hermes_obs::{CachePath, Phase, PhaseNs};
use hermes_trace::names;

use crate::batch::coalesce_groups;
use crate::generation::GenerationCell;
use crate::request::Request;
use crate::server::{Backend, BatchOutcome};

/// A [`Backend`] that serves repeated and near-duplicate queries from a
/// [`SemanticCache`] and computes only the true misses.
pub struct CachedBackend {
    cell: Arc<GenerationCell>,
    threads: usize,
    cache: Mutex<SemanticCache<SearchOutcome>>,
}

impl CachedBackend {
    /// A cache of `cache_cfg` in front of whatever generation `cell`
    /// publishes at dispatch time, with inter-query fan-out `threads`
    /// (`0` = full pool, `1` = inline).
    pub fn new(cell: Arc<GenerationCell>, threads: usize, cache_cfg: CacheConfig) -> Self {
        CachedBackend {
            cell,
            threads,
            cache: Mutex::new(SemanticCache::new(cache_cfg)),
        }
    }

    /// The shared cell.
    pub fn cell(&self) -> &Arc<GenerationCell> {
        &self.cell
    }

    /// Cache accounting so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache poisoned").stats()
    }
}

impl Backend for CachedBackend {
    fn run(&self, batch: &[Request]) -> Result<BatchOutcome, HermesError> {
        let mut sp = hermes_trace::span_with(names::CACHE_BATCH, &[("queries", batch.len() as u64)]);
        let store = self.cell.current();
        let version = self.cell.version();
        let engine = Engine::for_store(&store);
        let queries: Vec<Vec<f32>> = batch.iter().map(|r| r.query.clone()).collect();
        let mut phases = PhaseNs::new();
        let mut cache_paths = vec![CachePath::Computed; queries.len()];
        let t0 = hermes_trace::now_ns();

        let mut slots: Vec<Option<SearchOutcome>> = vec![None; queries.len()];
        let mut cache = self.cache.lock().expect("cache poisoned");

        // Phase 1: exact bit-pattern hits.
        for (slot, q) in slots.iter_mut().zip(&queries) {
            *slot = cache.lookup_exact(q, version).cloned();
        }
        for (path, slot) in cache_paths.iter_mut().zip(&slots) {
            if slot.is_some() {
                *path = CachePath::ExactHit;
            }
        }
        let t_exact = hermes_trace::now_ns();
        phases.add(Phase::CacheProbe, t_exact.saturating_sub(t0));
        let missed: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();

        // Phase 2+3: route the misses once; the route both buckets the
        // semantic lookup and feeds the coalesced scatter of what's left.
        let mut executed_searched: Vec<Vec<usize>> = Vec::new();
        if !missed.is_empty() {
            let miss_queries: Vec<Vec<f32>> = missed.iter().map(|&i| queries[i].clone()).collect();
            let routes = engine.route_batch(&miss_queries, self.threads)?;
            let t_route = hermes_trace::now_ns();
            phases.add(Phase::Route, t_route.saturating_sub(t_exact));
            let mut compute: Vec<(usize, Vec<f32>)> = Vec::new();
            let mut compute_routes = Vec::new();
            for ((&i, q), route) in missed.iter().zip(miss_queries).zip(routes) {
                match cache.lookup_semantic(&q, route.top_cluster(), version) {
                    Some(hit) => {
                        slots[i] = Some(hit.payload);
                        cache_paths[i] = CachePath::SemanticHit;
                    }
                    None => {
                        compute.push((i, q));
                        compute_routes.push(route);
                    }
                }
            }
            let t_semantic = hermes_trace::now_ns();
            phases.add(Phase::CacheProbe, t_semantic.saturating_sub(t_route));
            if !compute.is_empty() {
                let compute_queries: Vec<Vec<f32>> =
                    compute.iter().map(|(_, q)| q.clone()).collect();
                let outcomes = engine.execute_coalesced_routed(
                    &compute_queries,
                    compute_routes,
                    self.threads,
                )?;
                for ((i, q), outcome) in compute.into_iter().zip(outcomes) {
                    let bucket = outcome.ranked_clusters.first().copied();
                    cache.insert(q, bucket, version, outcome.clone());
                    executed_searched.push(outcome.searched_clusters.clone());
                    slots[i] = Some(outcome);
                }
                phases.add(Phase::Deep, hermes_trace::now_ns().saturating_sub(t_semantic));
            }
        }
        let stats = cache.stats();
        drop(cache);
        let service_ns = hermes_trace::now_ns().saturating_sub(t0);

        let outcomes: Vec<SearchOutcome> = slots
            .into_iter()
            .map(|s| s.expect("every slot filled by a hit or a computation"))
            .collect();
        // Coalescing accounting covers only the work actually executed —
        // cache hits touched no shard.
        let plan = coalesce_groups(&executed_searched);
        sp.arg("hits", stats.hits());
        sp.arg("computed", executed_searched.len() as u64);
        Ok(BatchOutcome {
            outcomes,
            service_ns,
            distinct_clusters: plan.distinct_clusters,
            shared_visits: plan.shared_visits(),
            phases,
            cache_paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use hermes_core::HermesConfig;
    use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};

    fn setup() -> (Vec<Vec<f32>>, Arc<GenerationCell>) {
        let corpus = Corpus::generate(CorpusSpec::new(600, 12, 5).with_seed(91));
        let queries = QuerySet::generate(&corpus, QuerySpec::new(10).with_seed(92));
        let cfg = HermesConfig::new(5)
            .with_clusters_to_search(2)
            .with_seed(93);
        let store = hermes_core::ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        (queries.to_vecs(), Arc::new(GenerationCell::new(store)))
    }

    fn requests(queries: &[Vec<f32>]) -> Vec<Request> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| Request::new(i as u64, q.clone(), Priority::Standard, 0))
            .collect()
    }

    #[test]
    fn cold_batch_matches_uncached_engine_and_warm_repeat_hits() {
        let (queries, cell) = setup();
        let backend = CachedBackend::new(cell.clone(), 1, CacheConfig::default());
        let reqs = requests(&queries);

        let store = cell.current();
        let engine = Engine::for_store(&store);
        let reference = engine.execute_batch(&queries, 1).unwrap();

        let cold = backend.run(&reqs).unwrap();
        assert_eq!(cold.outcomes, reference, "cold pass computes everything");
        assert_eq!(backend.cache_stats().misses, queries.len() as u64);

        let warm = backend.run(&reqs).unwrap();
        assert_eq!(warm.outcomes, reference, "warm pass is bit-identical");
        assert_eq!(backend.cache_stats().exact_hits, queries.len() as u64);
        assert_eq!(warm.distinct_clusters, 0, "no shard was touched");
    }

    #[test]
    fn mutation_invalidates_every_prior_entry() {
        let (queries, cell) = setup();
        let backend = CachedBackend::new(cell.clone(), 1, CacheConfig::default());
        let reqs = requests(&queries);
        backend.run(&reqs).unwrap();
        backend.run(&reqs).unwrap();
        assert!(backend.cache_stats().hits() > 0);

        // In-place churn (no generation bump on the store) must still
        // invalidate: version counts every publish.
        let v = cell.current().split_centroid(0).to_vec();
        cell.mutate(|st| st.insert(88_888, &v).unwrap());

        let store = cell.current();
        let engine = Engine::for_store(&store);
        let fresh = engine.execute_batch(&queries, 1).unwrap();
        let post = backend.run(&reqs).unwrap();
        assert_eq!(post.outcomes, fresh, "post-churn answers are recomputed");
        let stats = backend.cache_stats();
        assert!(stats.stale > 0, "prior entries were stale-evicted");
    }

    #[test]
    fn semantic_layer_serves_stored_outcome_for_near_duplicates() {
        let (queries, cell) = setup();
        let backend = CachedBackend::new(
            cell.clone(),
            1,
            CacheConfig::default().with_semantic_threshold(0.99),
        );
        backend.run(&requests(&queries)).unwrap();

        // Perturb each query far below the threshold distance.
        let near: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| {
                let mut v = q.clone();
                v[0] += 1e-4;
                v
            })
            .collect();
        let out = backend.run(&requests(&near)).unwrap();
        let stats = backend.cache_stats();
        assert!(stats.semantic_hits > 0, "near-duplicates hit semantically");

        // Every semantic hit equals the stored query's exact outcome.
        let store = cell.current();
        let engine = Engine::for_store(&store);
        let reference = engine.execute_batch(&queries, 1).unwrap();
        for (i, (got, want)) in out.outcomes.iter().zip(&reference).enumerate() {
            if got == want {
                continue; // semantic hit: stored outcome served verbatim
            }
            // Otherwise this query missed (fell under threshold) and was
            // computed exactly for the perturbed vector.
            assert_eq!(*got, engine.execute(&near[i]).unwrap());
        }
    }
}
