//! Cluster-overlap analysis of a formed batch.
//!
//! The engine's coalesced scatter ([`hermes_core::exec::Engine::execute_coalesced`])
//! turns `requests × m` deep searches into one task per *distinct*
//! cluster. This module computes the shape of that sharing for a batch:
//! which requests ride the same shard visits (connected components over
//! shared clusters) and how many shard visits coalescing saves — the
//! numbers the server's telemetry and the `ext_serving` bench report.

use std::collections::BTreeMap;

/// Sharing structure of one batch, derived from each request's routed
/// (top-m) cluster list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Connected components of requests linked by shared clusters:
    /// each group lists request indices ascending; groups are ordered by
    /// their smallest member. Requests in one group share at least one
    /// chain of overlapping shard visits; requests in different groups
    /// touch disjoint clusters.
    pub groups: Vec<Vec<usize>>,
    /// Distinct clusters across the batch — the number of scatter tasks
    /// a coalesced dispatch runs.
    pub distinct_clusters: usize,
    /// Total deep searches the batch performs (`Σ` per-request cluster
    /// counts) — the number of scatter tasks an uncoalesced dispatch
    /// would run.
    pub total_deep_searches: usize,
}

impl BatchPlan {
    /// Shard visits saved by coalescing: `total - distinct`.
    pub fn shared_visits(&self) -> usize {
        self.total_deep_searches - self.distinct_clusters
    }
}

/// Groups batch members by cluster overlap (union–find over request
/// indices, linked through each cluster's first user). Deterministic:
/// requests are processed in index order, clusters in the given order.
pub fn coalesce_groups(searched: &[Vec<usize>]) -> BatchPlan {
    let mut parent: Vec<usize> = (0..searched.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    let mut first_user: BTreeMap<usize, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (qi, clusters) in searched.iter().enumerate() {
        total += clusters.len();
        for &c in clusters {
            match first_user.get(&c) {
                None => {
                    first_user.insert(c, qi);
                }
                Some(&other) => {
                    let (a, b) = (find(&mut parent, qi), find(&mut parent, other));
                    if a != b {
                        // Attach the larger root to the smaller so group
                        // identity follows the earliest member.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
            }
        }
    }

    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for qi in 0..searched.len() {
        let root = find(&mut parent, qi);
        by_root.entry(root).or_default().push(qi);
    }
    BatchPlan {
        groups: by_root.into_values().collect(),
        distinct_clusters: first_user.len(),
        total_deep_searches: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_requests_form_singleton_groups() {
        let plan = coalesce_groups(&[vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(plan.groups, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(plan.distinct_clusters, 5);
        assert_eq!(plan.total_deep_searches, 5);
        assert_eq!(plan.shared_visits(), 0);
    }

    #[test]
    fn overlap_chains_merge_transitively() {
        // 0–1 share cluster 1; 1–2 share cluster 5; 3 is alone.
        let plan = coalesce_groups(&[vec![0, 1], vec![1, 5], vec![5, 9], vec![7]]);
        assert_eq!(plan.groups, vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(plan.distinct_clusters, 5);
        assert_eq!(plan.total_deep_searches, 7);
        assert_eq!(plan.shared_visits(), 2);
    }

    #[test]
    fn identical_routing_collapses_to_one_group() {
        let plan = coalesce_groups(&[vec![2, 4], vec![2, 4], vec![2, 4]]);
        assert_eq!(plan.groups, vec![vec![0, 1, 2]]);
        assert_eq!(plan.distinct_clusters, 2);
        assert_eq!(plan.total_deep_searches, 6);
        assert_eq!(plan.shared_visits(), 4);
    }

    #[test]
    fn empty_batch_is_empty_plan() {
        let plan = coalesce_groups(&[]);
        assert!(plan.groups.is_empty());
        assert_eq!(plan.distinct_clusters, 0);
        assert_eq!(plan.total_deep_searches, 0);
    }
}
