//! Online serving layer: admission control, SLO-aware scheduling and
//! cluster-coalesced dynamic batching over the core engine.
//!
//! The paper's at-scale argument (Section 6, "millions of users")
//! assumes a continuous request stream, while [`hermes_core`] executes
//! one plan at a time. This crate closes that gap with four pieces:
//!
//! * [`queue`] — a bounded [`AdmissionQueue`] with priority classes and
//!   load shedding: overload rejects at the door instead of growing an
//!   unbounded backlog that would stall the pool.
//! * [`batch`] — cluster-overlap analysis of a formed batch: which
//!   requests share shard visits when the scatter is coalesced.
//! * [`server`] — the discrete-event [`Server`]: virtual-time dispatch
//!   loop, deadline expiry, per-class latency histograms
//!   ([`hermes_trace::hist::LogHistogram`]), pluggable [`Backend`]
//!   ([`EngineBackend`] for real execution via
//!   [`hermes_core::exec::Engine::execute_coalesced`],
//!   [`FixedServiceBackend`] as the queue model in backend form).
//! * [`loadgen`] — open-loop (seeded Poisson, shared with
//!   `hermes_sim::queueing` through [`hermes_datagen::arrivals`]) and
//!   closed-loop (users + think time) drivers.
//! * [`observe`] — glue to `hermes_obs`: the server mints a
//!   [`hermes_obs::RequestId`] per admission ([`Request::rid`]) and,
//!   with an [`hermes_obs::Observer`] attached
//!   ([`Server::with_observer`]), folds every completion into per-request
//!   timelines, tail attribution, SLO burn accounting and the metrics
//!   exposition — without perturbing results or timing.
//!
//! **Equivalence bar:** batching, coalescing, priorities and deadlines
//! change *when* work runs, never *what it returns* — every completion
//! carries exactly the [`hermes_core::search::SearchOutcome`] that
//! standalone `Engine::execute` produces for its query
//! (`tests/serving_equivalence.rs`), and with a fixed-service backend
//! the timing itself reproduces the `sim` queueing model
//! (`tests/serving_oracle.rs`).

pub mod batch;
pub mod cache;
pub mod generation;
pub mod loadgen;
pub mod observe;
pub mod queue;
pub mod request;
pub mod server;

pub use batch::{coalesce_groups, BatchPlan};
pub use cache::CachedBackend;
pub use generation::{GenerationBackend, GenerationCell};
pub use loadgen::{run_closed_loop, run_open_loop, ClosedLoopSpec, LoadReport, OpenLoopSpec};
pub use observe::{export_cache_stats, export_serve_report, obs_config};
pub use queue::AdmissionQueue;
pub use request::{Completion, Priority, Request, ShedReason, ShedRecord};
pub use server::{
    Backend, BatchOutcome, EngineBackend, FixedServiceBackend, ServeReport, Server, ServerConfig,
};
