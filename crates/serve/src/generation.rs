//! Generation-swapped store handle: serve from generation *g* while
//! generation *g+1* is prepared off to the side.
//!
//! The incremental rebalancer (`hermes_core::rebalance`) is functional:
//! each step reads the current [`ClusteredStore`] and produces a new one
//! with `generation() + 1`. The serving loop must keep answering while a
//! step runs — and every answer must come from exactly one generation,
//! never a half-migrated hybrid. [`GenerationCell`] provides that
//! epoch/generation handle:
//!
//! * [`GenerationCell::current`] hands out an `Arc` snapshot; in-flight
//!   dispatches keep the old generation alive however long they run.
//! * [`GenerationCell::swap`] publishes the next generation atomically
//!   and bumps the cell epoch. Requests dispatched before the swap see
//!   the old store, requests after see the new one — there is no third
//!   state, which is what makes "bit-identical to stop-the-world at
//!   every generation boundary" a testable property
//!   (`tests/serving_equivalence.rs`).
//!
//! [`GenerationBackend`] is the [`Backend`] that reads the cell at each
//! dispatch, so a [`Server`](crate::Server) keeps its backend for the
//! whole run while the store underneath it evolves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use hermes_core::exec::Engine;
use hermes_core::{ClusteredStore, HermesError};
use hermes_obs::{Phase, PhaseNs};

use crate::batch::coalesce_groups;
use crate::request::Request;
use crate::server::{Backend, BatchOutcome};

/// An atomically swappable, epoch-counted store handle.
#[derive(Debug)]
pub struct GenerationCell {
    store: RwLock<Arc<ClusteredStore>>,
    epoch: AtomicU64,
    version: AtomicU64,
}

impl GenerationCell {
    /// Wraps `store` as epoch 0, version 0.
    pub fn new(store: ClusteredStore) -> Self {
        GenerationCell {
            store: RwLock::new(Arc::new(store)),
            epoch: AtomicU64::new(0),
            version: AtomicU64::new(0),
        }
    }

    /// A snapshot of the currently published generation. The `Arc` keeps
    /// that generation alive for as long as the caller holds it, even
    /// across later swaps.
    pub fn current(&self) -> Arc<ClusteredStore> {
        self.store.read().expect("generation cell poisoned").clone()
    }

    /// Number of swaps published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The store generation of the published snapshot.
    pub fn generation(&self) -> u64 {
        self.current().generation()
    }

    /// Content-version counter: bumped by **every** mutation of the
    /// published store — [`Self::swap`] *and* [`Self::mutate`] — unlike
    /// [`Self::epoch`] (swaps only) or the store's own `generation()`
    /// (rebalances only; plain inserts/removes leave it unchanged). This
    /// is the invalidation stamp the semantic cache keys on: any result
    /// computed at version *v* is untrustworthy at any other version, so
    /// churn can never serve a pre-mutation cache entry.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes `next` and returns the displaced snapshot. In-flight
    /// readers holding the old `Arc` finish on the old generation;
    /// every subsequent [`Self::current`] sees `next`.
    pub fn swap(&self, next: ClusteredStore) -> Arc<ClusteredStore> {
        let mut slot = self.store.write().expect("generation cell poisoned");
        let old = std::mem::replace(&mut *slot, Arc::new(next));
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.version.fetch_add(1, Ordering::AcqRel);
        old
    }

    /// Mutates the published store in place under the write lock (for
    /// churn: inserts/removes that do not change the generation). The
    /// closure runs on a clone only if other snapshots are live, so
    /// uncontended mutation is allocation-free.
    pub fn mutate<T>(&self, f: impl FnOnce(&mut ClusteredStore) -> T) -> T {
        let mut slot = self.store.write().expect("generation cell poisoned");
        let store = Arc::make_mut(&mut *slot);
        let out = f(store);
        self.version.fetch_add(1, Ordering::AcqRel);
        out
    }
}

/// A [`Backend`] that resolves the store through a [`GenerationCell`] at
/// every dispatch — the serving side of live rebalancing.
pub struct GenerationBackend {
    cell: Arc<GenerationCell>,
    threads: usize,
    coalesce: bool,
}

impl GenerationBackend {
    /// A backend dispatching against whatever generation `cell` publishes
    /// at dispatch time, with inter-query fan-out `threads` (`0` = full
    /// pool, `1` = inline), scatter coalesced by cluster.
    pub fn new(cell: Arc<GenerationCell>, threads: usize) -> Self {
        GenerationBackend {
            cell,
            threads,
            coalesce: true,
        }
    }

    /// Disables cluster coalescing (results are identical either way).
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// The shared cell.
    pub fn cell(&self) -> &Arc<GenerationCell> {
        &self.cell
    }
}

impl Backend for GenerationBackend {
    fn run(&self, batch: &[Request]) -> Result<BatchOutcome, HermesError> {
        let store = self.cell.current();
        let engine = Engine::for_store(&store);
        let queries: Vec<Vec<f32>> = batch.iter().map(|r| r.query.clone()).collect();
        let mut phases = PhaseNs::new();
        let t0 = hermes_trace::now_ns();
        let outcomes = if self.coalesce {
            // Same route/scatter split as `EngineBackend`: bit-identical
            // to `execute_coalesced`, but the seam lets the clock reads
            // attribute Route vs Deep.
            let routes = engine.route_batch(&queries, self.threads)?;
            let t_routed = hermes_trace::now_ns();
            phases.add(Phase::Route, t_routed.saturating_sub(t0));
            let outcomes = engine.execute_coalesced_routed(&queries, routes, self.threads)?;
            phases.add(Phase::Deep, hermes_trace::now_ns().saturating_sub(t_routed));
            outcomes
        } else {
            let outcomes = engine.execute_batch(&queries, self.threads)?;
            phases.add(Phase::Deep, hermes_trace::now_ns().saturating_sub(t0));
            outcomes
        };
        let service_ns = phases.total();
        let searched: Vec<Vec<usize>> = outcomes
            .iter()
            .map(|o| o.searched_clusters.clone())
            .collect();
        let plan = coalesce_groups(&searched);
        Ok(BatchOutcome {
            outcomes,
            service_ns,
            distinct_clusters: plan.distinct_clusters,
            shared_visits: plan.shared_visits(),
            phases,
            cache_paths: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use crate::server::{Server, ServerConfig};
    use hermes_core::HermesConfig;
    use hermes_datagen::{Corpus, CorpusSpec};

    fn store() -> (Corpus, ClusteredStore) {
        let corpus = Corpus::generate(CorpusSpec::new(400, 10, 4).with_seed(71));
        let cfg = HermesConfig::new(4)
            .with_clusters_to_search(2)
            .with_seed(72);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        (corpus, store)
    }

    #[test]
    fn snapshots_pin_their_generation_across_swaps() {
        let (_, s) = store();
        let cell = GenerationCell::new(s.clone());
        let pinned = cell.current();
        let mut next = s;
        next.insert(9_999, &pinned.split_centroid(0).to_vec()).unwrap();
        cell.swap(next);
        assert_eq!(cell.epoch(), 1);
        // The pinned snapshot still answers from the old generation.
        assert_eq!(pinned.len() + 1, cell.current().len());
    }

    #[test]
    fn backend_reads_the_cell_at_each_dispatch() {
        let (corpus, s) = store();
        let q = corpus.embeddings().row(0).to_vec();
        let baseline = s.hierarchical_search(&q).unwrap();

        let cell = Arc::new(GenerationCell::new(s));
        let backend = GenerationBackend::new(cell.clone(), 1);
        let mut server = Server::new(backend, ServerConfig::default());

        server.run_until(0).unwrap();
        server
            .submit(Request::new(0, q.clone(), Priority::Standard, 0))
            .unwrap();
        server.run_until(u64::MAX).unwrap();
        let first = server.take_completions().pop().unwrap();
        assert_eq!(first.outcome.as_ref().unwrap().hits, baseline.hits);

        // Swap in a mutated generation; the same server picks it up.
        let mut next = (*cell.current()).clone();
        let mut spiked = q.clone();
        hermes_math::distance::normalize(&mut spiked);
        hermes_math::distance::scale(&mut spiked, 2.0);
        next.insert(42_424, &spiked).unwrap();
        cell.swap(next);

        server.run_until(1_000_000).unwrap();
        server
            .submit(Request::new(1, spiked.clone(), Priority::Standard, 1_000_000))
            .unwrap();
        server.run_until(u64::MAX).unwrap();
        let second = server.take_completions().pop().unwrap();
        assert!(second
            .outcome
            .as_ref()
            .unwrap()
            .hits
            .iter()
            .any(|n| n.id == 42_424));
    }

    #[test]
    fn mutate_applies_in_place_and_preserves_live_snapshots() {
        let (_, s) = store();
        let cell = GenerationCell::new(s);
        let held = cell.current();
        let v = held.split_centroid(1).to_vec();
        let cluster = cell.mutate(|st| st.insert(31_313, &v).unwrap());
        assert_eq!(cell.current().cluster_sizes()[cluster], held.cluster_sizes()[cluster] + 1);
        // The held snapshot was copied out, not mutated under the reader.
        assert_eq!(held.len() + 1, cell.current().len());
    }
}
