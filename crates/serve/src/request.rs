//! Request, priority and disposition types shared across the serving
//! layer.

use hermes_core::search::SearchOutcome;

/// SLO class of a request. Ordering is scheduling order: the admission
/// queue always dispatches every queued `Interactive` request before any
/// `Standard` one, and `Standard` before `Batch` (FIFO within a class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-critical foreground traffic (tightest SLO).
    Interactive,
    /// Default traffic.
    Standard,
    /// Throughput-oriented background traffic (no latency SLO).
    Batch,
}

/// Number of priority classes — sizes per-class arrays.
pub const PRIORITY_CLASSES: usize = 3;

impl Priority {
    /// All classes, scheduling order (highest first).
    pub const ALL: [Priority; PRIORITY_CLASSES] =
        [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Dense index for per-class arrays: `Interactive = 0`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label for tables and traces.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// One search request as the serving layer sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned identity; sheds and completions refer back to it.
    pub id: u64,
    /// Serving-layer request id, minted by [`Server::submit`] at
    /// admission (dense, starting at 1, unique per server) — the key
    /// every trace event and [`hermes_obs::RequestTimeline`] of this
    /// request carries. `0` until admission. Unlike [`Request::id`],
    /// which the caller chooses and may reuse, `rid` is unambiguous
    /// within one server's run.
    ///
    /// [`Server::submit`]: crate::Server::submit
    pub rid: u64,
    /// The query vector.
    pub query: Vec<f32>,
    /// SLO class.
    pub priority: Priority,
    /// Arrival time on the serving clock, nanoseconds.
    pub arrival_ns: u64,
    /// Latest acceptable *dispatch* time: a request whose batch would
    /// start after this instant is expired, never sent to the engine.
    /// `None` = no deadline.
    pub deadline_ns: Option<u64>,
}

impl Request {
    /// A request with no deadline.
    pub fn new(id: u64, query: Vec<f32>, priority: Priority, arrival_ns: u64) -> Self {
        Request {
            id,
            rid: 0,
            query,
            priority,
            arrival_ns,
            deadline_ns: None,
        }
    }

    /// Sets the dispatch deadline.
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Whether a dispatch starting at `start_ns` would violate the
    /// deadline.
    pub fn expired_at(&self, start_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| start_ns > d)
    }
}

/// Why a request was turned away without executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The deadline passed before the request could be dispatched (or it
    /// arrived already expired).
    Expired,
}

/// One shed request — surfaced exactly once, never executed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRecord {
    /// The rejected request, returned to the caller intact.
    pub request: Request,
    /// Why it was shed.
    pub reason: ShedReason,
    /// When the decision was made: admission time for
    /// [`ShedReason::QueueFull`], the would-be dispatch time for
    /// [`ShedReason::Expired`].
    pub at_ns: u64,
}

/// One finished request with its timing and (for engine backends) its
/// search result.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request as submitted.
    pub request: Request,
    /// When its batch started executing.
    pub start_ns: u64,
    /// When its batch finished (`start_ns + service`).
    pub finish_ns: u64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// The search result — `Some` for engine backends, `None` for
    /// synthetic queue-model backends that execute nothing.
    pub outcome: Option<SearchOutcome>,
}

impl Completion {
    /// Queueing delay before dispatch, nanoseconds.
    pub fn wait_ns(&self) -> u64 {
        self.start_ns - self.request.arrival_ns
    }

    /// End-to-end latency (wait + service), nanoseconds.
    pub fn sojourn_ns(&self) -> u64 {
        self.finish_ns - self.request.arrival_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_is_scheduling_order() {
        assert!(Priority::Interactive < Priority::Standard);
        assert!(Priority::Standard < Priority::Batch);
        assert_eq!(Priority::Interactive.index(), 0);
        assert_eq!(Priority::Batch.index(), 2);
    }

    #[test]
    fn deadline_is_on_dispatch_start() {
        let r = Request::new(1, vec![0.0], Priority::Standard, 100).with_deadline_ns(150);
        assert!(!r.expired_at(150));
        assert!(r.expired_at(151));
        let no_deadline = Request::new(2, vec![0.0], Priority::Standard, 100);
        assert!(!no_deadline.expired_at(u64::MAX));
    }

    #[test]
    fn completion_timings() {
        let c = Completion {
            request: Request::new(1, vec![0.0], Priority::Standard, 100),
            start_ns: 130,
            finish_ns: 180,
            batch_size: 2,
            outcome: None,
        };
        assert_eq!(c.wait_ns(), 30);
        assert_eq!(c.sojourn_ns(), 80);
    }
}
