//! The hierarchical sample → rank → deep-search → rerank algorithm
//! (paper Section 4.2).

use hermes_index::{SearchParams, VectorIndex};
use hermes_math::{topk::merge_topk, Metric, Neighbor};

use crate::config::Routing;
use crate::store::ClusteredStore;
use crate::HermesError;

/// Work performed by one search phase, in scanned codes — the quantity
/// the performance model converts to latency and joules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchPhaseCost {
    /// Vector codes scored during this phase.
    pub scanned_codes: usize,
    /// Clusters touched during this phase.
    pub clusters_touched: usize,
}

/// Outcome of one hierarchical search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Global top-k hits, best first.
    pub hits: Vec<Neighbor>,
    /// All clusters ranked by routing score, best first.
    pub ranked_clusters: Vec<usize>,
    /// The clusters that received a deep search (a prefix of
    /// `ranked_clusters`).
    pub searched_clusters: Vec<usize>,
    /// Sampling-phase work.
    pub sample_cost: SearchPhaseCost,
    /// Deep-phase work, summed over searched clusters.
    pub deep_cost: SearchPhaseCost,
}

impl ClusteredStore {
    /// Ranks every cluster for `query` without deep-searching any —
    /// phase 1+2 of the hierarchical search, also used standalone for
    /// access-frequency analyses (Figure 13).
    ///
    /// Returns `(ranked_clusters, sampling_cost)`.
    ///
    /// # Errors
    ///
    /// Propagates index errors (dimension mismatch).
    pub fn route(&self, query: &[f32]) -> Result<(Vec<usize>, SearchPhaseCost), HermesError> {
        let cfg = self.config();
        match cfg.routing {
            Routing::DocumentSampling => {
                let params = SearchParams::new().with_nprobe(cfg.sample_nprobe);
                let mut scored: Vec<(usize, f32)> = Vec::with_capacity(self.num_clusters());
                let mut scanned = 0usize;
                for c in 0..self.num_clusters() {
                    let shard = self.shard(c);
                    let hits = shard.search(query, 1, &params)?;
                    scanned += shard.probe_cost(query, cfg.sample_nprobe);
                    let score = hits.first().map_or(f32::NEG_INFINITY, |h| h.score);
                    scored.push((c, score));
                }
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                Ok((
                    scored.into_iter().map(|(c, _)| c).collect(),
                    SearchPhaseCost {
                        scanned_codes: scanned,
                        clusters_touched: self.num_clusters(),
                    },
                ))
            }
            Routing::CentroidOnly => {
                let metric = cfg.metric;
                let mut scored: Vec<(usize, f32)> = (0..self.num_clusters())
                    .map(|c| (c, rank_score(metric, query, self.split_centroid(c))))
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                Ok((
                    scored.into_iter().map(|(c, _)| c).collect(),
                    SearchPhaseCost {
                        // Centroid ranking scans one vector per cluster.
                        scanned_codes: self.num_clusters(),
                        clusters_touched: self.num_clusters(),
                    },
                ))
            }
            Routing::Unranked => Ok((
                (0..self.num_clusters()).collect(),
                SearchPhaseCost::default(),
            )),
        }
    }

    /// Runs the full hierarchical search for `query` using the store's
    /// configuration (sample `nProbe`, deep `nProbe`, `clusters_to_search`,
    /// `k`).
    ///
    /// # Errors
    ///
    /// Propagates index errors (dimension mismatch, empty shards).
    pub fn hierarchical_search(&self, query: &[f32]) -> Result<SearchOutcome, HermesError> {
        let cfg = *self.config();
        let (ranked, sample_cost) = self.route(query)?;
        let m = cfg.clusters_to_search.min(ranked.len());
        let searched: Vec<usize> = ranked[..m].to_vec();

        let deep_params = SearchParams::new().with_nprobe(cfg.deep_nprobe);
        let mut per_cluster = Vec::with_capacity(m);
        let mut deep_scanned = 0usize;
        for &c in &searched {
            let shard = self.shard(c);
            per_cluster.push(shard.search(query, cfg.k, &deep_params)?);
            deep_scanned += shard.probe_cost(query, cfg.deep_nprobe);
        }
        let hits = merge_topk(&per_cluster, cfg.k);

        Ok(SearchOutcome {
            hits,
            ranked_clusters: ranked,
            searched_clusters: searched,
            sample_cost,
            deep_cost: SearchPhaseCost {
                scanned_codes: deep_scanned,
                clusters_touched: m,
            },
        })
    }

    /// Runs hierarchical searches for a whole batch on the shared
    /// work-stealing executor ([`hermes_pool::Pool::global`]): one query
    /// per steal from an atomic cursor — how the paper's retriever
    /// consumes batches, but robust to the skewed per-query cost its
    /// Zipf traces produce (static chunks strand threads; stealing does
    /// not).
    ///
    /// `threads` caps the fan-out: `0` uses the pool's full width
    /// (`HERMES_THREADS` or the machine's parallelism), `1` runs inline
    /// and sequentially, `t > 1` uses at most `t` threads. Results are
    /// bit-identical to the sequential loop for every setting, and a
    /// panicking worker re-raises its original payload on the caller.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order.
    pub fn batch_hierarchical_search(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        if threads == 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.hierarchical_search(q)).collect();
        }
        let cap = if threads == 0 { usize::MAX } else { threads };
        hermes_pool::Pool::global()
            .try_parallel_map_capped(queries, cap, |q| self.hierarchical_search(q))
    }

    /// Runs the routing + deep-search for every query and returns how
    /// often each cluster was deep-searched — the access-frequency trace
    /// of Figures 13/18 and the input to the DVFS study.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error.
    pub fn access_histogram(
        &self,
        queries: &[Vec<f32>],
    ) -> Result<Vec<usize>, HermesError> {
        // Per-query searches fan out on the shared pool; the histogram
        // accumulation stays sequential in input order, so counts are
        // deterministic for any pool width.
        let searched: Vec<Result<Vec<usize>, HermesError>> = hermes_pool::Pool::global()
            .parallel_map(queries, |q| {
                self.hierarchical_search(q).map(|out| out.searched_clusters)
            });
        let mut counts = vec![0usize; self.num_clusters()];
        for per_query in searched {
            for c in per_query? {
                counts[c] += 1;
            }
        }
        Ok(counts)
    }

    /// Exhaustively deep-searches *all* clusters and merges — the naive
    /// distributed baseline Hermes is compared against (Figure 18).
    ///
    /// # Errors
    ///
    /// Propagates index errors.
    pub fn search_all_clusters(&self, query: &[f32]) -> Result<SearchOutcome, HermesError> {
        let cfg = *self.config();
        let deep_params = SearchParams::new().with_nprobe(cfg.deep_nprobe);
        let mut per_cluster = Vec::with_capacity(self.num_clusters());
        let mut deep_scanned = 0usize;
        for c in 0..self.num_clusters() {
            let shard = self.shard(c);
            per_cluster.push(shard.search(query, cfg.k, &deep_params)?);
            deep_scanned += shard.probe_cost(query, cfg.deep_nprobe);
        }
        let hits = merge_topk(&per_cluster, cfg.k);
        let all: Vec<usize> = (0..self.num_clusters()).collect();
        Ok(SearchOutcome {
            hits,
            ranked_clusters: all.clone(),
            searched_clusters: all,
            sample_cost: SearchPhaseCost::default(),
            deep_cost: SearchPhaseCost {
                scanned_codes: deep_scanned,
                clusters_touched: self.num_clusters(),
            },
        })
    }
}

fn rank_score(metric: Metric, query: &[f32], centroid: &[f32]) -> f32 {
    metric.similarity(query, centroid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HermesConfig, Routing, SplitStrategy};
    use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
    use hermes_index::FlatIndex;
    use hermes_metrics::{ndcg_at_k, ranking::ids};
    use hermes_quant::CodecSpec;

    fn setup() -> (Corpus, QuerySet) {
        let corpus = Corpus::generate(CorpusSpec::new(1200, 24, 8).with_seed(7));
        let queries = QuerySet::generate(&corpus, QuerySpec::new(30).with_seed(8));
        (corpus, queries)
    }

    fn truth(corpus: &Corpus, query: &[f32], k: usize) -> Vec<u64> {
        let flat = FlatIndex::new(corpus.embeddings().clone(), hermes_math::Metric::InnerProduct);
        ids(&flat.search(query, k, &SearchParams::new()).unwrap())
    }

    #[test]
    fn hierarchical_search_returns_k_hits() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_k(5);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = store
            .hierarchical_search(queries.embeddings().row(0))
            .unwrap();
        assert_eq!(out.hits.len(), 5);
        assert_eq!(out.searched_clusters.len(), 3);
        assert_eq!(out.ranked_clusters.len(), 8);
        assert!(out.sample_cost.scanned_codes > 0);
        assert!(out.deep_cost.scanned_codes > out.sample_cost.scanned_codes);
    }

    #[test]
    fn searched_clusters_are_prefix_of_ranking() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = store
            .hierarchical_search(queries.embeddings().row(3))
            .unwrap();
        assert_eq!(out.searched_clusters[..], out.ranked_clusters[..3]);
    }

    #[test]
    fn hermes_matches_full_search_quality_with_3_of_8_clusters() {
        // The Figure 11 headline: document-sampled routing reaches
        // iso-accuracy with a small number of deep-searched clusters.
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8)
            .with_seed(1)
            .with_clusters_to_search(3)
            .with_codec(CodecSpec::Sq8);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let mut scores = Vec::new();
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            let got = store.hierarchical_search(q).unwrap();
            scores.push(ndcg_at_k(&t, &ids(&got.hits), 5));
        }
        let mean = hermes_metrics::ranking::mean(scores);
        assert!(mean > 0.85, "Hermes NDCG {mean}");
    }

    #[test]
    fn sampling_routing_beats_round_robin_split() {
        let (corpus, queries) = setup();
        let hermes_cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(2);
        let naive_cfg = hermes_cfg
            .with_split(SplitStrategy::RoundRobin)
            .with_routing(Routing::Unranked);
        let hermes = ClusteredStore::build(corpus.embeddings(), &hermes_cfg).unwrap();
        let naive = ClusteredStore::build(corpus.embeddings(), &naive_cfg).unwrap();
        let mut h_sum = 0.0;
        let mut n_sum = 0.0;
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            h_sum += ndcg_at_k(&t, &ids(&hermes.hierarchical_search(q).unwrap().hits), 5);
            n_sum += ndcg_at_k(&t, &ids(&naive.hierarchical_search(q).unwrap().hits), 5);
        }
        assert!(
            h_sum > n_sum * 1.2,
            "hermes {h_sum} vs naive {n_sum}: clustered routing should win clearly"
        );
    }

    #[test]
    fn document_sampling_not_worse_than_centroid_ranking() {
        let (corpus, queries) = setup();
        let base = HermesConfig::new(8).with_seed(1).with_clusters_to_search(2);
        let sampled = ClusteredStore::build(corpus.embeddings(), &base).unwrap();
        let centroid = ClusteredStore::build(
            corpus.embeddings(),
            &base.with_routing(Routing::CentroidOnly),
        )
        .unwrap();
        let mut s_sum = 0.0;
        let mut c_sum = 0.0;
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            s_sum += ndcg_at_k(&t, &ids(&sampled.hierarchical_search(q).unwrap().hits), 5);
            c_sum += ndcg_at_k(&t, &ids(&centroid.hierarchical_search(q).unwrap().hits), 5);
        }
        assert!(s_sum >= c_sum * 0.97, "sampling {s_sum} vs centroid {c_sum}");
    }

    #[test]
    fn search_all_clusters_recovers_union_quality() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_codec(CodecSpec::Flat);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        for q in queries.embeddings().iter_rows().take(10) {
            let t = truth(&corpus, q, 5);
            let all = store.search_all_clusters(q).unwrap();
            // Full fan-out over Flat-coded shards with nprobe 128 is
            // essentially exact.
            let ndcg = ndcg_at_k(&t, &ids(&all.hits), 5);
            assert!(ndcg > 0.95, "ndcg {ndcg}");
        }
    }

    #[test]
    fn more_clusters_searched_never_reduces_ndcg_much() {
        let (corpus, queries) = setup();
        let mut prev = 0.0f64;
        for m in [1usize, 3, 8] {
            let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(m);
            let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
            let mut sum = 0.0;
            for q in queries.embeddings().iter_rows() {
                let t = truth(&corpus, q, 5);
                sum += ndcg_at_k(&t, &ids(&store.hierarchical_search(q).unwrap().hits), 5);
            }
            assert!(sum >= prev - 0.5, "m={m}: {sum} < {prev}");
            prev = sum;
        }
    }

    #[test]
    fn route_and_search_agree_on_cluster_ranking() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let q = queries.embeddings().row(5);
        let (ranked, _) = store.route(q).unwrap();
        let out = store.hierarchical_search(q).unwrap();
        assert_eq!(ranked, out.ranked_clusters);
    }

    #[test]
    fn access_histogram_counts_deep_searches() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .take(10)
            .map(<[f32]>::to_vec)
            .collect();
        let hist = store.access_histogram(&qs).unwrap();
        assert_eq!(hist.len(), 8);
        assert_eq!(hist.iter().sum::<usize>(), 10 * 3);
    }

    #[test]
    fn batch_search_matches_sequential() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .take(8)
            .map(<[f32]>::to_vec)
            .collect();
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| store.hierarchical_search(q).unwrap())
            .collect();
        // 0 = full pool width, 1 = inline, 4 = capped, 64 = oversubscribed;
        // every schedule must be bit-identical to the sequential loop.
        for threads in [0usize, 1, 4, 64] {
            let batched = store.batch_hierarchical_search(&qs, threads).unwrap();
            assert_eq!(sequential, batched, "threads={threads}");
        }
    }

    #[test]
    fn batch_search_propagates_errors() {
        let (corpus, _) = setup();
        let cfg = HermesConfig::new(4).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let bad = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        assert!(store.batch_hierarchical_search(&bad, 2).is_err());
    }

    #[test]
    fn batch_error_is_sequential_first_error_mid_batch() {
        // One wrong-dimension query in the middle of an otherwise good
        // batch: the reported error must be the first in *input* order
        // (the 2-dim mismatch, not the later 1-dim one), matching what a
        // sequential loop raises — for every thread cap.
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(4).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let good = |i: usize| queries.embeddings().row(i).to_vec();
        let batch = vec![good(0), vec![1.0f32, 2.0], good(1), vec![3.0f32]];
        let sequential_err = batch
            .iter()
            .map(|q| store.hierarchical_search(q))
            .find_map(Result::err)
            .unwrap();
        assert!(matches!(sequential_err, HermesError::Index(_)));
        for threads in [0usize, 2, 16] {
            let batch_err = store.batch_hierarchical_search(&batch, threads).unwrap_err();
            assert_eq!(batch_err, sequential_err, "threads={threads}");
        }
    }

    #[test]
    fn access_histogram_matches_sequential_accumulation() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .map(<[f32]>::to_vec)
            .collect();
        let mut expected = vec![0usize; store.num_clusters()];
        for q in &qs {
            for &c in &store.hierarchical_search(q).unwrap().searched_clusters {
                expected[c] += 1;
            }
        }
        assert_eq!(store.access_histogram(&qs).unwrap(), expected);
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let (corpus, _) = setup();
        let store =
            ClusteredStore::build(corpus.embeddings(), &HermesConfig::new(4).with_seed(1))
                .unwrap();
        let err = store.hierarchical_search(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, HermesError::Index(_)));
    }
}
