//! The hierarchical sample → rank → deep-search → rerank entry points
//! (paper Section 4.2).
//!
//! Every method here is a thin wrapper over the staged scatter–gather
//! engine in [`crate::exec`]: it builds the matching [`QueryPlan`] and
//! lets one [`Engine`] run the stages. The wrappers exist so callers can
//! keep saying `store.hierarchical_search(q)`; callers that need custom
//! plans (different fan-out caps, exhaustive routing) construct an
//! [`Engine`] directly.

use hermes_math::Neighbor;

use crate::exec::{Engine, QueryPlan, SearchStats};
use crate::store::ClusteredStore;
use crate::HermesError;

/// Work performed by one search stage, in scanned codes — the quantity
/// the performance model converts to latency and joules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchPhaseCost {
    /// Vector codes scored during this stage.
    pub scanned_codes: usize,
    /// Clusters touched during this stage.
    pub clusters_touched: usize,
}

/// Outcome of one executed search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Global top-k hits, best first.
    pub hits: Vec<Neighbor>,
    /// All clusters ranked by routing score, best first.
    pub ranked_clusters: Vec<usize>,
    /// The clusters that received a deep search (a prefix of
    /// `ranked_clusters`).
    pub searched_clusters: Vec<usize>,
    /// Per-stage work record, filled in by the engine as the stages ran.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// Route-stage (sampling/centroid-ranking) work.
    pub fn sample_cost(&self) -> SearchPhaseCost {
        self.stats.route
    }

    /// Scatter-stage (deep-search) work, summed over searched clusters.
    pub fn deep_cost(&self) -> SearchPhaseCost {
        self.stats.deep
    }

    /// Codes scanned across all stages.
    pub fn total_scanned_codes(&self) -> usize {
        self.stats.total_scanned_codes()
    }
}

impl ClusteredStore {
    /// Ranks every cluster for `query` without deep-searching any —
    /// the engine's route stage, also used standalone for
    /// access-frequency analyses (Figure 13).
    ///
    /// Returns `(ranked_clusters, routing_cost)`.
    ///
    /// # Errors
    ///
    /// Propagates index errors (dimension mismatch).
    pub fn route(&self, query: &[f32]) -> Result<(Vec<usize>, SearchPhaseCost), HermesError> {
        let out = Engine::for_store(self).route(query)?;
        Ok((out.ranked_clusters, out.cost))
    }

    /// Runs the full hierarchical search for `query` using the store's
    /// configuration (sample `nProbe`, deep `nProbe`, `clusters_to_search`,
    /// `k`). The query's per-shard samples and deep searches fan out on
    /// the shared pool (intra-query parallelism); results are
    /// bit-identical to a sequential shard loop.
    ///
    /// # Errors
    ///
    /// Propagates index errors (dimension mismatch, empty shards).
    pub fn hierarchical_search(&self, query: &[f32]) -> Result<SearchOutcome, HermesError> {
        Engine::for_store(self).execute(query)
    }

    /// Runs hierarchical searches for a whole batch on the shared
    /// work-stealing executor ([`hermes_pool::Pool::global`]): one query
    /// per steal from an atomic cursor — how the paper's retriever
    /// consumes batches, but robust to the skewed per-query cost its
    /// Zipf traces produce (static chunks strand threads; stealing does
    /// not).
    ///
    /// `threads` caps the fan-out: `0` uses the pool's full width
    /// (`HERMES_THREADS` or the machine's parallelism), `1` runs inline
    /// and sequentially, `t > 1` uses at most `t` threads. Results are
    /// bit-identical to the sequential loop for every setting, and a
    /// panicking worker re-raises its original payload on the caller.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order.
    pub fn batch_hierarchical_search(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        Engine::for_store(self).execute_batch(queries, threads)
    }

    /// Runs the routing + deep-search for every query and returns how
    /// often each cluster was deep-searched — the access-frequency trace
    /// of Figures 13/18 and the input to the DVFS study.
    ///
    /// `threads` caps the per-query fan-out as in
    /// [`Self::batch_hierarchical_search`] (`0` = full pool, `1` =
    /// inline sequential); the histogram accumulation itself is always
    /// sequential in input order, so counts are deterministic for any
    /// setting.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order.
    pub fn access_histogram(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<usize>, HermesError> {
        Engine::for_store(self).access_histogram(queries, threads)
    }

    /// Exhaustively deep-searches *all* clusters and merges — the naive
    /// distributed baseline Hermes is compared against (Figure 18).
    /// Equivalent to executing [`QueryPlan::exhaustive`].
    ///
    /// # Errors
    ///
    /// Propagates index errors.
    pub fn search_all_clusters(&self, query: &[f32]) -> Result<SearchOutcome, HermesError> {
        Engine::new(self, QueryPlan::exhaustive(self.config())).execute(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HermesConfig, Routing, SplitStrategy};
    use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};
    use hermes_index::{FlatIndex, SearchParams, VectorIndex};
    use hermes_metrics::{ndcg_at_k, ranking::ids};
    use hermes_quant::CodecSpec;

    fn setup() -> (Corpus, QuerySet) {
        let corpus = Corpus::generate(CorpusSpec::new(1200, 24, 8).with_seed(7));
        let queries = QuerySet::generate(&corpus, QuerySpec::new(30).with_seed(8));
        (corpus, queries)
    }

    fn truth(corpus: &Corpus, query: &[f32], k: usize) -> Vec<u64> {
        let flat = FlatIndex::new(corpus.embeddings().clone(), hermes_math::Metric::InnerProduct);
        ids(&flat.search(query, k, &SearchParams::new()).unwrap())
    }

    #[test]
    fn hierarchical_search_returns_k_hits() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_k(5);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = store
            .hierarchical_search(queries.embeddings().row(0))
            .unwrap();
        assert_eq!(out.hits.len(), 5);
        assert_eq!(out.searched_clusters.len(), 3);
        assert_eq!(out.ranked_clusters.len(), 8);
        assert!(out.sample_cost().scanned_codes > 0);
        assert!(out.deep_cost().scanned_codes > out.sample_cost().scanned_codes);
        assert_eq!(
            out.total_scanned_codes(),
            out.sample_cost().scanned_codes + out.deep_cost().scanned_codes
        );
    }

    #[test]
    fn searched_clusters_are_prefix_of_ranking() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = store
            .hierarchical_search(queries.embeddings().row(3))
            .unwrap();
        assert_eq!(out.searched_clusters[..], out.ranked_clusters[..3]);
    }

    #[test]
    fn hermes_matches_full_search_quality_with_3_of_8_clusters() {
        // The Figure 11 headline: document-sampled routing reaches
        // iso-accuracy with a small number of deep-searched clusters.
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8)
            .with_seed(1)
            .with_clusters_to_search(3)
            .with_codec(CodecSpec::Sq8);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let mut scores = Vec::new();
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            let got = store.hierarchical_search(q).unwrap();
            scores.push(ndcg_at_k(&t, &ids(&got.hits), 5));
        }
        let mean = hermes_metrics::ranking::mean(scores);
        assert!(mean > 0.85, "Hermes NDCG {mean}");
    }

    #[test]
    fn sampling_routing_beats_round_robin_split() {
        let (corpus, queries) = setup();
        let hermes_cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(2);
        let naive_cfg = hermes_cfg
            .with_split(SplitStrategy::RoundRobin)
            .with_routing(Routing::Unranked);
        let hermes = ClusteredStore::build(corpus.embeddings(), &hermes_cfg).unwrap();
        let naive = ClusteredStore::build(corpus.embeddings(), &naive_cfg).unwrap();
        let mut h_sum = 0.0;
        let mut n_sum = 0.0;
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            h_sum += ndcg_at_k(&t, &ids(&hermes.hierarchical_search(q).unwrap().hits), 5);
            n_sum += ndcg_at_k(&t, &ids(&naive.hierarchical_search(q).unwrap().hits), 5);
        }
        assert!(
            h_sum > n_sum * 1.2,
            "hermes {h_sum} vs naive {n_sum}: clustered routing should win clearly"
        );
    }

    #[test]
    fn document_sampling_not_worse_than_centroid_ranking() {
        let (corpus, queries) = setup();
        let base = HermesConfig::new(8).with_seed(1).with_clusters_to_search(2);
        let sampled = ClusteredStore::build(corpus.embeddings(), &base).unwrap();
        let centroid = ClusteredStore::build(
            corpus.embeddings(),
            &base.with_routing(Routing::CentroidOnly),
        )
        .unwrap();
        let mut s_sum = 0.0;
        let mut c_sum = 0.0;
        for q in queries.embeddings().iter_rows() {
            let t = truth(&corpus, q, 5);
            s_sum += ndcg_at_k(&t, &ids(&sampled.hierarchical_search(q).unwrap().hits), 5);
            c_sum += ndcg_at_k(&t, &ids(&centroid.hierarchical_search(q).unwrap().hits), 5);
        }
        assert!(s_sum >= c_sum * 0.97, "sampling {s_sum} vs centroid {c_sum}");
    }

    #[test]
    fn search_all_clusters_recovers_union_quality() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_codec(CodecSpec::Flat);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        for q in queries.embeddings().iter_rows().take(10) {
            let t = truth(&corpus, q, 5);
            let all = store.search_all_clusters(q).unwrap();
            // Full fan-out over Flat-coded shards with nprobe 128 is
            // essentially exact.
            let ndcg = ndcg_at_k(&t, &ids(&all.hits), 5);
            assert!(ndcg > 0.95, "ndcg {ndcg}");
        }
    }

    #[test]
    fn search_all_clusters_has_no_route_cost() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = store
            .search_all_clusters(queries.embeddings().row(0))
            .unwrap();
        assert_eq!(out.sample_cost(), SearchPhaseCost::default());
        assert_eq!(out.deep_cost().clusters_touched, 8);
        assert_eq!(out.searched_clusters, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn more_clusters_searched_never_reduces_ndcg_much() {
        let (corpus, queries) = setup();
        let mut prev = 0.0f64;
        for m in [1usize, 3, 8] {
            let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(m);
            let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
            let mut sum = 0.0;
            for q in queries.embeddings().iter_rows() {
                let t = truth(&corpus, q, 5);
                sum += ndcg_at_k(&t, &ids(&store.hierarchical_search(q).unwrap().hits), 5);
            }
            assert!(sum >= prev - 0.5, "m={m}: {sum} < {prev}");
            prev = sum;
        }
    }

    #[test]
    fn route_and_search_agree_on_cluster_ranking() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let q = queries.embeddings().row(5);
        let (ranked, _) = store.route(q).unwrap();
        let out = store.hierarchical_search(q).unwrap();
        assert_eq!(ranked, out.ranked_clusters);
    }

    #[test]
    fn access_histogram_counts_deep_searches() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .take(10)
            .map(<[f32]>::to_vec)
            .collect();
        let hist = store.access_histogram(&qs, 0).unwrap();
        assert_eq!(hist.len(), 8);
        assert_eq!(hist.iter().sum::<usize>(), 10 * 3);
    }

    #[test]
    fn batch_search_matches_sequential() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .take(8)
            .map(<[f32]>::to_vec)
            .collect();
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| store.hierarchical_search(q).unwrap())
            .collect();
        // 0 = full pool width, 1 = inline, 4 = capped, 64 = oversubscribed;
        // every schedule must be bit-identical to the sequential loop.
        for threads in [0usize, 1, 4, 64] {
            let batched = store.batch_hierarchical_search(&qs, threads).unwrap();
            assert_eq!(sequential, batched, "threads={threads}");
        }
    }

    #[test]
    fn batch_search_propagates_errors() {
        let (corpus, _) = setup();
        let cfg = HermesConfig::new(4).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let bad = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        assert!(store.batch_hierarchical_search(&bad, 2).is_err());
    }

    #[test]
    fn batch_error_is_sequential_first_error_mid_batch() {
        // One wrong-dimension query in the middle of an otherwise good
        // batch: the reported error must be the first in *input* order
        // (the 2-dim mismatch, not the later 1-dim one), matching what a
        // sequential loop raises — for every thread cap.
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(4).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let good = |i: usize| queries.embeddings().row(i).to_vec();
        let batch = vec![good(0), vec![1.0f32, 2.0], good(1), vec![3.0f32]];
        let sequential_err = batch
            .iter()
            .map(|q| store.hierarchical_search(q))
            .find_map(Result::err)
            .unwrap();
        assert!(matches!(sequential_err, HermesError::Index(_)));
        for threads in [0usize, 2, 16] {
            let batch_err = store.batch_hierarchical_search(&batch, threads).unwrap_err();
            assert_eq!(batch_err, sequential_err, "threads={threads}");
        }
    }

    #[test]
    fn access_histogram_matches_sequential_accumulation() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(8).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let qs: Vec<Vec<f32>> = queries
            .embeddings()
            .iter_rows()
            .map(<[f32]>::to_vec)
            .collect();
        let mut expected = vec![0usize; store.num_clusters()];
        for q in &qs {
            for &c in &store.hierarchical_search(q).unwrap().searched_clusters {
                expected[c] += 1;
            }
        }
        for threads in [0usize, 1, 4] {
            assert_eq!(
                store.access_histogram(&qs, threads).unwrap(),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let (corpus, _) = setup();
        let store =
            ClusteredStore::build(corpus.embeddings(), &HermesConfig::new(4).with_seed(1))
                .unwrap();
        let err = store.hierarchical_search(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, HermesError::Index(_)));
    }
}
