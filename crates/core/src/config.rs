//! Hermes configuration — the tunable parameters of the paper's Table 2.

use hermes_math::Metric;
use hermes_quant::CodecSpec;

use crate::adaptive::AdaptiveConfig;

/// How the datastore is split into per-node clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitStrategy {
    /// K-means on document embeddings with a multi-seed imbalance sweep —
    /// the Hermes splitting procedure (Section 4.1). The fields control
    /// the sweep: how many seeds, and what fraction of documents the
    /// per-seed clustering sees.
    KMeansSweep {
        /// Number of seeds evaluated.
        seeds: u64,
        /// Subsample fraction for the sweep (the paper uses 1–2%).
        sample_fraction: f64,
    },
    /// Single-seed K-means without a sweep (ablation point).
    KMeansSingle,
    /// Round-robin assignment, giving equal-size clusters with no topical
    /// coherence — the paper's "Split" baseline.
    RoundRobin,
}

impl Default for SplitStrategy {
    fn default() -> Self {
        SplitStrategy::KMeansSweep {
            seeds: 8,
            sample_fraction: 0.1,
        }
    }
}

/// How clusters are ranked for deep search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Document sampling: probe each cluster's index cheaply and rank by
    /// the best retrieved document — the Hermes routing (Section 4.2).
    #[default]
    DocumentSampling,
    /// Rank clusters by the similarity of their split centroid — the
    /// "Centroid-Based" ablation of Figure 11.
    CentroidOnly,
    /// No ranking: clusters searched in index order (the naive-split
    /// baseline's behavior when combined with `SplitStrategy::RoundRobin`).
    Unranked,
}

/// Full Hermes configuration (Table 2: latency/accuracy, node scaling and
/// memory-efficiency knobs).
///
/// # Examples
///
/// ```
/// use hermes_core::HermesConfig;
/// let cfg = HermesConfig::new(10).with_clusters_to_search(3);
/// assert_eq!(cfg.num_clusters, 10);
/// assert_eq!(cfg.clusters_to_search, 3);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HermesConfig {
    /// Number of search indices the datastore is split into (one per
    /// node).
    pub num_clusters: usize,
    /// `nProbe` of the coarse sampling search (paper DSE optimum: 8).
    pub sample_nprobe: usize,
    /// `nProbe` of the in-depth search (paper DSE optimum: 128).
    pub deep_nprobe: usize,
    /// How many top-ranked clusters receive a deep search (paper: 3).
    pub clusters_to_search: usize,
    /// Documents returned per query (paper: 5).
    pub k: usize,
    /// Storage codec of every per-cluster IVF index (paper: SQ8).
    pub codec: CodecSpec,
    /// Similarity metric (the paper reranks by inner product).
    pub metric: Metric,
    /// Splitting procedure.
    pub split: SplitStrategy,
    /// Cluster-ranking procedure.
    pub routing: Routing,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-query adaptive-depth policy (`None` = the paper's fixed
    /// Table 2 knobs). A **query-time** knob: it shapes how much work
    /// each search does, never what the store contains, so persistence
    /// deliberately does not serialize it — stores loaded from disk come
    /// back with `None` and callers opt in per deployment.
    pub adaptive: Option<AdaptiveConfig>,
}

impl HermesConfig {
    /// Paper defaults for a datastore split `num_clusters` ways: sample
    /// `nProbe` 8, deep `nProbe` 128, 3 deep clusters, k = 5, SQ8.
    pub fn new(num_clusters: usize) -> Self {
        HermesConfig {
            num_clusters,
            sample_nprobe: 8,
            deep_nprobe: 128,
            clusters_to_search: 3,
            k: 5,
            codec: CodecSpec::Sq8,
            metric: Metric::InnerProduct,
            split: SplitStrategy::default(),
            routing: Routing::default(),
            seed: 0,
            adaptive: None,
        }
    }

    /// Sets the number of deep-searched clusters.
    pub fn with_clusters_to_search(mut self, m: usize) -> Self {
        self.clusters_to_search = m;
        self
    }

    /// Sets the sampling `nProbe`.
    pub fn with_sample_nprobe(mut self, nprobe: usize) -> Self {
        self.sample_nprobe = nprobe;
        self
    }

    /// Sets the deep-search `nProbe`.
    pub fn with_deep_nprobe(mut self, nprobe: usize) -> Self {
        self.deep_nprobe = nprobe;
        self
    }

    /// Sets the documents retrieved per query.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the storage codec.
    pub fn with_codec(mut self, codec: CodecSpec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the splitting strategy.
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    /// Sets the routing strategy.
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-query adaptive depth (see [`AdaptiveConfig`]).
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HermesError::InvalidConfig`] if any count is zero,
    /// `clusters_to_search > num_clusters`, or a sweep fraction is outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), crate::HermesError> {
        use crate::HermesError::InvalidConfig;
        if self.num_clusters == 0 {
            return Err(InvalidConfig("num_clusters must be positive".into()));
        }
        if self.clusters_to_search == 0 || self.clusters_to_search > self.num_clusters {
            return Err(InvalidConfig(format!(
                "clusters_to_search {} must be in 1..={}",
                self.clusters_to_search, self.num_clusters
            )));
        }
        if self.sample_nprobe == 0 || self.deep_nprobe == 0 {
            return Err(InvalidConfig("nProbe values must be positive".into()));
        }
        if self.k == 0 {
            return Err(InvalidConfig("k must be positive".into()));
        }
        if let SplitStrategy::KMeansSweep {
            seeds,
            sample_fraction,
        } = self.split
        {
            if seeds == 0 {
                return Err(InvalidConfig("sweep needs at least one seed".into()));
            }
            if !(0.0..=1.0).contains(&sample_fraction) || sample_fraction == 0.0 {
                return Err(InvalidConfig(format!(
                    "sample_fraction {sample_fraction} must be in (0, 1]"
                )));
            }
        }
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_design_points() {
        let cfg = HermesConfig::new(10);
        assert_eq!(cfg.sample_nprobe, 8);
        assert_eq!(cfg.deep_nprobe, 128);
        assert_eq!(cfg.clusters_to_search, 3);
        assert_eq!(cfg.k, 5);
        assert_eq!(cfg.codec, CodecSpec::Sq8);
        cfg.validate().unwrap();
    }

    #[test]
    fn over_searching_rejected() {
        let cfg = HermesConfig::new(4).with_clusters_to_search(5);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_values_rejected() {
        assert!(HermesConfig::new(0).validate().is_err());
        assert!(HermesConfig::new(4).with_k(0).validate().is_err());
        assert!(HermesConfig::new(4).with_sample_nprobe(0).validate().is_err());
    }

    #[test]
    fn adaptive_knobs_validated_through_config() {
        let good = HermesConfig::new(8).with_adaptive(AdaptiveConfig::new(1, 3, 16, 128));
        good.validate().unwrap();
        let inverted = HermesConfig::new(8).with_adaptive(AdaptiveConfig::new(3, 1, 16, 128));
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn bad_sweep_fraction_rejected() {
        let cfg = HermesConfig::new(4).with_split(SplitStrategy::KMeansSweep {
            seeds: 4,
            sample_fraction: 0.0,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_chain_sets_all_fields() {
        let cfg = HermesConfig::new(8)
            .with_sample_nprobe(4)
            .with_deep_nprobe(64)
            .with_clusters_to_search(2)
            .with_k(10)
            .with_metric(Metric::L2)
            .with_routing(Routing::CentroidOnly)
            .with_seed(99);
        assert_eq!(cfg.sample_nprobe, 4);
        assert_eq!(cfg.deep_nprobe, 64);
        assert_eq!(cfg.clusters_to_search, 2);
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.metric, Metric::L2);
        assert_eq!(cfg.routing, Routing::CentroidOnly);
        assert_eq!(cfg.seed, 99);
    }
}
