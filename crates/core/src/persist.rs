//! Persistence and online mutation of the clustered store.
//!
//! The paper's deployment builds indices offline (Appendix A.5 step 7)
//! and serves them online (steps 8+); this module provides the handoff:
//! [`ClusteredStore::to_bytes`]/[`ClusteredStore::from_bytes`] plus file
//! helpers, and [`ClusteredStore::insert`] for RAG's defining property —
//! a *mutable* non-parametric datastore that absorbs new documents
//! without retraining the LLM.

use hermes_math::distance::l2_sq;
use hermes_math::wire::{Reader, WireError, Writer};
use hermes_math::Metric;
use hermes_index::IvfIndex;
use hermes_quant::CodecSpec;

use crate::config::{HermesConfig, Routing, SplitStrategy};
use crate::store::ClusteredStore;
use crate::HermesError;

const MAGIC: &str = "HCLS";
const VERSION: u8 = 1;

fn encode_config(w: &mut Writer, cfg: &HermesConfig) {
    w.u64(cfg.num_clusters as u64);
    w.u64(cfg.sample_nprobe as u64);
    w.u64(cfg.deep_nprobe as u64);
    w.u64(cfg.clusters_to_search as u64);
    w.u64(cfg.k as u64);
    match cfg.codec {
        CodecSpec::Flat => w.u8(0),
        CodecSpec::Sq8 => w.u8(1),
        CodecSpec::Sq4 => w.u8(2),
        CodecSpec::Pq { m } => {
            w.u8(3);
            w.u64(m as u64);
        }
        CodecSpec::Opq { m } => {
            w.u8(4);
            w.u64(m as u64);
        }
    }
    w.u8(match cfg.metric {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    });
    match cfg.split {
        SplitStrategy::KMeansSweep {
            seeds,
            sample_fraction,
        } => {
            w.u8(0);
            w.u64(seeds);
            w.f64(sample_fraction);
        }
        SplitStrategy::KMeansSingle => w.u8(1),
        SplitStrategy::RoundRobin => w.u8(2),
    }
    w.u8(match cfg.routing {
        Routing::DocumentSampling => 0,
        Routing::CentroidOnly => 1,
        Routing::Unranked => 2,
    });
    w.u64(cfg.seed);
}

fn decode_config(r: &mut Reader<'_>) -> Result<HermesConfig, WireError> {
    let num_clusters = r.u64()? as usize;
    let sample_nprobe = r.u64()? as usize;
    let deep_nprobe = r.u64()? as usize;
    let clusters_to_search = r.u64()? as usize;
    let k = r.u64()? as usize;
    let codec = match r.u8()? {
        0 => CodecSpec::Flat,
        1 => CodecSpec::Sq8,
        2 => CodecSpec::Sq4,
        3 => CodecSpec::Pq {
            m: r.u64()? as usize,
        },
        4 => CodecSpec::Opq {
            m: r.u64()? as usize,
        },
        t => return Err(WireError::Corrupt(format!("bad codec spec tag {t}"))),
    };
    let metric = match r.u8()? {
        0 => Metric::L2,
        1 => Metric::InnerProduct,
        2 => Metric::Cosine,
        t => return Err(WireError::Corrupt(format!("bad metric tag {t}"))),
    };
    let split = match r.u8()? {
        0 => SplitStrategy::KMeansSweep {
            seeds: r.u64()?,
            sample_fraction: r.f64()?,
        },
        1 => SplitStrategy::KMeansSingle,
        2 => SplitStrategy::RoundRobin,
        t => return Err(WireError::Corrupt(format!("bad split tag {t}"))),
    };
    let routing = match r.u8()? {
        0 => Routing::DocumentSampling,
        1 => Routing::CentroidOnly,
        2 => Routing::Unranked,
        t => return Err(WireError::Corrupt(format!("bad routing tag {t}"))),
    };
    let seed = r.u64()?;
    Ok(HermesConfig {
        num_clusters,
        sample_nprobe,
        deep_nprobe,
        clusters_to_search,
        k,
        codec,
        metric,
        split,
        routing,
        seed,
    })
}

impl ClusteredStore {
    /// Serializes the full store: configuration, split centroids and every
    /// shard index.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.header(MAGIC, VERSION);
        encode_config(&mut w, self.config());
        w.mat(self.split_centroids_mat());
        w.u64s(
            &self
                .cluster_sizes()
                .iter()
                .map(|&s| s as u64)
                .collect::<Vec<_>>(),
        );
        w.u64(self.chosen_seed());
        w.u64(self.num_clusters() as u64);
        for c in 0..self.num_clusters() {
            w.bytes(&self.shard(c).to_bytes());
        }
        w.finish()
    }

    /// Reconstructs a store serialized with [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for truncated or corrupt payloads.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        r.header(MAGIC, VERSION)?;
        let config = decode_config(&mut r)?;
        let split_centroids = r.mat()?;
        let sizes: Vec<usize> = r.u64s()?.into_iter().map(|s| s as usize).collect();
        let chosen_seed = r.u64()?;
        let n = r.u64()? as usize;
        if n != split_centroids.rows() || n != sizes.len() {
            return Err(WireError::Corrupt("shard count mismatch".into()));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let blob = r.bytes()?;
            shards.push(IvfIndex::from_bytes(&blob)?);
        }
        Ok(ClusteredStore::from_parts(
            config,
            shards,
            split_centroids,
            sizes,
            chosen_seed,
        ))
    }

    /// Writes the serialized store to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads a store saved with [`Self::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; decode failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let buf = std::fs::read(path)?;
        ClusteredStore::from_bytes(&buf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Inserts a new document online: routes it to the cluster with the
    /// nearest split centroid and streams it into that shard's IVF index.
    /// Returns the chosen cluster.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::Index`] on dimension mismatch.
    pub fn insert(&mut self, id: u64, v: &[f32]) -> Result<usize, HermesError> {
        let dim = self.split_centroids_mat().cols();
        if v.len() != dim {
            return Err(HermesError::Index(
                hermes_index::IndexError::DimensionMismatch {
                    expected: dim,
                    got: v.len(),
                },
            ));
        }
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..self.num_clusters() {
            let d = l2_sq(self.split_centroid(c), v);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        self.shard_mut(best).add(id, v)?;
        self.bump_size(best);
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_datagen::{Corpus, CorpusSpec};

    fn store() -> (Corpus, ClusteredStore) {
        let corpus = Corpus::generate(CorpusSpec::new(500, 12, 5).with_seed(61));
        let cfg = HermesConfig::new(5)
            .with_clusters_to_search(2)
            .with_seed(62);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        (corpus, store)
    }

    #[test]
    fn store_round_trips_through_bytes() {
        let (corpus, store) = store();
        let loaded = ClusteredStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(loaded.num_clusters(), store.num_clusters());
        assert_eq!(loaded.cluster_sizes(), store.cluster_sizes());
        assert_eq!(loaded.chosen_seed(), store.chosen_seed());
        assert_eq!(loaded.config(), store.config());
        for q in corpus.embeddings().iter_rows().take(10) {
            assert_eq!(
                loaded.hierarchical_search(q).unwrap(),
                store.hierarchical_search(q).unwrap()
            );
        }
    }

    #[test]
    fn store_round_trips_through_filesystem() {
        let (corpus, store) = store();
        let path = std::env::temp_dir().join("hermes_store_roundtrip.hcls");
        store.save(&path).unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let q = corpus.embeddings().row(0);
        assert_eq!(
            loaded.hierarchical_search(q).unwrap().hits,
            store.hierarchical_search(q).unwrap().hits
        );
    }

    #[test]
    fn corrupt_store_is_rejected() {
        let (_, store) = store();
        let buf = store.to_bytes();
        assert!(ClusteredStore::from_bytes(&buf[..buf.len() - 9]).is_err());
        assert!(ClusteredStore::from_bytes(b"junk").is_err());
    }

    #[test]
    fn online_insert_routes_to_topical_cluster_and_is_searchable() {
        let (corpus, mut store) = store();
        // Insert a document pointing along a split centroid but with a
        // larger norm, so under inner product it dominates every unit
        // vector in the corpus; it must land in that cluster and become
        // retrievable.
        let mut target = store.split_centroid(3).to_vec();
        hermes_math::distance::normalize(&mut target);
        hermes_math::distance::scale(&mut target, 2.0);
        let before = store.cluster_sizes()[3];
        let cluster = store.insert(99_999, &target).unwrap();
        assert_eq!(cluster, 3);
        assert_eq!(store.cluster_sizes()[3], before + 1);
        assert_eq!(store.len(), corpus.len() + 1);
        let out = store.hierarchical_search(&target).unwrap();
        assert!(
            out.hits.iter().any(|n| n.id == 99_999),
            "freshly inserted document should be retrieved: {:?}",
            out.hits
        );
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let (_, mut store) = store();
        assert!(matches!(
            store.insert(1, &[1.0, 2.0]),
            Err(HermesError::Index(_))
        ));
    }

    #[test]
    fn inserts_survive_persistence() {
        let (_, mut store) = store();
        let mut v = store.split_centroid(1).to_vec();
        hermes_math::distance::normalize(&mut v);
        hermes_math::distance::scale(&mut v, 2.0);
        store.insert(77_777, &v).unwrap();
        let loaded = ClusteredStore::from_bytes(&store.to_bytes()).unwrap();
        let out = loaded.hierarchical_search(&v).unwrap();
        assert!(out.hits.iter().any(|n| n.id == 77_777));
    }
}
