//! Persistence of the clustered store: a paged, checksummed on-disk
//! format plus the legacy monolithic byte blob.
//!
//! The paper's deployment builds indices offline (Appendix A.5 step 7)
//! and serves them online (steps 8+); this module provides the handoff.
//! Two formats coexist:
//!
//! * **Paged (`HPGS`, the default for [`ClusteredStore::save`])** — the
//!   file is a sequence of fixed 4 KiB pages: a header page, a checksum
//!   table (one FNV-1a 64 checksum per content page), then the content
//!   region holding a metadata section (config, running + anchor
//!   centroids, sizes, seed, rebalance generation, shard directory)
//!   followed by one page-aligned section per shard. A
//!   [`PagedStoreReader`] opens a store by reading *only* the header,
//!   table and metadata pages — cold-start cost is independent of store
//!   size — and materializes shard sections individually on demand.
//!   [`ClusteredStore::save`] writes the image to a temporary sibling
//!   file and atomically renames it over the target, so a crash
//!   mid-snapshot always leaves the previous generation loadable.
//! * **Legacy monolithic (`HCLS`)** — [`ClusteredStore::to_bytes`] /
//!   [`ClusteredStore::from_bytes`], one undivided wire blob with a
//!   single header. Kept as the migration shim ([`ClusteredStore::load`]
//!   sniffs the magic) and as the baseline the `ext_persist` bench
//!   compares cold-start against. It predates mutable-store metadata, so
//!   loading it resets drift anchors and the generation counter.
//!
//! Every failure mode surfaces as a typed [`PersistError`] — truncation,
//! bad magic, version skew, per-page checksum mismatch — never a panic.

use hermes_math::wire::{checksum64, Reader, WireError, Writer};
use hermes_math::{Mat, Metric};
use hermes_index::IvfIndex;
use hermes_quant::CodecSpec;

use std::io::{Read, Seek, SeekFrom, Write};

use crate::config::{HermesConfig, Routing, SplitStrategy};
use crate::store::ClusteredStore;

const MAGIC: &str = "HCLS";
const VERSION: u8 = 1;

/// Fixed page size of the `HPGS` format.
pub const PAGE_SIZE: usize = 4096;
const PAGED_MAGIC: [u8; 8] = *b"HPGS\0\0\0\0";
const PAGED_VERSION: u8 = 1;
/// Magic of the metadata section inside the content region.
const META_MAGIC: &str = "HPGM";
const META_VERSION: u8 = 1;
/// Byte length of the fixed header fields covered by the header checksum.
const HEADER_BODY: usize = 48;

/// Typed persistence failure. Corrupt or truncated images are always
/// reported through this enum — loading never panics.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with a known store magic.
    BadMagic,
    /// The file carries an unsupported format version.
    Version {
        /// Version found in the header.
        got: u8,
        /// Version this build reads.
        expected: u8,
    },
    /// A page failed checksum verification.
    Checksum {
        /// Absolute page index within the file (header = page 0).
        page: u64,
    },
    /// The file ends before a required page or field.
    Truncated,
    /// Structurally invalid content (bad tag, inconsistent directory…).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a hermes store (bad magic)"),
            PersistError::Version { got, expected } => {
                write!(f, "unsupported store version {got} (expected {expected})")
            }
            PersistError::Checksum { page } => {
                write!(f, "checksum mismatch on page {page}")
            }
            PersistError::Truncated => write!(f, "store image is truncated"),
            PersistError::Corrupt(msg) => write!(f, "corrupt store image: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => PersistError::Truncated,
            WireError::BadHeader { .. } => PersistError::BadMagic,
            WireError::Corrupt(msg) => PersistError::Corrupt(msg),
        }
    }
}

fn pages_for(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE)
}

fn encode_config(w: &mut Writer, cfg: &HermesConfig) {
    w.u64(cfg.num_clusters as u64);
    w.u64(cfg.sample_nprobe as u64);
    w.u64(cfg.deep_nprobe as u64);
    w.u64(cfg.clusters_to_search as u64);
    w.u64(cfg.k as u64);
    match cfg.codec {
        CodecSpec::Flat => w.u8(0),
        CodecSpec::Sq8 => w.u8(1),
        CodecSpec::Sq4 => w.u8(2),
        CodecSpec::Pq { m } => {
            w.u8(3);
            w.u64(m as u64);
        }
        CodecSpec::Opq { m } => {
            w.u8(4);
            w.u64(m as u64);
        }
    }
    w.u8(match cfg.metric {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    });
    match cfg.split {
        SplitStrategy::KMeansSweep {
            seeds,
            sample_fraction,
        } => {
            w.u8(0);
            w.u64(seeds);
            w.f64(sample_fraction);
        }
        SplitStrategy::KMeansSingle => w.u8(1),
        SplitStrategy::RoundRobin => w.u8(2),
    }
    w.u8(match cfg.routing {
        Routing::DocumentSampling => 0,
        Routing::CentroidOnly => 1,
        Routing::Unranked => 2,
    });
    w.u64(cfg.seed);
}

fn decode_config(r: &mut Reader<'_>) -> Result<HermesConfig, WireError> {
    let num_clusters = r.u64()? as usize;
    let sample_nprobe = r.u64()? as usize;
    let deep_nprobe = r.u64()? as usize;
    let clusters_to_search = r.u64()? as usize;
    let k = r.u64()? as usize;
    let codec = match r.u8()? {
        0 => CodecSpec::Flat,
        1 => CodecSpec::Sq8,
        2 => CodecSpec::Sq4,
        3 => CodecSpec::Pq {
            m: r.u64()? as usize,
        },
        4 => CodecSpec::Opq {
            m: r.u64()? as usize,
        },
        t => return Err(WireError::Corrupt(format!("bad codec spec tag {t}"))),
    };
    let metric = match r.u8()? {
        0 => Metric::L2,
        1 => Metric::InnerProduct,
        2 => Metric::Cosine,
        t => return Err(WireError::Corrupt(format!("bad metric tag {t}"))),
    };
    let split = match r.u8()? {
        0 => SplitStrategy::KMeansSweep {
            seeds: r.u64()?,
            sample_fraction: r.f64()?,
        },
        1 => SplitStrategy::KMeansSingle,
        2 => SplitStrategy::RoundRobin,
        t => return Err(WireError::Corrupt(format!("bad split tag {t}"))),
    };
    let routing = match r.u8()? {
        0 => Routing::DocumentSampling,
        1 => Routing::CentroidOnly,
        2 => Routing::Unranked,
        t => return Err(WireError::Corrupt(format!("bad routing tag {t}"))),
    };
    let seed = r.u64()?;
    Ok(HermesConfig {
        num_clusters,
        sample_nprobe,
        deep_nprobe,
        clusters_to_search,
        k,
        codec,
        metric,
        split,
        routing,
        seed,
        // Query-time knob, deliberately not part of the wire format:
        // loaded stores always come back non-adaptive and callers opt in
        // per deployment (see `HermesConfig::adaptive`).
        adaptive: None,
    })
}

impl ClusteredStore {
    /// Serializes the full store: configuration, split centroids and every
    /// shard index.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.header(MAGIC, VERSION);
        encode_config(&mut w, self.config());
        w.mat(self.split_centroids_mat());
        w.u64s(
            &self
                .cluster_sizes()
                .iter()
                .map(|&s| s as u64)
                .collect::<Vec<_>>(),
        );
        w.u64(self.chosen_seed());
        w.u64(self.num_clusters() as u64);
        for c in 0..self.num_clusters() {
            w.bytes(&self.shard(c).to_bytes());
        }
        w.finish()
    }

    /// Reconstructs a store serialized with [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for truncated or corrupt payloads.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        r.header(MAGIC, VERSION)?;
        let config = decode_config(&mut r)?;
        let split_centroids = r.mat()?;
        let sizes: Vec<usize> = r.u64s()?.into_iter().map(|s| s as usize).collect();
        let chosen_seed = r.u64()?;
        let n = r.u64()? as usize;
        if n != split_centroids.rows() || n != sizes.len() {
            return Err(WireError::Corrupt("shard count mismatch".into()));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let blob = r.bytes()?;
            shards.push(IvfIndex::from_bytes(&blob)?);
        }
        Ok(ClusteredStore::from_parts(
            config,
            shards,
            split_centroids,
            sizes,
            chosen_seed,
        ))
    }

    /// Serializes the store into the paged `HPGS` image (see the module
    /// docs for the layout). The image carries full mutable-store
    /// metadata — drift anchors and the rebalance generation — unlike
    /// the legacy blob.
    pub fn to_paged_bytes(&self) -> Vec<u8> {
        let shard_blobs: Vec<Vec<u8>> = (0..self.num_clusters())
            .map(|c| self.shard(c).to_bytes())
            .collect();

        // The directory lives inside the metadata section, whose page
        // count shifts every shard's first page — but the encoding is
        // fixed-width, so a zero-filled dry run pins the length.
        let meta_len = self.encode_meta(&shard_blobs, 0).len();
        let meta_pages = pages_for(meta_len);
        let meta = self.encode_meta(&shard_blobs, meta_pages as u64);
        debug_assert_eq!(meta.len(), meta_len);

        let mut content = Vec::new();
        content.extend_from_slice(&meta);
        content.resize(meta_pages * PAGE_SIZE, 0);
        for blob in &shard_blobs {
            content.extend_from_slice(blob);
            content.resize(pages_for(content.len()) * PAGE_SIZE, 0);
        }

        let num_content_pages = content.len() / PAGE_SIZE;
        let mut table = Vec::with_capacity(num_content_pages * 8);
        for page in content.chunks(PAGE_SIZE) {
            table.extend_from_slice(&checksum64(page).to_le_bytes());
        }
        let table_pages = pages_for(table.len()).max(1);
        let table_checksum = checksum64(&table);
        table.resize(table_pages * PAGE_SIZE, 0);

        let mut header = vec![0u8; PAGE_SIZE];
        header[0..8].copy_from_slice(&PAGED_MAGIC);
        header[8] = PAGED_VERSION;
        header[16..24].copy_from_slice(&(PAGE_SIZE as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(num_content_pages as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(meta_len as u64).to_le_bytes());
        header[40..48].copy_from_slice(&table_checksum.to_le_bytes());
        let hc = checksum64(&header[..HEADER_BODY]);
        header[HEADER_BODY..HEADER_BODY + 8].copy_from_slice(&hc.to_le_bytes());

        let mut image = header;
        image.extend_from_slice(&table);
        image.extend_from_slice(&content);
        image
    }

    /// Metadata section: everything except the shard payloads, plus the
    /// shard directory (first content page + byte length per shard).
    fn encode_meta(&self, shard_blobs: &[Vec<u8>], meta_pages: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.header(META_MAGIC, META_VERSION);
        encode_config(&mut w, self.config());
        w.mat(self.split_centroids_mat());
        let anchors: Vec<Vec<f32>> = (0..self.num_clusters())
            .map(|c| self.anchor_centroid(c).to_vec())
            .collect();
        w.mat(&Mat::from_rows(&anchors));
        w.u64s(
            &self
                .cluster_sizes()
                .iter()
                .map(|&s| s as u64)
                .collect::<Vec<_>>(),
        );
        w.u64(self.chosen_seed());
        w.u64(self.generation());
        w.u64(shard_blobs.len() as u64);
        let mut page = meta_pages;
        for blob in shard_blobs {
            w.u64(page);
            w.u64(blob.len() as u64);
            page += pages_for(blob.len()) as u64;
        }
        w.finish()
    }

    /// Writes the paged image to `path` **atomically**: the image lands
    /// in a `.tmp` sibling first and is renamed over the target, so a
    /// crash mid-write leaves any previous snapshot intact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`PersistError::Io`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_paged_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a store saved with [`Self::save`], accepting both the paged
    /// `HPGS` format and the legacy monolithic `HCLS` blob (migration
    /// shim — legacy images reset drift anchors and the generation).
    ///
    /// # Errors
    ///
    /// Returns a typed [`PersistError`] for any corrupt, truncated or
    /// unreadable image.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let mut magic = [0u8; 8];
        {
            let mut f = std::fs::File::open(path)?;
            let n = f.read(&mut magic)?;
            if n < 8 {
                return Err(PersistError::Truncated);
            }
        }
        if magic == PAGED_MAGIC {
            PagedStoreReader::open(path)?.into_store()
        } else {
            let buf = std::fs::read(path)?;
            Ok(ClusteredStore::from_bytes(&buf)?)
        }
    }
}

/// Decoded metadata section of a paged store image.
#[derive(Debug, Clone)]
struct PagedMeta {
    config: HermesConfig,
    split_centroids: Mat,
    anchor_centroids: Mat,
    sizes: Vec<usize>,
    chosen_seed: u64,
    generation: u64,
    /// Per shard: (first content page, payload byte length).
    directory: Vec<(u64, u64)>,
}

fn decode_meta(buf: &[u8]) -> Result<PagedMeta, PersistError> {
    let mut r = Reader::new(buf);
    r.header(META_MAGIC, META_VERSION)?;
    let config = decode_config(&mut r)?;
    let split_centroids = r.mat()?;
    let anchor_centroids = r.mat()?;
    let sizes: Vec<usize> = r.u64s()?.into_iter().map(|s| s as usize).collect();
    let chosen_seed = r.u64()?;
    let generation = r.u64()?;
    let n = r.u64()? as usize;
    if n != split_centroids.rows() || n != anchor_centroids.rows() || n != sizes.len() {
        return Err(PersistError::Corrupt("shard count mismatch".into()));
    }
    let mut directory = Vec::with_capacity(n);
    for _ in 0..n {
        let page = r.u64()?;
        let len = r.u64()?;
        directory.push((page, len));
    }
    Ok(PagedMeta {
        config,
        split_centroids,
        anchor_centroids,
        sizes,
        chosen_seed,
        generation,
        directory,
    })
}

/// Incremental reader over a paged (`HPGS`) store file.
///
/// [`PagedStoreReader::open`] reads and verifies only the header, the
/// checksum table and the metadata section — a few pages regardless of
/// store size — which is what makes paged cold-start fast (`ext_persist`
/// measures the gap against full legacy materialization). Shard payloads
/// are then read page-for-page on demand with [`Self::load_shard`], each
/// page verified against the table, or all at once with
/// [`Self::into_store`].
#[derive(Debug)]
pub struct PagedStoreReader {
    file: std::fs::File,
    /// Per-content-page FNV-1a 64 checksums.
    table: Vec<u64>,
    /// Absolute page index where the content region starts.
    content_start: u64,
    num_content_pages: u64,
    meta: PagedMeta,
}

impl PagedStoreReader {
    /// Opens a paged store image, verifying header, checksum table and
    /// metadata pages.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PersistError`] for any corrupt, truncated or
    /// unreadable image.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let mut file = std::fs::File::open(path)?;

        let mut header = [0u8; PAGE_SIZE];
        read_exact_or_truncated(&mut file, &mut header)?;
        if header[0..8] != PAGED_MAGIC {
            return Err(PersistError::BadMagic);
        }
        if header[8] != PAGED_VERSION {
            return Err(PersistError::Version {
                got: header[8],
                expected: PAGED_VERSION,
            });
        }
        let hc = u64::from_le_bytes(header[HEADER_BODY..HEADER_BODY + 8].try_into().unwrap());
        if checksum64(&header[..HEADER_BODY]) != hc {
            return Err(PersistError::Checksum { page: 0 });
        }
        let page_size = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if page_size != PAGE_SIZE as u64 {
            return Err(PersistError::Corrupt(format!(
                "unsupported page size {page_size}"
            )));
        }
        let num_content_pages = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let meta_len = u64::from_le_bytes(header[32..40].try_into().unwrap()) as usize;
        let table_checksum = u64::from_le_bytes(header[40..48].try_into().unwrap());

        let table_pages = pages_for((num_content_pages as usize) * 8).max(1);
        let mut table_bytes = vec![0u8; table_pages * PAGE_SIZE];
        read_exact_or_truncated(&mut file, &mut table_bytes)?;
        if checksum64(&table_bytes[..(num_content_pages as usize) * 8]) != table_checksum {
            // The table region spans pages [1, 1 + table_pages); the
            // covering checksum cannot localize further, so report its
            // first page.
            return Err(PersistError::Checksum { page: 1 });
        }
        let table: Vec<u64> = table_bytes[..(num_content_pages as usize) * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();

        let mut reader = PagedStoreReader {
            file,
            table,
            content_start: 1 + table_pages as u64,
            num_content_pages,
            meta: PagedMeta {
                config: HermesConfig::new(1),
                split_centroids: Mat::zeros(0, 0),
                anchor_centroids: Mat::zeros(0, 0),
                sizes: Vec::new(),
                chosen_seed: 0,
                generation: 0,
                directory: Vec::new(),
            },
        };
        let meta_buf = reader.read_content(0, meta_len)?;
        reader.meta = decode_meta(&meta_buf)?;
        for &(page, len) in &reader.meta.directory {
            let end = page + pages_for(len as usize) as u64;
            if end > num_content_pages {
                return Err(PersistError::Corrupt(format!(
                    "shard section [{page}, {end}) exceeds {num_content_pages} content pages"
                )));
            }
        }
        Ok(reader)
    }

    /// Reads `len` bytes starting at content page `first_page`, verifying
    /// every touched page against the checksum table.
    fn read_content(&mut self, first_page: u64, len: usize) -> Result<Vec<u8>, PersistError> {
        let pages = pages_for(len) as u64;
        if first_page + pages > self.num_content_pages {
            return Err(PersistError::Truncated);
        }
        let offset = (self.content_start + first_page) * PAGE_SIZE as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; (pages as usize) * PAGE_SIZE];
        read_exact_or_truncated(&mut self.file, &mut buf)?;
        for (i, page) in buf.chunks(PAGE_SIZE).enumerate() {
            let idx = first_page as usize + i;
            if checksum64(page) != self.table[idx] {
                return Err(PersistError::Checksum {
                    page: self.content_start + idx as u64,
                });
            }
        }
        buf.truncate(len);
        Ok(buf)
    }

    /// The persisted configuration (available without touching shards).
    pub fn config(&self) -> &HermesConfig {
        &self.meta.config
    }

    /// Number of shard sections in the image.
    pub fn num_clusters(&self) -> usize {
        self.meta.directory.len()
    }

    /// Persisted live sizes per cluster.
    pub fn cluster_sizes(&self) -> &[usize] {
        &self.meta.sizes
    }

    /// Total live documents in the image.
    pub fn len(&self) -> usize {
        self.meta.sizes.iter().sum()
    }

    /// Whether the image holds no live documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persisted rebalance generation.
    pub fn generation(&self) -> u64 {
        self.meta.generation
    }

    /// Materializes one shard's IVF index from its pages.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] for an out-of-range cluster and
    /// typed errors for checksum/decode failures.
    pub fn load_shard(&mut self, cluster: usize) -> Result<IvfIndex, PersistError> {
        let &(page, len) = self
            .meta
            .directory
            .get(cluster)
            .ok_or_else(|| PersistError::Corrupt(format!("no shard section {cluster}")))?;
        let buf = self.read_content(page, len as usize)?;
        Ok(IvfIndex::from_bytes(&buf)?)
    }

    /// Materializes the full store (all shard sections).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::load_shard`] failures.
    pub fn into_store(mut self) -> Result<ClusteredStore, PersistError> {
        let mut shards = Vec::with_capacity(self.num_clusters());
        for c in 0..self.num_clusters() {
            shards.push(self.load_shard(c)?);
        }
        Ok(ClusteredStore::from_parts_full(
            self.meta.config,
            shards,
            self.meta.split_centroids,
            self.meta.anchor_centroids,
            self.meta.sizes,
            self.meta.chosen_seed,
            self.meta.generation,
        ))
    }
}

/// `read_exact` with EOF mapped to the typed truncation error.
fn read_exact_or_truncated(f: &mut std::fs::File, buf: &mut [u8]) -> Result<(), PersistError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HermesError;
    use hermes_datagen::{Corpus, CorpusSpec};

    fn store() -> (Corpus, ClusteredStore) {
        let corpus = Corpus::generate(CorpusSpec::new(500, 12, 5).with_seed(61));
        let cfg = HermesConfig::new(5)
            .with_clusters_to_search(2)
            .with_seed(62);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        (corpus, store)
    }

    #[test]
    fn store_round_trips_through_bytes() {
        let (corpus, store) = store();
        let loaded = ClusteredStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(loaded.num_clusters(), store.num_clusters());
        assert_eq!(loaded.cluster_sizes(), store.cluster_sizes());
        assert_eq!(loaded.chosen_seed(), store.chosen_seed());
        assert_eq!(loaded.config(), store.config());
        for q in corpus.embeddings().iter_rows().take(10) {
            assert_eq!(
                loaded.hierarchical_search(q).unwrap(),
                store.hierarchical_search(q).unwrap()
            );
        }
    }

    #[test]
    fn store_round_trips_through_filesystem() {
        let (corpus, store) = store();
        let path = std::env::temp_dir().join("hermes_store_roundtrip.hcls");
        store.save(&path).unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let q = corpus.embeddings().row(0);
        assert_eq!(
            loaded.hierarchical_search(q).unwrap().hits,
            store.hierarchical_search(q).unwrap().hits
        );
    }

    #[test]
    fn corrupt_store_is_rejected() {
        let (_, store) = store();
        let buf = store.to_bytes();
        assert!(ClusteredStore::from_bytes(&buf[..buf.len() - 9]).is_err());
        assert!(ClusteredStore::from_bytes(b"junk").is_err());
    }

    #[test]
    fn online_insert_routes_to_topical_cluster_and_is_searchable() {
        let (corpus, mut store) = store();
        // Insert a document pointing along a split centroid but with a
        // larger norm, so under inner product it dominates every unit
        // vector in the corpus; it must land in that cluster and become
        // retrievable.
        let mut target = store.split_centroid(3).to_vec();
        hermes_math::distance::normalize(&mut target);
        hermes_math::distance::scale(&mut target, 2.0);
        let before = store.cluster_sizes()[3];
        let cluster = store.insert(99_999, &target).unwrap();
        assert_eq!(cluster, 3);
        assert_eq!(store.cluster_sizes()[3], before + 1);
        assert_eq!(store.len(), corpus.len() + 1);
        let out = store.hierarchical_search(&target).unwrap();
        assert!(
            out.hits.iter().any(|n| n.id == 99_999),
            "freshly inserted document should be retrieved: {:?}",
            out.hits
        );
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let (_, mut store) = store();
        assert!(matches!(
            store.insert(1, &[1.0, 2.0]),
            Err(HermesError::Index(_))
        ));
    }

    #[test]
    fn paged_image_round_trips_bit_identically() {
        let (corpus, store) = store();
        let path = std::env::temp_dir().join("hermes_paged_roundtrip.hpgs");
        store.save(&path).unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.cluster_sizes(), store.cluster_sizes());
        assert_eq!(loaded.config(), store.config());
        assert_eq!(loaded.generation(), store.generation());
        for q in corpus.embeddings().iter_rows().take(10) {
            assert_eq!(
                loaded.hierarchical_search(q).unwrap(),
                store.hierarchical_search(q).unwrap()
            );
        }
    }

    #[test]
    fn paged_image_preserves_rebalance_metadata() {
        let (_, mut store) = store();
        let v = store.split_centroid(0).to_vec();
        for i in 0..800 {
            store.insert(50_000 + i, &v).unwrap();
        }
        let r = crate::Rebalancer::new(crate::RebalanceConfig {
            max_imbalance: 2.0,
            ..crate::RebalanceConfig::default()
        });
        let action = r.next_action(&store).expect("skew triggers");
        let next = r.apply(&store, action).unwrap();
        assert!(next.generation() > 0);

        let path = std::env::temp_dir().join("hermes_paged_rebalanced.hpgs");
        next.save(&path).unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The paged format carries generation and drift anchors, so the
        // loaded store resumes rebalancing exactly where it left off.
        assert_eq!(loaded.generation(), next.generation());
        assert_eq!(loaded.cluster_drift(), next.cluster_drift());
        assert_eq!(loaded.config().num_clusters, next.num_clusters());
        assert_eq!(
            format!("{:?}", r.next_action(&loaded)),
            format!("{:?}", r.next_action(&next))
        );
    }

    #[test]
    fn load_sniffs_legacy_monolithic_images() {
        let (corpus, store) = store();
        let path = std::env::temp_dir().join("hermes_legacy_shim.hcls");
        std::fs::write(&path, store.to_bytes()).unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let q = corpus.embeddings().row(0);
        assert_eq!(
            loaded.hierarchical_search(q).unwrap().hits,
            store.hierarchical_search(q).unwrap().hits
        );
        // Legacy images predate mutable-store metadata.
        assert_eq!(loaded.generation(), 0);
    }

    #[test]
    fn paged_reader_opens_without_materializing_shards() {
        let (_, store) = store();
        let path = std::env::temp_dir().join("hermes_paged_cold_open.hpgs");
        store.save(&path).unwrap();
        let mut reader = crate::PagedStoreReader::open(&path).unwrap();
        assert_eq!(reader.num_clusters(), store.num_clusters());
        assert_eq!(reader.cluster_sizes(), store.cluster_sizes());
        assert_eq!(reader.len(), store.len());
        assert_eq!(reader.generation(), store.generation());
        // Individual shard sections decode to the same bytes the store
        // would serialize.
        let shard = reader.load_shard(2).unwrap();
        assert_eq!(shard.to_bytes(), store.shard(2).to_bytes());
        assert!(reader.load_shard(99).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_snapshot_leaves_previous_generation_loadable() {
        let (corpus, mut store) = store();
        let path = std::env::temp_dir().join("hermes_paged_atomic.hpgs");
        store.save(&path).unwrap();

        // A crash mid-snapshot leaves a half-written `.tmp` sibling; the
        // published image must stay untouched and loadable.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        std::fs::write(&tmp, b"half-written snapshot junk").unwrap();
        let loaded = ClusteredStore::load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());

        // A completed save atomically replaces the image (and consumes
        // the tmp sibling).
        let v = corpus.embeddings().row(0).to_vec();
        store.insert(88_888, &v).unwrap();
        store.save(&path).unwrap();
        assert!(!std::path::Path::new(&tmp).exists());
        let newer = ClusteredStore::load(&path).unwrap();
        assert_eq!(newer.len(), store.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inserts_survive_persistence() {
        let (_, mut store) = store();
        let mut v = store.split_centroid(1).to_vec();
        hermes_math::distance::normalize(&mut v);
        hermes_math::distance::scale(&mut v, 2.0);
        store.insert(77_777, &v).unwrap();
        let loaded = ClusteredStore::from_bytes(&store.to_bytes()).unwrap();
        let out = loaded.hierarchical_search(&v).unwrap();
        assert!(out.hits.iter().any(|n| n.id == 77_777));
    }
}
