//! The Hermes core: datastore disaggregation and hierarchical search
//! (paper Section 4).
//!
//! Hermes replaces a single monolithic IVF index with a [`ClusteredStore`]
//! of `C` smaller indices, one per K-means document cluster, each sized to
//! hide its search latency under LLM inference. Queries then run the
//! two-phase [`ClusteredStore::hierarchical_search`]:
//!
//! 1. **Sample** — every cluster is probed cheaply (low `nProbe`, k = 1),
//!    retrieving one representative document per cluster.
//! 2. **Rank** — clusters are ordered by their sampled document's
//!    similarity to the query (more faithful than comparing top-level
//!    centroids, the paper's Figure 11 ablation).
//! 3. **Deep search** — only the top `m` clusters are searched in depth
//!    (high `nProbe`).
//! 4. **Rerank** — per-cluster results merge into the global top-k.
//!
//! All four steps run inside one staged query-execution engine
//! ([`exec::Engine`]): **route** ranks the clusters, **scatter** fans the
//! top-`m` deep searches out on the shared work-stealing pool so even a
//! single query uses every core, and **gather** merges per-shard hits in
//! deterministic input order while folding per-stage work into
//! [`exec::SearchStats`]. The [`ClusteredStore`] methods (and the
//! `hermes-rag` baselines built on them) are thin wrappers that execute a
//! [`exec::QueryPlan`] derived from the store's [`HermesConfig`].
//!
//! The module split mirrors the design: [`config`] (Table 2 knobs),
//! [`store`] (splitting + per-cluster indices), [`exec`] (the staged
//! engine and its work accounting), [`search`] (the store-level entry
//! points).

pub mod adaptive;
pub mod config;
pub mod exec;
pub mod persist;
pub mod rebalance;
pub mod search;
pub mod store;

pub use adaptive::{AdaptiveConfig, DepthChoice, Difficulty, DifficultyEstimator};
pub use config::{HermesConfig, Routing, SplitStrategy};
pub use exec::{Engine, QueryPlan, RouteOutcome, SearchStats};
pub use persist::{PagedStoreReader, PersistError, PAGE_SIZE};
pub use rebalance::{RebalanceAction, RebalanceConfig, Rebalancer};
pub use search::{SearchOutcome, SearchPhaseCost};
pub use store::{ClusterInfo, ClusteredStore};

/// Errors from store construction and search.
#[derive(Debug, Clone, PartialEq)]
pub enum HermesError {
    /// Underlying index failure.
    Index(hermes_index::IndexError),
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for HermesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HermesError::Index(e) => write!(f, "index error: {e}"),
            HermesError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for HermesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HermesError::Index(e) => Some(e),
            HermesError::InvalidConfig(_) => None,
        }
    }
}

impl From<hermes_index::IndexError> for HermesError {
    fn from(e: hermes_index::IndexError) -> Self {
        HermesError::Index(e)
    }
}
