//! The clustered, distributed datastore (paper Section 4.1).

use hermes_kmeans::{KMeans, KMeansConfig, SeedSweep};
use hermes_math::Mat;
use hermes_index::{IvfIndex, VectorIndex};

use crate::config::{HermesConfig, SplitStrategy};
use crate::HermesError;

/// Metadata about one cluster shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Cluster index (= node id in a 1:1 placement).
    pub cluster: usize,
    /// Number of *live* documents in the shard (tombstoned rows excluded).
    pub size: usize,
    /// Resident bytes of the shard's IVF index (tombstoned rows still
    /// count until compaction).
    pub memory_bytes: usize,
    /// Tombstoned rows still resident in the shard.
    pub tombstones: usize,
    /// Centroid drift since build (or since the last rebalance touched
    /// this cluster): `‖running − anchor‖ / (‖anchor‖ + ε)`.
    pub drift: f32,
}

/// A datastore split into per-node IVF indices.
///
/// Built with K-means (seed-swept by default) so similar documents land in
/// the same shard; each shard carries its own IVF index over *global*
/// document ids, so per-cluster results merge without translation.
///
/// # Examples
///
/// ```
/// use hermes_core::{ClusteredStore, HermesConfig};
/// use hermes_math::Mat;
///
/// let rows: Vec<Vec<f32>> = (0..300)
///     .map(|i| vec![(i % 3) as f32 * 10.0, (i / 3) as f32 * 0.01])
///     .collect();
/// let data = Mat::from_rows(&rows);
/// let cfg = HermesConfig::new(3).with_clusters_to_search(1);
/// let store = ClusteredStore::build(&data, &cfg)?;
/// assert_eq!(store.num_clusters(), 3);
/// # Ok::<(), hermes_core::HermesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusteredStore {
    config: HermesConfig,
    shards: Vec<IvfIndex>,
    /// *Running* K-means centroid of each shard in the original embedding
    /// space (used by centroid-only routing, insert routing and
    /// diagnostics). Updated in place as documents insert/remove.
    split_centroids: Mat,
    /// Centroid anchors for drift tracking: the split centroids as of
    /// build time, re-anchored per cluster whenever a rebalance step
    /// rebuilds that cluster.
    anchor_centroids: Mat,
    /// Live documents per shard (tombstoned rows excluded).
    sizes: Vec<usize>,
    /// Winning seed of the imbalance sweep (equals `config.seed` when no
    /// sweep ran).
    chosen_seed: u64,
    /// Rebalance generation: 0 at build, +1 per applied split/merge
    /// step. The serving layer swaps whole-store generations atomically
    /// (see `hermes-serve`'s `GenerationCell`).
    generation: u64,
}

impl ClusteredStore {
    /// Splits `data` into `config.num_clusters` shards and builds one IVF
    /// index per shard, with implicit global ids `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] for inconsistent configs and
    /// [`HermesError::Index`] if any shard fails to build (e.g. empty
    /// data).
    pub fn build(data: &Mat, config: &HermesConfig) -> Result<Self, HermesError> {
        config.validate()?;
        if data.rows() == 0 {
            return Err(HermesError::Index(hermes_index::IndexError::Empty));
        }
        let c = config.num_clusters.min(data.rows());

        // --- Step 1: dataset disaggregation. ---
        let (assignments, split_centroids, chosen_seed) = match config.split {
            SplitStrategy::KMeansSweep {
                seeds,
                sample_fraction,
            } => {
                let sweep = SeedSweep::new(
                    KMeansConfig::new(c).with_seed(config.seed),
                    seeds,
                )
                .with_subsample(sample_fraction, config.seed);
                let result = sweep.run(data);
                // Warm-start the full-data refinement from the winning
                // subsample centroids so the sweep's low imbalance
                // transfers to the full split (Section 4.1).
                let model = KMeans::train_from_centroids(
                    data,
                    result.best_centroids,
                    &KMeansConfig::new(c).with_seed(result.best_seed),
                );
                (
                    model.assignments().to_vec(),
                    model.centroids().clone(),
                    result.best_seed,
                )
            }
            SplitStrategy::KMeansSingle => {
                let model = KMeans::train(data, &KMeansConfig::new(c).with_seed(config.seed));
                (
                    model.assignments().to_vec(),
                    model.centroids().clone(),
                    config.seed,
                )
            }
            SplitStrategy::RoundRobin => {
                let assignments: Vec<u32> = (0..data.rows()).map(|i| (i % c) as u32).collect();
                let centroids = mean_per_cluster(data, &assignments, c);
                (assignments, centroids, config.seed)
            }
        };

        // --- Step 2: one IVF index per shard over global ids. ---
        let mut shard_rows: Vec<Vec<Vec<f32>>> = vec![Vec::new(); c];
        let mut shard_ids: Vec<Vec<u64>> = vec![Vec::new(); c];
        for (i, row) in data.iter_rows().enumerate() {
            let s = assignments[i] as usize;
            shard_rows[s].push(row.to_vec());
            shard_ids[s].push(i as u64);
        }

        let mut shards = Vec::with_capacity(c);
        let mut sizes = Vec::with_capacity(c);
        for (s, (rows, ids)) in shard_rows.into_iter().zip(shard_ids).enumerate() {
            // K-means can leave a shard empty on degenerate data; keep a
            // sentinel one-vector shard so cluster indices stay aligned.
            let (rows, ids) = if rows.is_empty() {
                (vec![split_centroids.row(s).to_vec()], vec![u64::MAX])
            } else {
                (rows, ids)
            };
            sizes.push(ids.len());
            let shard_data = Mat::from_rows(&rows);
            let index = IvfIndex::builder()
                .codec(config.codec)
                .metric(config.metric)
                .seed(hermes_math::rng::derive_seed(config.seed, s as u64))
                .build_with_ids(&shard_data, ids)?;
            shards.push(index);
        }

        Ok(ClusteredStore {
            config: *config,
            shards,
            anchor_centroids: split_centroids.clone(),
            split_centroids,
            sizes,
            chosen_seed,
            generation: 0,
        })
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &HermesConfig {
        &self.config
    }

    /// Number of cluster shards.
    pub fn num_clusters(&self) -> usize {
        self.shards.len()
    }

    /// Documents per shard.
    pub fn cluster_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Max/min shard-size ratio — the paper's imbalance proxy.
    pub fn imbalance(&self) -> f64 {
        hermes_math::stats::imbalance_ratio(&self.sizes).unwrap_or(f64::INFINITY)
    }

    /// The seed chosen by the imbalance sweep.
    pub fn chosen_seed(&self) -> u64 {
        self.chosen_seed
    }

    /// Borrow one shard's index.
    ///
    /// # Panics
    ///
    /// Panics if `cluster >= num_clusters()`.
    pub fn shard(&self, cluster: usize) -> &IvfIndex {
        &self.shards[cluster]
    }

    /// The split centroid of one shard.
    pub fn split_centroid(&self, cluster: usize) -> &[f32] {
        self.split_centroids.row(cluster)
    }

    /// The full split-centroid table.
    pub fn split_centroids_mat(&self) -> &Mat {
        &self.split_centroids
    }

    /// Reassembles a store from legacy persisted parts (see `persist`):
    /// drift anchors reset to the current centroids and the generation
    /// to 0, since the monolithic v1 format does not carry them.
    pub(crate) fn from_parts(
        config: HermesConfig,
        shards: Vec<IvfIndex>,
        split_centroids: Mat,
        sizes: Vec<usize>,
        chosen_seed: u64,
    ) -> Self {
        ClusteredStore {
            config,
            shards,
            anchor_centroids: split_centroids.clone(),
            split_centroids,
            sizes,
            chosen_seed,
            generation: 0,
        }
    }

    /// Reassembles a store with full mutable-state metadata (paged
    /// persistence, rebalancer).
    pub(crate) fn from_parts_full(
        config: HermesConfig,
        shards: Vec<IvfIndex>,
        split_centroids: Mat,
        anchor_centroids: Mat,
        sizes: Vec<usize>,
        chosen_seed: u64,
        generation: u64,
    ) -> Self {
        ClusteredStore {
            config,
            shards,
            split_centroids,
            anchor_centroids,
            sizes,
            chosen_seed,
            generation,
        }
    }

    /// Rebalance generation (0 at build, +1 per applied split/merge).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The drift anchor of one cluster (the centroid as of build or the
    /// last rebalance step that touched the cluster).
    pub fn anchor_centroid(&self, cluster: usize) -> &[f32] {
        self.anchor_centroids.row(cluster)
    }

    /// Per-cluster centroid drift since its anchor:
    /// `‖running − anchor‖ / (‖anchor‖ + ε)`.
    pub fn cluster_drift(&self) -> Vec<f32> {
        (0..self.num_clusters())
            .map(|c| {
                let delta = hermes_math::distance::l2_sq(
                    self.split_centroids.row(c),
                    self.anchor_centroids.row(c),
                )
                .sqrt();
                let base =
                    hermes_math::distance::norm(self.anchor_centroids.row(c)) + f32::EPSILON;
                delta / base
            })
            .collect()
    }

    /// Inserts a new document online: routes it to the cluster with the
    /// nearest (running) split centroid, streams it into that shard's
    /// IVF index and folds it into the running centroid. Returns the
    /// chosen cluster.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::Index`] on dimension mismatch.
    pub fn insert(&mut self, id: u64, v: &[f32]) -> Result<usize, HermesError> {
        let dim = self.split_centroids.cols();
        if v.len() != dim {
            return Err(HermesError::Index(
                hermes_index::IndexError::DimensionMismatch {
                    expected: dim,
                    got: v.len(),
                },
            ));
        }
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..self.num_clusters() {
            let d = hermes_math::distance::l2_sq(self.split_centroids.row(c), v);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        self.shards[best].add(id, v)?;
        self.sizes[best] += 1;
        hermes_kmeans::running_update(self.split_centroids.row_mut(best), v, self.sizes[best]);
        Ok(best)
    }

    /// Removes a document by global id: tombstones it in whichever shard
    /// holds it and removes its contribution from that cluster's running
    /// centroid (using the decoded stored vector — deterministic, and
    /// exact for lossless codecs). Returns the cluster it lived in, or
    /// `None` if no live document carries `id`.
    pub fn remove(&mut self, id: u64) -> Option<usize> {
        for c in 0..self.num_clusters() {
            if let Some(v) = self.shards[c].reconstruct(id) {
                let removed = self.shards[c].remove(id);
                debug_assert!(removed, "reconstructible rows are removable");
                self.sizes[c] -= 1;
                hermes_kmeans::running_downdate(
                    self.split_centroids.row_mut(c),
                    &v,
                    self.sizes[c],
                );
                return Some(c);
            }
        }
        None
    }

    /// Tombstoned rows still resident across all shards.
    pub fn tombstones(&self) -> usize {
        self.shards.iter().map(VectorIndex::tombstones).sum()
    }

    /// Compacts every shard in place (dense storage, tombstones
    /// reclaimed). Search-equivalent bit for bit — see
    /// [`hermes_index::VectorIndex::compact`].
    pub fn compact(&mut self) {
        for shard in self.shards.iter_mut() {
            shard.compact();
        }
    }

    /// Per-cluster metadata (live size, memory, tombstones, drift).
    pub fn cluster_infos(&self) -> Vec<ClusterInfo> {
        let drift = self.cluster_drift();
        self.shards
            .iter()
            .enumerate()
            .map(|(cluster, shard)| ClusterInfo {
                cluster,
                size: self.sizes[cluster],
                memory_bytes: shard.memory_bytes(),
                tombstones: shard.tombstones(),
                drift: drift[cluster],
            })
            .collect()
    }

    /// Total resident bytes across shards (tombstoned rows included
    /// until compaction).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(VectorIndex::memory_bytes).sum()
    }

    /// Total live documents stored.
    pub fn len(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Whether the store holds no live documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn mean_per_cluster(data: &Mat, assignments: &[u32], c: usize) -> Mat {
    let mut sums = Mat::zeros(c, data.cols());
    let mut counts = vec![0usize; c];
    for (i, row) in data.iter_rows().enumerate() {
        let s = assignments[i] as usize;
        hermes_math::distance::add_assign(sums.row_mut(s), row);
        counts[s] += 1;
    }
    for (s, &count) in counts.iter().enumerate() {
        if count > 0 {
            hermes_math::distance::scale(sums.row_mut(s), 1.0 / count as f32);
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_datagen::{Corpus, CorpusSpec};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusSpec::new(600, 16, 6).with_seed(1))
    }

    #[test]
    fn build_produces_requested_clusters() {
        let c = corpus();
        let cfg = HermesConfig::new(6).with_seed(3);
        let store = ClusteredStore::build(c.embeddings(), &cfg).unwrap();
        assert_eq!(store.num_clusters(), 6);
        assert_eq!(store.len(), 600);
    }

    #[test]
    fn kmeans_split_groups_topics_together() {
        let c = corpus();
        let cfg = HermesConfig::new(6).with_seed(3);
        let store = ClusteredStore::build(c.embeddings(), &cfg).unwrap();
        // With crisp topics, clusters should be much purer than random:
        // measure the average dominant-topic share per shard by checking
        // where each document's id landed.
        // Reconstruct shard membership: search each document in every
        // shard and see which contains it.
        let mut shard_of = vec![0usize; 600];
        for (doc, row) in c.embeddings().iter_rows().enumerate() {
            let mut found = None;
            for cl in 0..store.num_clusters() {
                let hits = store
                    .shard(cl)
                    .search(
                        row,
                        1,
                        &hermes_index::SearchParams::new().with_nprobe(64),
                    )
                    .unwrap();
                if hits.first().map(|h| h.id) == Some(doc as u64) {
                    found = Some(cl);
                    break;
                }
            }
            shard_of[doc] = found.unwrap_or(usize::MAX);
        }
        let mut purity_num = 0usize;
        for cl in 0..store.num_clusters() {
            let members: Vec<usize> = (0..600).filter(|&d| shard_of[d] == cl).collect();
            if members.is_empty() {
                continue;
            }
            let mut counts = std::collections::HashMap::new();
            for &m in &members {
                *counts.entry(c.topic_of()[m]).or_insert(0usize) += 1;
            }
            purity_num += counts.values().max().copied().unwrap_or(0);
        }
        let purity = purity_num as f64 / 600.0;
        assert!(purity > 0.8, "cluster purity {purity}");
    }

    #[test]
    fn round_robin_split_is_perfectly_balanced() {
        let c = corpus();
        let cfg = HermesConfig::new(6)
            .with_seed(3)
            .with_split(SplitStrategy::RoundRobin);
        let store = ClusteredStore::build(c.embeddings(), &cfg).unwrap();
        assert_eq!(store.imbalance(), 1.0);
    }

    #[test]
    fn seed_sweep_does_not_worsen_imbalance() {
        let c = corpus();
        let single = ClusteredStore::build(
            c.embeddings(),
            &HermesConfig::new(6)
                .with_seed(3)
                .with_split(SplitStrategy::KMeansSingle),
        )
        .unwrap();
        let swept = ClusteredStore::build(
            c.embeddings(),
            &HermesConfig::new(6).with_seed(3).with_split(
                SplitStrategy::KMeansSweep {
                    seeds: 6,
                    sample_fraction: 0.5,
                },
            ),
        )
        .unwrap();
        assert!(swept.imbalance() <= single.imbalance() * 1.5);
    }

    #[test]
    fn cluster_infos_align_with_sizes() {
        let c = corpus();
        let store =
            ClusteredStore::build(c.embeddings(), &HermesConfig::new(4).with_seed(5)).unwrap();
        let infos = store.cluster_infos();
        assert_eq!(infos.len(), 4);
        for info in &infos {
            assert_eq!(info.size, store.cluster_sizes()[info.cluster]);
            assert!(info.memory_bytes > 0);
        }
        assert_eq!(store.memory_bytes(), infos.iter().map(|i| i.memory_bytes).sum());
    }

    #[test]
    fn empty_data_rejected() {
        let err = ClusteredStore::build(
            &Mat::zeros(0, 4),
            &HermesConfig::new(2).with_clusters_to_search(1),
        )
        .unwrap_err();
        assert!(matches!(err, HermesError::Index(_)));
    }

    #[test]
    fn invalid_config_rejected_before_building() {
        let c = corpus();
        let err = ClusteredStore::build(
            c.embeddings(),
            &HermesConfig::new(2).with_clusters_to_search(3),
        )
        .unwrap_err();
        assert!(matches!(err, HermesError::InvalidConfig(_)));
    }
}
