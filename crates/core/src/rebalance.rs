//! Incremental live rebalancing of the clustered store.
//!
//! Online mutation erodes the properties the offline K-means split paid
//! for: inserts concentrated on a few topics inflate some shards
//! (imbalance ratio climbs, tail latency with it — paper Section 4.1),
//! and sustained churn drags a shard's *running* centroid away from the
//! anchor it was built around, degrading both centroid routing and the
//! shard's own coarse quantizer.
//!
//! The [`Rebalancer`] repairs this **one cluster at a time** instead of
//! pausing the world for a full rebuild:
//!
//! * [`Rebalancer::next_action`] inspects live metrics (size imbalance,
//!   per-cluster drift) and proposes at most one [`RebalanceAction`] —
//!   split the offending cluster in two, or merge a dwarf cluster into
//!   its nearest neighbour.
//! * [`Rebalancer::apply`] executes the action *functionally*: it clones
//!   shard handles, rebuilds only the touched cluster(s) and returns a
//!   new [`ClusteredStore`] with `generation() + 1`. The caller (see
//!   `hermes-serve`'s `GenerationCell`) keeps answering queries from the
//!   old generation and swaps atomically when the step completes.
//! * [`Rebalancer::rebuild`] is the stop-the-world reference: it just
//!   applies steps until quiescence. Because every step is a pure,
//!   deterministic function of the store state, an incremental
//!   rebalance interleaved with serving reaches **bit-identical** stores
//!   at every generation boundary — the equivalence the test suite pins.
//!
//! Every action re-anchors the touched clusters' drift baselines and
//! keeps `config.num_clusters` / `clusters_to_search` consistent with
//! the live cluster count.

use hermes_kmeans::{KMeans, KMeansConfig};
use hermes_math::rng::derive_seed;
use hermes_math::Mat;
use hermes_index::{IvfIndex, VectorIndex};

use crate::store::ClusteredStore;
use crate::HermesError;

/// Thresholds that trigger a rebalance step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Max tolerated `max/min` live-size ratio before the store is
    /// considered imbalanced (the paper's imbalance proxy).
    pub max_imbalance: f64,
    /// Max tolerated per-cluster centroid drift
    /// (`‖running − anchor‖ / (‖anchor‖ + ε)`) before the cluster is
    /// split and re-anchored.
    pub max_drift: f32,
    /// Clusters below `mean / merge_ratio` live documents are merged
    /// into their nearest neighbour when the store is imbalanced.
    pub merge_ratio: f64,
    /// Safety valve for [`Rebalancer::rebuild`]: stop after this many
    /// steps even if thresholds are still exceeded (degenerate data can
    /// make split/merge oscillate).
    pub max_steps: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_imbalance: 4.0,
            max_drift: 0.5,
            merge_ratio: 2.0,
            max_steps: 32,
        }
    }
}

/// One rebalance step: touches at most two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Re-cluster `cluster`'s live rows with K-means (k = 2); the first
    /// half replaces the cluster in place, the second half becomes a new
    /// cluster appended at the end.
    Split {
        /// Cluster to split.
        cluster: usize,
    },
    /// Move every live row of `from` into `into`, then drop `from`
    /// (clusters above `from` shift down by one).
    Merge {
        /// Dwarf cluster to dissolve.
        from: usize,
        /// Receiving cluster (nearest centroid), indexed *before* the
        /// removal of `from`.
        into: usize,
    },
}

/// Policy + mechanism for incremental split/merge rebalancing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rebalancer {
    config: RebalanceConfig,
}

impl Rebalancer {
    /// A rebalancer with the given thresholds.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer { config }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// Proposes the next step for `store`, or `None` when the store is
    /// within thresholds. Deterministic: recomputed from live state, so
    /// repeated application is a stop-the-world rebuild.
    pub fn next_action(&self, store: &ClusteredStore) -> Option<RebalanceAction> {
        let sizes = store.cluster_sizes();
        let n = sizes.len();
        if n == 0 {
            return None;
        }
        let total: usize = sizes.iter().sum();
        let mean = total as f64 / n as f64;

        // Drift beats imbalance: a drifted cluster is answering queries
        // with a stale coarse quantizer even if sizes look fine.
        let drifted = store
            .cluster_drift()
            .into_iter()
            .enumerate()
            .filter(|&(c, d)| d > self.config.max_drift && sizes[c] >= 4)
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        if let Some((cluster, _)) = drifted {
            return Some(RebalanceAction::Split { cluster });
        }

        if store.imbalance() <= self.config.max_imbalance || n < 2 {
            return None;
        }
        let largest = argmax(sizes);
        let smallest = argmin(sizes);
        // Imbalance driven by a dwarf cluster: dissolve it into its
        // nearest neighbour. Driven by a giant: split the giant.
        if (sizes[smallest] as f64) * self.config.merge_ratio < mean {
            let into = nearest_other_centroid(store, smallest);
            return Some(RebalanceAction::Merge {
                from: smallest,
                into,
            });
        }
        if sizes[largest] >= 4 {
            return Some(RebalanceAction::Split { cluster: largest });
        }
        None
    }

    /// Executes one action, returning the next-generation store. The
    /// input store is untouched — serve from it until the swap.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::Index`] if a touched shard fails to
    /// rebuild.
    pub fn apply(
        &self,
        store: &ClusteredStore,
        action: RebalanceAction,
    ) -> Result<ClusteredStore, HermesError> {
        match action {
            RebalanceAction::Split { cluster } => split_cluster(store, cluster),
            RebalanceAction::Merge { from, into } => merge_clusters(store, from, into),
        }
    }

    /// Proposes and executes one step, or returns `None` at quiescence.
    ///
    /// # Errors
    ///
    /// Propagates [`Rebalancer::apply`] failures.
    pub fn step(&self, store: &ClusteredStore) -> Option<Result<ClusteredStore, HermesError>> {
        self.next_action(store).map(|a| self.apply(store, a))
    }

    /// Stop-the-world reference: applies steps until quiescence (or the
    /// `max_steps` safety valve). Returns the final store and the number
    /// of steps taken.
    ///
    /// # Errors
    ///
    /// Propagates [`Rebalancer::apply`] failures.
    pub fn rebuild(
        &self,
        store: &ClusteredStore,
    ) -> Result<(ClusteredStore, usize), HermesError> {
        let mut current = store.clone();
        let mut steps = 0;
        while steps < self.config.max_steps {
            match self.step(&current) {
                Some(next) => {
                    current = next?;
                    steps += 1;
                }
                None => break,
            }
        }
        Ok((current, steps))
    }
}

fn argmax(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn argmin(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// The other cluster whose running centroid is closest to `from`'s.
fn nearest_other_centroid(store: &ClusteredStore, from: usize) -> usize {
    let mut best = usize::MAX;
    let mut best_d = f32::INFINITY;
    for c in 0..store.num_clusters() {
        if c == from {
            continue;
        }
        let d = hermes_math::distance::l2_sq(store.split_centroid(c), store.split_centroid(from));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Clones the store's per-cluster state into mutable working vectors.
fn working_state(store: &ClusteredStore) -> (Vec<IvfIndex>, Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<usize>) {
    let n = store.num_clusters();
    let shards = (0..n).map(|c| store.shard(c).clone()).collect();
    let centroids = (0..n).map(|c| store.split_centroid(c).to_vec()).collect();
    let anchors = (0..n).map(|c| store.anchor_centroid(c).to_vec()).collect();
    let sizes = store.cluster_sizes().to_vec();
    (shards, centroids, anchors, sizes)
}

fn assemble(
    store: &ClusteredStore,
    shards: Vec<IvfIndex>,
    centroids: Vec<Vec<f32>>,
    anchors: Vec<Vec<f32>>,
    sizes: Vec<usize>,
) -> ClusteredStore {
    let n = shards.len();
    let mut config = *store.config();
    config.num_clusters = n;
    config.clusters_to_search = config.clusters_to_search.min(n).max(1);
    ClusteredStore::from_parts_full(
        config,
        shards,
        Mat::from_rows(&centroids),
        Mat::from_rows(&anchors),
        sizes,
        store.chosen_seed(),
        store.generation() + 1,
    )
}

/// Seed for the K-means and shard builds of one step: derived from the
/// store's chosen seed, the generation being produced and the touched
/// cluster, so replays are exact.
fn step_seed(store: &ClusteredStore, cluster: usize) -> u64 {
    derive_seed(
        derive_seed(store.chosen_seed(), store.generation() + 1),
        cluster as u64,
    )
}

fn split_cluster(store: &ClusteredStore, cluster: usize) -> Result<ClusteredStore, HermesError> {
    let (mut shards, mut centroids, mut anchors, mut sizes) = working_state(store);
    let rows = store.shard(cluster).export_live();
    let seed = step_seed(store, cluster);

    let data = Mat::from_rows(&rows.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>());
    let model = KMeans::train(&data, &KMeansConfig::new(2).with_seed(seed));
    let mut halves: [Vec<(u64, Vec<f32>)>; 2] = [Vec::new(), Vec::new()];
    for (i, (id, v)) in rows.into_iter().enumerate() {
        halves[model.assignments()[i] as usize].push((id, v));
    }
    // K-means can collapse to one side on degenerate data; fall back to
    // a deterministic even/odd interleave so the split still halves.
    if halves[0].is_empty() || halves[1].is_empty() {
        let [mut a, mut b] = halves;
        let all: Vec<(u64, Vec<f32>)> = a.drain(..).chain(b.drain(..)).collect();
        halves = [a, b];
        for (i, row) in all.into_iter().enumerate() {
            halves[i % 2].push(row);
        }
    }

    let mut built = halves.into_iter().enumerate().map(|(h, half)| {
        let ids: Vec<u64> = half.iter().map(|(id, _)| *id).collect();
        let vecs: Vec<Vec<f32>> = half.into_iter().map(|(_, v)| v).collect();
        let centroid = mean_of(&vecs);
        let index = IvfIndex::builder()
            .codec(store.config().codec)
            .metric(store.config().metric)
            .seed(derive_seed(seed, h as u64))
            .build_with_ids(&Mat::from_rows(&vecs), ids)
            .map_err(HermesError::Index)?;
        Ok::<_, HermesError>((index, centroid))
    });

    let (index_a, centroid_a) = built.next().unwrap()?;
    let (index_b, centroid_b) = built.next().unwrap()?;

    sizes[cluster] = index_a.len();
    shards[cluster] = index_a;
    centroids[cluster] = centroid_a.clone();
    anchors[cluster] = centroid_a;

    sizes.push(index_b.len());
    shards.push(index_b);
    centroids.push(centroid_b.clone());
    anchors.push(centroid_b);

    Ok(assemble(store, shards, centroids, anchors, sizes))
}

fn merge_clusters(
    store: &ClusteredStore,
    from: usize,
    into: usize,
) -> Result<ClusteredStore, HermesError> {
    let (mut shards, mut centroids, mut anchors, mut sizes) = working_state(store);
    for (id, v) in store.shard(from).export_live() {
        shards[into].add(id, &v).map_err(HermesError::Index)?;
        sizes[into] += 1;
        hermes_kmeans::running_update(&mut centroids[into], &v, sizes[into]);
    }
    // The receiving cluster absorbed a whole shard: re-anchor its drift
    // baseline to the merged centroid.
    anchors[into] = centroids[into].clone();

    shards.remove(from);
    centroids.remove(from);
    anchors.remove(from);
    sizes.remove(from);

    Ok(assemble(store, shards, centroids, anchors, sizes))
}

/// Column-wise mean of non-empty `rows`.
fn mean_of(rows: &[Vec<f32>]) -> Vec<f32> {
    let mut mean = vec![0.0f32; rows[0].len()];
    for (i, row) in rows.iter().enumerate() {
        hermes_kmeans::running_update(&mut mean, row, i + 1);
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HermesConfig;
    use hermes_datagen::{Corpus, CorpusSpec};

    fn store(n: usize, clusters: usize) -> ClusteredStore {
        let corpus = Corpus::generate(CorpusSpec::new(n, 10, clusters).with_seed(91));
        let cfg = HermesConfig::new(clusters)
            .with_clusters_to_search(2)
            .with_seed(92);
        ClusteredStore::build(corpus.embeddings(), &cfg).unwrap()
    }

    #[test]
    fn balanced_store_is_quiescent() {
        let s = store(600, 4);
        let r = Rebalancer::default();
        assert!(s.imbalance() <= r.config().max_imbalance);
        assert_eq!(r.next_action(&s), None);
    }

    #[test]
    fn skewed_inserts_trigger_a_split_that_lowers_imbalance() {
        let mut s = store(600, 4);
        // Pile topical inserts onto whichever cluster owns this vector.
        let v: Vec<f32> = s.split_centroid(0).to_vec();
        let before = s.imbalance();
        for i in 0..900 {
            s.insert(10_000 + i, &v).unwrap();
        }
        assert!(s.imbalance() > before);
        let r = Rebalancer::new(RebalanceConfig {
            max_imbalance: 2.0,
            max_drift: f32::INFINITY,
            ..RebalanceConfig::default()
        });
        let action = r.next_action(&s).expect("skew should trigger");
        let next = r.apply(&s, action).unwrap();
        assert_eq!(next.generation(), s.generation() + 1);
        assert_eq!(next.len(), s.len(), "rebalance moves rows, never drops them");
        match action {
            RebalanceAction::Split { .. } => {
                assert_eq!(next.num_clusters(), s.num_clusters() + 1)
            }
            RebalanceAction::Merge { .. } => {
                assert_eq!(next.num_clusters(), s.num_clusters() - 1)
            }
        }
    }

    #[test]
    fn rebuild_reaches_quiescence_and_preserves_every_live_row() {
        let mut s = store(400, 4);
        let v: Vec<f32> = s.split_centroid(1).to_vec();
        for i in 0..600 {
            s.insert(20_000 + i, &v).unwrap();
        }
        let r = Rebalancer::new(RebalanceConfig {
            max_imbalance: 2.5,
            ..RebalanceConfig::default()
        });
        let (rebuilt, steps) = r.rebuild(&s).unwrap();
        assert!(steps > 0);
        assert_eq!(rebuilt.generation(), s.generation() + steps as u64);
        assert_eq!(rebuilt.len(), s.len());
        if steps < r.config().max_steps {
            assert_eq!(r.next_action(&rebuilt), None, "rebuild ends quiescent");
        }
        // Every live id survives, exactly once.
        let mut ids: Vec<u64> = (0..rebuilt.num_clusters())
            .flat_map(|c| rebuilt.shard(c).export_live().into_iter().map(|(id, _)| id))
            .collect();
        ids.sort_unstable();
        let mut expected: Vec<u64> = (0..rebuilt.num_clusters())
            .flat_map(|_| Vec::new())
            .collect();
        expected.extend((0..400u64).collect::<Vec<_>>());
        expected.extend((20_000..20_600u64).collect::<Vec<_>>());
        expected.sort_unstable();
        assert_eq!(ids, expected);
        // Config stays consistent with the live cluster count.
        assert_eq!(rebuilt.config().num_clusters, rebuilt.num_clusters());
        assert!(rebuilt.config().clusters_to_search <= rebuilt.num_clusters());
    }

    #[test]
    fn drift_triggers_a_split_and_reanchors() {
        let mut s = store(400, 4);
        // Drag cluster 0's running centroid far from its anchor with
        // inserts at a displaced location.
        let mut v: Vec<f32> = s.split_centroid(0).to_vec();
        for x in v.iter_mut() {
            *x += 50.0;
        }
        for i in 0..400 {
            s.insert(30_000 + i, &v).unwrap();
        }
        let drifts = s.cluster_drift();
        let r = Rebalancer::new(RebalanceConfig {
            max_imbalance: f64::INFINITY,
            max_drift: 0.25,
            ..RebalanceConfig::default()
        });
        assert!(
            drifts.iter().any(|&d| d > 0.25),
            "churn should register as drift, got {drifts:?}"
        );
        let action = r.next_action(&s).expect("drift should trigger");
        assert!(matches!(action, RebalanceAction::Split { .. }));
        let next = r.apply(&s, action).unwrap();
        // Touched clusters are re-anchored: their drift reads ~0.
        let d2 = next.cluster_drift();
        if let RebalanceAction::Split { cluster } = action {
            assert!(d2[cluster] < 1e-3, "split re-anchors, got {}", d2[cluster]);
            assert!(d2[next.num_clusters() - 1] < 1e-3);
        }
    }

    #[test]
    fn apply_is_deterministic_and_pure() {
        let mut s = store(300, 3);
        let v: Vec<f32> = s.split_centroid(0).to_vec();
        for i in 0..500 {
            s.insert(40_000 + i, &v).unwrap();
        }
        let r = Rebalancer::new(RebalanceConfig {
            max_imbalance: 2.0,
            ..RebalanceConfig::default()
        });
        let action = r.next_action(&s).unwrap();
        let a = r.apply(&s, action).unwrap();
        let b = r.apply(&s, action).unwrap();
        // Same action on the same input → bit-identical stores.
        assert_eq!(a.to_bytes(), b.to_bytes());
        // And the input store is untouched.
        assert_eq!(s.generation(), 0);
    }
}
