//! The staged scatter–gather query-execution engine.
//!
//! Every search path in the workspace — [`ClusteredStore::route`],
//! [`ClusteredStore::hierarchical_search`] and its batch variant,
//! [`ClusteredStore::search_all_clusters`],
//! [`ClusteredStore::access_histogram`], and the `hermes-rag` baseline
//! retrievers — is a thin wrapper over one [`Engine`] executing one
//! [`QueryPlan`]. The engine runs the paper's sample → rank → deep →
//! rerank pipeline (Section 4.2) as three explicit stages:
//!
//! ```text
//!            ┌─────────────────────────────────────────────────┐
//!   query ──▶│ ROUTE    sample every shard (or score its       │
//!            │          centroid), rank best-first             │
//!            ├─────────────────────────────────────────────────┤
//!            │ SCATTER  deep-search the top-m shards; the m    │
//!            │          tasks fan out on hermes_pool::Pool     │
//!            │          (intra-query parallelism)              │
//!            ├─────────────────────────────────────────────────┤
//!            │ GATHER   merge_topk over per-shard hits in      │
//!            │          deterministic input order; fold the    │
//!            │          per-stage ScanStats into SearchStats   │
//!            └─────────────────────────────────────────────────┘
//! ```
//!
//! Two levels of parallelism compose:
//!
//! * **Inter-query** — batch entry points steal whole queries from the
//!   shared pool cursor (`threads` caps the width; `0` = full pool,
//!   `1` = inline sequential).
//! * **Intra-query** — within one query, the route stage's per-shard
//!   samples and the scatter stage's m deep searches fan out on the same
//!   pool ([`QueryPlan::scatter_threads`]). Inside a batch the pool's
//!   nested-submission rule makes these inner fan-outs run inline on the
//!   worker, so batches keep exactly one level of stealing; a single
//!   interactive query gets the full pool to itself — the single-request
//!   latency the paper's serving story needs.
//!
//! Results are **bit-identical** to the sequential pre-engine loops for
//! every routing mode, codec and thread count: tasks write results into
//! their input-order slot, costs are integer sums over the same scans,
//! and the first error in input order is the one reported
//! (`tests/engine_equivalence.rs` pins all of this property-style).
//!
//! Work accounting is recorded *as the stages run*: shard searches
//! return [`hermes_index::ScanStats`] from the scan itself, so nothing
//! re-walks a coarse quantizer after the fact (the old `probe_cost`
//! double scan).
//!
//! When runtime telemetry is on (`hermes_trace::enable`), each stage
//! additionally records a span — `engine.execute` ▸ `engine.route` /
//! `engine.scatter` / `engine.gather`, plus per-shard `shard.sample` and
//! `shard.deep` spans on whichever pool worker stole the shard — whose
//! args carry the same scanned-code counts as [`SearchStats`]. Disabled,
//! every site is a single relaxed atomic load.

use hermes_index::{ScanStats, SearchParams, VectorIndex};
use hermes_trace::names;
use hermes_math::{topk::merge_topk, Neighbor};

use crate::adaptive::{AdaptiveConfig, DifficultyEstimator};
use crate::config::{HermesConfig, Routing};
use crate::search::{SearchOutcome, SearchPhaseCost};
use crate::store::ClusteredStore;
use crate::HermesError;

/// Per-stage work record of one executed query, filled in by the engine
/// while the stages run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Route-stage work: sampling probes (document-sampling routing) or
    /// one code per cluster (centroid routing); zero when unranked.
    pub route: SearchPhaseCost,
    /// Scatter-stage work, summed over the deep-searched shards.
    pub deep: SearchPhaseCost,
    /// Codes scanned by each deep-searched shard, aligned with
    /// `SearchOutcome::searched_clusters` — the input for per-shard
    /// deadline and straggler analyses.
    pub per_shard_scanned: Vec<usize>,
    /// Candidate hits the gather stage merged into the final top-k.
    pub gather_candidates: usize,
    /// Deep-search `nProbe` this query actually ran with — the plan's
    /// fixed knob, or the [`DifficultyEstimator`]'s per-query choice when
    /// the plan carries an [`AdaptiveConfig`]. Together with
    /// `deep.clusters_touched` this records the chosen adaptive depth.
    pub deep_nprobe: usize,
}

impl SearchStats {
    /// Codes scanned across all stages — the single work number the
    /// latency/energy models consume.
    pub fn total_scanned_codes(&self) -> usize {
        self.route.scanned_codes + self.deep.scanned_codes
    }
}

/// An executable description of one search: which stages run, with which
/// knobs — built from [`HermesConfig`] + the caller's intent, consumed by
/// [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// How the route stage ranks clusters.
    pub routing: Routing,
    /// `nProbe` of the route stage's sampling searches.
    pub sample_nprobe: usize,
    /// `nProbe` of the scatter stage's deep searches.
    pub deep_nprobe: usize,
    /// How many top-ranked clusters the scatter stage deep-searches
    /// (clamped to the store's cluster count at execution time).
    pub clusters_to_search: usize,
    /// Hits returned per query.
    pub k: usize,
    /// Intra-query fan-out cap for the route and scatter stages: `0` uses
    /// the full shared pool, `1` runs the shards inline and sequentially,
    /// `t > 1` uses at most `t` threads.
    pub scatter_threads: usize,
    /// Per-query adaptive-depth policy. `None` (the default) runs the
    /// fixed `clusters_to_search`/`deep_nprobe` knobs bit-identically to
    /// the pre-adaptive engine; `Some` lets the [`DifficultyEstimator`]
    /// pick both per query from the routing scores (queries routed
    /// without scores — [`Routing::Unranked`] — still use the fixed
    /// knobs).
    pub adaptive: Option<AdaptiveConfig>,
    /// Serving-layer request id this plan executes on behalf of, if any.
    /// Purely observational: when set, the engine's `engine.execute`
    /// spans carry it as a `request_id` arg so trace events fold into
    /// per-request timelines — execution is bit-identical either way.
    pub request_id: Option<u64>,
}

impl QueryPlan {
    /// The plan [`ClusteredStore::hierarchical_search`] executes: the
    /// config's routing and knobs, full-pool intra-query scatter.
    pub fn from_config(cfg: &HermesConfig) -> Self {
        QueryPlan {
            routing: cfg.routing,
            sample_nprobe: cfg.sample_nprobe,
            deep_nprobe: cfg.deep_nprobe,
            clusters_to_search: cfg.clusters_to_search,
            k: cfg.k,
            scatter_threads: 0,
            adaptive: cfg.adaptive,
            request_id: None,
        }
    }

    /// The plan [`ClusteredStore::search_all_clusters`] executes: no
    /// routing, every cluster deep-searched in index order — the naive
    /// distributed baseline (Figure 18).
    pub fn exhaustive(cfg: &HermesConfig) -> Self {
        QueryPlan {
            routing: Routing::Unranked,
            clusters_to_search: usize::MAX,
            adaptive: None,
            ..QueryPlan::from_config(cfg)
        }
    }

    /// Caps the intra-query fan-out (see [`QueryPlan::scatter_threads`]).
    pub fn with_scatter_threads(mut self, threads: usize) -> Self {
        self.scatter_threads = threads;
        self
    }

    /// Sets (or clears) the per-query adaptive-depth policy.
    pub fn with_adaptive(mut self, adaptive: Option<AdaptiveConfig>) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Tags the plan with the serving-layer request id its spans should
    /// carry (see [`QueryPlan::request_id`]).
    pub fn with_request_id(mut self, id: u64) -> Self {
        self.request_id = Some(id);
        self
    }
}

/// Outcome of the route stage: every cluster ranked best-first, plus the
/// work ranking them took.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// All clusters, best first.
    pub ranked_clusters: Vec<usize>,
    /// Routing score of each ranked cluster, aligned with
    /// `ranked_clusters` — the [`DifficultyEstimator`]'s input and the
    /// semantic cache's bucketing signal. Empty for [`Routing::Unranked`],
    /// which ranks without scoring.
    pub ranked_scores: Vec<f32>,
    /// Route-stage work.
    pub cost: SearchPhaseCost,
}

impl RouteOutcome {
    /// The best-ranked cluster, if any — the semantic cache's bucket key.
    pub fn top_cluster(&self) -> Option<usize> {
        self.ranked_clusters.first().copied()
    }
}

/// Orders `(cluster, score)` pairs best-first: descending score, ties
/// broken by ascending cluster id — the rank stage's deterministic
/// tiebreak, shared by every routing mode.
pub fn rank_by_score(scored: Vec<(usize, f32)>) -> Vec<usize> {
    rank_with_scores(scored).0
}

/// [`rank_by_score`], also returning the scores in rank order.
pub fn rank_with_scores(mut scored: Vec<(usize, f32)>) -> (Vec<usize>, Vec<f32>) {
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.into_iter().unzip()
}

/// The query-execution engine: a [`QueryPlan`] bound to a
/// [`ClusteredStore`]. Cheap to construct (two references' worth of
/// data); build one per call or hold one across a batch.
///
/// # Examples
///
/// ```
/// use hermes_core::{ClusteredStore, HermesConfig};
/// use hermes_core::exec::{Engine, QueryPlan};
/// use hermes_math::Mat;
///
/// let rows: Vec<Vec<f32>> = (0..300)
///     .map(|i| vec![(i % 3) as f32 * 10.0, (i / 3) as f32 * 0.01])
///     .collect();
/// let data = Mat::from_rows(&rows);
/// let cfg = HermesConfig::new(3).with_clusters_to_search(2);
/// let store = ClusteredStore::build(&data, &cfg)?;
///
/// let engine = Engine::new(&store, QueryPlan::from_config(&cfg));
/// let out = engine.execute(&[10.0, 0.5])?;
/// assert_eq!(out.hits.len(), cfg.k);
/// assert_eq!(out.searched_clusters.len(), 2);
/// assert_eq!(out.stats.per_shard_scanned.len(), 2);
/// # Ok::<(), hermes_core::HermesError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Engine<'s> {
    store: &'s ClusteredStore,
    plan: QueryPlan,
}

impl<'s> Engine<'s> {
    /// Binds `plan` to `store`.
    pub fn new(store: &'s ClusteredStore, plan: QueryPlan) -> Self {
        Engine { store, plan }
    }

    /// The engine running the store's configured plan — what every
    /// `ClusteredStore` convenience method constructs.
    pub fn for_store(store: &'s ClusteredStore) -> Self {
        Engine::new(store, QueryPlan::from_config(store.config()))
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// **Stage 1+2 (route):** ranks every cluster for `query` without
    /// deep-searching any. Records an `engine.route` span (args:
    /// `scanned_codes`, `clusters`) when telemetry is enabled.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error in cluster order.
    pub fn route(&self, query: &[f32]) -> Result<RouteOutcome, HermesError> {
        let mut sp = hermes_trace::span(names::ENGINE_ROUTE);
        let out = self.route_stage(query)?;
        sp.arg("scanned_codes", out.cost.scanned_codes as u64);
        sp.arg("clusters", out.cost.clusters_touched as u64);
        Ok(out)
    }

    fn route_stage(&self, query: &[f32]) -> Result<RouteOutcome, HermesError> {
        let store = self.store;
        let n = store.num_clusters();
        match self.plan.routing {
            Routing::DocumentSampling => {
                let params = SearchParams::new().with_nprobe(self.plan.sample_nprobe);
                // One cheap k=1 sample per shard, fanned out like the
                // scatter stage (samples dominate single-query latency
                // when m is small).
                let clusters: Vec<usize> = (0..n).collect();
                let samples = self.fan_out(&clusters, |c| {
                    let mut sp = hermes_trace::span_with(names::SHARD_SAMPLE, &[("cluster", c as u64)]);
                    let (hits, stats) = store.shard(c).search_with_stats(query, 1, &params)?;
                    sp.arg("scanned_codes", stats.scanned_codes as u64);
                    Ok((hits.first().map_or(f32::NEG_INFINITY, |h| h.score), stats))
                })?;
                let scanned = samples.iter().map(|(_, s)| s.scanned_codes).sum();
                let scored = clusters
                    .iter()
                    .map(|&c| (c, samples[c].0))
                    .collect::<Vec<_>>();
                let (ranked_clusters, ranked_scores) = rank_with_scores(scored);
                Ok(RouteOutcome {
                    ranked_clusters,
                    ranked_scores,
                    cost: SearchPhaseCost {
                        scanned_codes: scanned,
                        clusters_touched: n,
                    },
                })
            }
            Routing::CentroidOnly => {
                let metric = store.config().metric;
                let scored: Vec<(usize, f32)> = (0..n)
                    .map(|c| (c, metric.similarity(query, store.split_centroid(c))))
                    .collect();
                let (ranked_clusters, ranked_scores) = rank_with_scores(scored);
                Ok(RouteOutcome {
                    ranked_clusters,
                    ranked_scores,
                    cost: SearchPhaseCost {
                        // Centroid ranking scans one vector per cluster.
                        scanned_codes: n,
                        clusters_touched: n,
                    },
                })
            }
            Routing::Unranked => Ok(RouteOutcome {
                ranked_clusters: (0..n).collect(),
                ranked_scores: Vec::new(),
                cost: SearchPhaseCost::default(),
            }),
        }
    }

    /// **Stage 3 (scatter):** deep-searches `shards` concurrently on the
    /// shared pool, returning per-shard hits + scan stats in input order.
    /// Records an `engine.scatter` span (args: `shards`, `scanned_codes`)
    /// plus one `shard.deep` span per deep search — the latter land on the
    /// worker thread that stole the shard, so a Perfetto view shows the
    /// scatter fan-out shape directly.
    fn scatter(
        &self,
        query: &[f32],
        shards: &[usize],
        deep_nprobe: usize,
    ) -> Result<Vec<(Vec<Neighbor>, ScanStats)>, HermesError> {
        let params = SearchParams::new().with_nprobe(deep_nprobe);
        let k = self.plan.k;
        let mut sp = hermes_trace::span_with(names::ENGINE_SCATTER, &[("shards", shards.len() as u64)]);
        let per_shard = self.fan_out(shards, |c| {
            let mut sp = hermes_trace::span_with(names::SHARD_DEEP, &[("cluster", c as u64)]);
            let (hits, stats) = self.store.shard(c).search_with_stats(query, k, &params)?;
            sp.arg("scanned_codes", stats.scanned_codes as u64);
            Ok((hits, stats))
        })?;
        sp.arg(
            "scanned_codes",
            per_shard.iter().map(|(_, s)| s.scanned_codes as u64).sum(),
        );
        Ok(per_shard)
    }

    /// Runs `f` over shard ids with the plan's intra-query fan-out cap.
    /// Inside a pool worker (i.e. within a batch) this runs inline, so
    /// nested scatter never re-enters the pool.
    fn fan_out<U, F>(&self, shards: &[usize], f: F) -> Result<Vec<U>, HermesError>
    where
        U: Send,
        F: Fn(usize) -> Result<U, HermesError> + Sync,
    {
        if self.plan.scatter_threads == 1 || shards.len() <= 1 {
            return shards.iter().map(|&c| f(c)).collect();
        }
        let cap = match self.plan.scatter_threads {
            0 => usize::MAX,
            t => t,
        };
        hermes_pool::Pool::global().try_parallel_map_capped(shards, cap, |&c| f(c))
    }

    /// Executes the full pipeline for one query.
    ///
    /// When telemetry is enabled, the call nests `engine.execute` ▸
    /// `engine.route` / `engine.scatter` / `engine.gather` spans, with
    /// the outer span's end event carrying the `route_scanned` /
    /// `deep_scanned` work totals from [`SearchStats`].
    ///
    /// # Errors
    ///
    /// Propagates the first shard error in stage order (route before
    /// scatter) and cluster order within a stage.
    pub fn execute(&self, query: &[f32]) -> Result<SearchOutcome, HermesError> {
        let mut query_span = hermes_trace::span(names::ENGINE_EXECUTE);
        if let Some(rid) = self.plan.request_id {
            query_span.arg(names::ARG_REQUEST_ID, rid);
        }
        let route = self.route(query)?;
        let outcome = self.scatter_gather(query, route)?;
        query_span.arg("route_scanned", outcome.stats.route.scanned_codes as u64);
        query_span.arg("deep_scanned", outcome.stats.deep.scanned_codes as u64);
        query_span.arg("deep_nprobe", outcome.stats.deep_nprobe as u64);
        Ok(outcome)
    }

    /// Executes the scatter + gather stages for a query that was already
    /// routed — the cache layer's entry point, which routes misses once
    /// (to bucket the semantic lookup) and must not pay the route stage
    /// twice. `execute(q)` ≡ `execute_routed(q, route(q)?)` bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error in the query's rank order.
    pub fn execute_routed(
        &self,
        query: &[f32],
        route: RouteOutcome,
    ) -> Result<SearchOutcome, HermesError> {
        let mut query_span = hermes_trace::span(names::ENGINE_EXECUTE);
        if let Some(rid) = self.plan.request_id {
            query_span.arg(names::ARG_REQUEST_ID, rid);
        }
        let outcome = self.scatter_gather(query, route)?;
        query_span.arg("route_scanned", outcome.stats.route.scanned_codes as u64);
        query_span.arg("deep_scanned", outcome.stats.deep.scanned_codes as u64);
        query_span.arg("deep_nprobe", outcome.stats.deep_nprobe as u64);
        Ok(outcome)
    }

    /// The scatter + gather tail shared by [`Engine::execute`] and
    /// [`Engine::execute_routed`], resolving the per-query depth first.
    fn scatter_gather(
        &self,
        query: &[f32],
        route: RouteOutcome,
    ) -> Result<SearchOutcome, HermesError> {
        let (m_limit, deep_nprobe) = self.depth_for(&route);
        let m = m_limit.min(route.ranked_clusters.len());
        let searched: Vec<usize> = route.ranked_clusters[..m].to_vec();
        let per_shard = self.scatter(query, &searched, deep_nprobe)?;
        Ok(self.gather(route, searched, per_shard, deep_nprobe))
    }

    /// Resolves the per-query depth: the [`DifficultyEstimator`]'s choice
    /// when the plan is adaptive and the route produced scores, the
    /// plan's fixed knobs otherwise. Returns `(clusters_to_search,
    /// deep_nprobe)`.
    fn depth_for(&self, route: &RouteOutcome) -> (usize, usize) {
        match self.plan.adaptive {
            Some(cfg) if !route.ranked_scores.is_empty() => {
                let choice = DifficultyEstimator::new(cfg).depth(&route.ranked_scores);
                (choice.clusters, choice.deep_nprobe)
            }
            _ => (self.plan.clusters_to_search, self.plan.deep_nprobe),
        }
    }

    /// Executes the pipeline for a whole batch, stealing queries from the
    /// shared pool cursor. `threads` caps the inter-query fan-out (`0` =
    /// full pool, `1` = inline sequential). Each stolen query's own
    /// scatter runs inline on its worker, so the two parallelism levels
    /// compose without oversubscription.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order.
    pub fn execute_batch(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        if threads == 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.execute(q)).collect();
        }
        let cap = if threads == 0 { usize::MAX } else { threads };
        hermes_pool::Pool::global().try_parallel_map_capped(queries, cap, |q| self.execute(q))
    }

    /// **Stage 1+2 for a whole batch:** routes every query, stealing
    /// queries from the shared pool cursor like [`Engine::execute_batch`].
    /// `threads` caps the inter-query fan-out (`0` = full pool, `1` =
    /// inline sequential). The serving layer's batch former uses this to
    /// discover cluster overlap before committing to a scatter.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query route error in input order.
    pub fn route_batch(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<RouteOutcome>, HermesError> {
        if threads == 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.route(q)).collect();
        }
        let cap = if threads == 0 { usize::MAX } else { threads };
        hermes_pool::Pool::global().try_parallel_map_capped(queries, cap, |q| self.route(q))
    }

    /// Executes the pipeline for a whole batch with the scatter stage
    /// **coalesced by cluster**: after routing every query, the deep
    /// searches are grouped so each distinct cluster is one pool task
    /// that serves all the queries whose top-m routing selected it —
    /// instead of `queries × m` independent tasks, at most
    /// `distinct clusters` tasks touch each shard exactly once. This is
    /// the serving layer's dynamic-batch execution: queries with
    /// overlapping routing share a shard visit (locality), disjoint
    /// queries still fan out across shards.
    ///
    /// Results are bit-identical to [`Engine::execute_batch`]: each
    /// `(query, cluster)` deep search runs the same deterministic scan,
    /// per-query gather merges per-shard hits in the query's own rank
    /// order, and stats fold the same integers. Only the task grouping —
    /// invisible to results — differs.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order; within one
    /// query, route errors precede scatter errors and scatter errors
    /// surface in the query's rank order — the same rule as
    /// [`Engine::execute_batch`].
    pub fn execute_coalesced(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        let cap = if threads == 0 { usize::MAX } else { threads };

        // Route every query; keep per-query errors for input-order
        // propagation after the scatter phase resolves.
        let route_one = |q: &Vec<f32>| -> Result<Result<RouteOutcome, HermesError>, HermesError> {
            Ok(self.route(q))
        };
        let routes: Vec<Result<RouteOutcome, HermesError>> = if cap == 1 || queries.len() <= 1 {
            queries.iter().map(route_one).collect::<Result<_, _>>()?
        } else {
            hermes_pool::Pool::global().try_parallel_map_capped(queries, cap, route_one)?
        };
        self.coalesced_from_routes(queries, routes, cap)
    }

    /// [`Engine::execute_coalesced`] for queries that were already routed
    /// — the cache layer's batch entry point (it routes misses once to
    /// bucket semantic lookups, then scatters only the true misses).
    /// Routes must be positionally aligned with `queries`;
    /// `execute_coalesced(qs, t)` ≡
    /// `execute_coalesced_routed(qs, route_batch(qs, t)?, t)` bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query scatter error in input order
    /// (rank order within a query), exactly like
    /// [`Engine::execute_coalesced`].
    pub fn execute_coalesced_routed(
        &self,
        queries: &[Vec<f32>],
        routes: Vec<RouteOutcome>,
        threads: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        assert_eq!(
            queries.len(),
            routes.len(),
            "one route per query, positionally aligned"
        );
        let cap = if threads == 0 { usize::MAX } else { threads };
        self.coalesced_from_routes(queries, routes.into_iter().map(Ok).collect(), cap)
    }

    /// Shared scatter/gather tail of the two coalesced entry points.
    fn coalesced_from_routes(
        &self,
        queries: &[Vec<f32>],
        routes: Vec<Result<RouteOutcome, HermesError>>,
        cap: usize,
    ) -> Result<Vec<SearchOutcome>, HermesError> {
        let mut batch_span =
            hermes_trace::span_with(names::ENGINE_COALESCED, &[("queries", queries.len() as u64)]);
        // Per-query depth (m, deep nProbe): fixed knobs or the adaptive
        // policy's per-route choice — resolved once, then honored by both
        // the group scatter and the per-query gather below.
        let depths: Vec<(usize, usize)> = routes
            .iter()
            .map(|r| match r {
                Ok(route) => self.depth_for(route),
                Err(_) => (0, 0),
            })
            .collect();
        let searched: Vec<Vec<usize>> = routes
            .iter()
            .zip(&depths)
            .map(|(r, &(m_limit, _))| match r {
                Ok(route) => {
                    let m = m_limit.min(route.ranked_clusters.len());
                    route.ranked_clusters[..m].to_vec()
                }
                Err(_) => Vec::new(),
            })
            .collect();

        // Invert query → clusters into cluster → queries (ascending
        // cluster id, queries in input order within a cluster).
        let mut cluster_queries: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (qi, clusters) in searched.iter().enumerate() {
            for &c in clusters {
                cluster_queries.entry(c).or_default().push(qi);
            }
        }
        let groups: Vec<(usize, Vec<usize>)> = cluster_queries.into_iter().collect();
        batch_span.arg("distinct_clusters", groups.len() as u64);

        // One task per distinct cluster: deep-search it for every query
        // that routed to it. Tasks never abort the fan-out — per-search
        // errors are carried to the assembly step so the *query* input
        // order, not the cluster order, decides which error wins.
        type DeepResult = Result<(Vec<Neighbor>, ScanStats), HermesError>;
        let k = self.plan.k;
        let run_group = |&(c, ref qis): &(usize, Vec<usize>)| -> Result<Vec<DeepResult>, HermesError> {
            let mut sp = hermes_trace::span_with(names::SHARD_DEEP, &[("cluster", c as u64)]);
            let mut scanned = 0u64;
            let results = qis
                .iter()
                .map(|&qi| {
                    let params = SearchParams::new().with_nprobe(depths[qi].1);
                    let r = self.store.shard(c).search_with_stats(&queries[qi], k, &params);
                    if let Ok((_, stats)) = &r {
                        scanned += stats.scanned_codes as u64;
                    }
                    r.map_err(HermesError::from)
                })
                .collect();
            sp.arg("queries", qis.len() as u64);
            sp.arg("scanned_codes", scanned);
            Ok(results)
        };
        let per_group: Vec<Vec<DeepResult>> = if cap == 1 || groups.len() <= 1 {
            groups.iter().map(run_group).collect::<Result<_, _>>()?
        } else {
            hermes_pool::Pool::global().try_parallel_map_capped(&groups, cap, run_group)?
        };

        // Re-slot each deep result into its query's rank-order position,
        // so gather sees exactly the per-shard sequence `execute` builds.
        let mut slots: Vec<Vec<Option<DeepResult>>> = searched
            .iter()
            .map(|clusters| clusters.iter().map(|_| None).collect())
            .collect();
        for ((c, qis), results) in groups.iter().zip(per_group) {
            for (&qi, result) in qis.iter().zip(results) {
                let pos = searched[qi]
                    .iter()
                    .position(|cluster| cluster == c)
                    .expect("cluster group built from this query's searched list");
                slots[qi][pos] = Some(result);
            }
        }

        // Assemble outcomes in input order; the first failing query wins,
        // and within a query route errors precede rank-order scatter
        // errors — matching execute_batch exactly.
        let mut outcomes = Vec::with_capacity(queries.len());
        for (((route, query_searched), query_slots), (_, deep_nprobe)) in
            routes.into_iter().zip(searched).zip(slots).zip(depths)
        {
            let route = route?;
            let mut per_shard = Vec::with_capacity(query_slots.len());
            for slot in query_slots {
                per_shard.push(slot.expect("every searched cluster was scattered")?);
            }
            outcomes.push(self.gather(route, query_searched, per_shard, deep_nprobe));
        }
        batch_span.arg(
            "deep_searches",
            outcomes
                .iter()
                .map(|o| o.searched_clusters.len() as u64)
                .sum(),
        );
        Ok(outcomes)
    }

    /// **Stage 4 (gather):** merges per-shard hits (already in the
    /// query's rank order) into the final top-k and folds the stats —
    /// shared by [`Engine::execute`] and [`Engine::execute_coalesced`] so
    /// the two paths cannot drift.
    fn gather(
        &self,
        route: RouteOutcome,
        searched: Vec<usize>,
        per_shard: Vec<(Vec<Neighbor>, ScanStats)>,
        deep_nprobe: usize,
    ) -> SearchOutcome {
        let mut gather_span = hermes_trace::span(names::ENGINE_GATHER);
        let per_cluster_hits: Vec<Vec<Neighbor>> =
            per_shard.iter().map(|(hits, _)| hits.clone()).collect();
        let hits = merge_topk(&per_cluster_hits, self.plan.k);
        let per_shard_scanned: Vec<usize> =
            per_shard.iter().map(|(_, s)| s.scanned_codes).collect();
        let stats = SearchStats {
            route: route.cost,
            deep: SearchPhaseCost {
                scanned_codes: per_shard_scanned.iter().sum(),
                clusters_touched: searched.len(),
            },
            gather_candidates: per_cluster_hits.iter().map(Vec::len).sum(),
            per_shard_scanned,
            deep_nprobe,
        };
        gather_span.arg("candidates", stats.gather_candidates as u64);
        drop(gather_span);
        SearchOutcome {
            hits,
            ranked_clusters: route.ranked_clusters,
            searched_clusters: searched,
            stats,
        }
    }

    /// Executes the batch and folds each query's deep-searched clusters
    /// into a per-cluster access count — the trace of Figures 13/18 and
    /// the DVFS study's input. Accumulation is sequential in input order,
    /// so counts are deterministic for any `threads`.
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in input order.
    pub fn access_histogram(
        &self,
        queries: &[Vec<f32>],
        threads: usize,
    ) -> Result<Vec<usize>, HermesError> {
        let outcomes = self.execute_batch(queries, threads)?;
        let mut counts = vec![0usize; self.store.num_clusters()];
        for out in outcomes {
            for c in out.searched_clusters {
                counts[c] += 1;
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_datagen::{Corpus, CorpusSpec, QuerySet, QuerySpec};

    fn setup() -> (Corpus, QuerySet) {
        let corpus = Corpus::generate(CorpusSpec::new(900, 16, 6).with_seed(41));
        let queries = QuerySet::generate(&corpus, QuerySpec::new(12).with_seed(42));
        (corpus, queries)
    }

    #[test]
    fn rank_by_score_orders_desc_with_id_tiebreak() {
        let ranked = rank_by_score(vec![(0, 1.0), (1, 3.0), (2, 1.0), (3, 2.0)]);
        assert_eq!(ranked, vec![1, 3, 0, 2]);
    }

    #[test]
    fn rank_by_score_handles_nan_without_panicking() {
        let ranked = rank_by_score(vec![(0, f32::NAN), (1, 1.0), (2, f32::NAN)]);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn plan_from_config_copies_knobs() {
        let cfg = HermesConfig::new(7)
            .with_clusters_to_search(2)
            .with_sample_nprobe(4)
            .with_deep_nprobe(32)
            .with_k(9);
        let plan = QueryPlan::from_config(&cfg);
        assert_eq!(plan.clusters_to_search, 2);
        assert_eq!(plan.sample_nprobe, 4);
        assert_eq!(plan.deep_nprobe, 32);
        assert_eq!(plan.k, 9);
        assert_eq!(plan.scatter_threads, 0);
    }

    #[test]
    fn exhaustive_plan_covers_every_cluster_unranked() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::new(&store, QueryPlan::exhaustive(&cfg));
        let out = engine.execute(queries.embeddings().row(0)).unwrap();
        assert_eq!(out.ranked_clusters, (0..6).collect::<Vec<_>>());
        assert_eq!(out.searched_clusters, (0..6).collect::<Vec<_>>());
        assert_eq!(out.stats.route, SearchPhaseCost::default());
    }

    #[test]
    fn scatter_width_does_not_change_results() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let plan = QueryPlan::from_config(&cfg);
        for q in queries.embeddings().iter_rows() {
            let inline = Engine::new(&store, plan.with_scatter_threads(1))
                .execute(q)
                .unwrap();
            for threads in [0usize, 2, 64] {
                let scattered = Engine::new(&store, plan.with_scatter_threads(threads))
                    .execute(q)
                    .unwrap();
                assert_eq!(inline, scattered, "scatter_threads={threads}");
            }
        }
    }

    #[test]
    fn coalesced_matches_per_query_execution_every_width() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        let batch = queries.to_vecs();
        let reference = engine.execute_batch(&batch, 1).unwrap();
        for threads in [0usize, 1, 2, 64] {
            let coalesced = engine.execute_coalesced(&batch, threads).unwrap();
            assert_eq!(coalesced, reference, "threads={threads}");
        }
    }

    #[test]
    fn coalesced_matches_for_every_routing_mode() {
        let (corpus, queries) = setup();
        let batch = queries.to_vecs();
        for routing in [
            Routing::DocumentSampling,
            Routing::CentroidOnly,
            Routing::Unranked,
        ] {
            let cfg = HermesConfig::new(6)
                .with_seed(1)
                .with_clusters_to_search(3)
                .with_routing(routing);
            let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
            let engine = Engine::for_store(&store);
            let reference = engine.execute_batch(&batch, 1).unwrap();
            let coalesced = engine.execute_coalesced(&batch, 0).unwrap();
            assert_eq!(coalesced, reference, "routing={routing:?}");
        }
    }

    #[test]
    fn coalesced_single_and_empty_batches() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(2);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        let one = vec![queries.embeddings().row(0).to_vec()];
        assert_eq!(
            engine.execute_coalesced(&one, 0).unwrap(),
            engine.execute_batch(&one, 1).unwrap()
        );
        assert!(engine.execute_coalesced(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn coalesced_reports_first_error_in_input_order() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        // A wrong-dimension query fails at the route stage; put good
        // queries around it so ordering matters.
        let mut batch = queries.to_vecs();
        batch.insert(2, vec![1.0; 3]);
        batch.insert(5, vec![2.0; 5]);
        let expected = engine.execute_batch(&batch, 1).unwrap_err();
        for threads in [0usize, 1, 4] {
            let got = engine.execute_coalesced(&batch, threads).unwrap_err();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn route_batch_matches_sequential_route() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        let batch = queries.to_vecs();
        let sequential: Vec<RouteOutcome> =
            batch.iter().map(|q| engine.route(q).unwrap()).collect();
        for threads in [0usize, 1, 4] {
            assert_eq!(
                engine.route_batch(&batch, threads).unwrap(),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn execute_routed_matches_execute() {
        let (corpus, queries) = setup();
        for adaptive in [None, Some(AdaptiveConfig::new(1, 4, 16, 128))] {
            let mut cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
            cfg.adaptive = adaptive;
            let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
            let engine = Engine::for_store(&store);
            for q in queries.embeddings().iter_rows() {
                let route = engine.route(q).unwrap();
                assert_eq!(
                    engine.execute_routed(q, route).unwrap(),
                    engine.execute(q).unwrap(),
                    "adaptive={adaptive:?}"
                );
            }
        }
    }

    #[test]
    fn coalesced_routed_matches_coalesced() {
        let (corpus, queries) = setup();
        for adaptive in [None, Some(AdaptiveConfig::new(1, 4, 16, 128))] {
            let mut cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
            cfg.adaptive = adaptive;
            let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
            let engine = Engine::for_store(&store);
            let batch = queries.to_vecs();
            for threads in [0usize, 1, 4] {
                let routes = engine.route_batch(&batch, threads).unwrap();
                assert_eq!(
                    engine
                        .execute_coalesced_routed(&batch, routes, threads)
                        .unwrap(),
                    engine.execute_coalesced(&batch, threads).unwrap(),
                    "adaptive={adaptive:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn adaptive_depth_recorded_and_bounded() {
        let (corpus, queries) = setup();
        let adaptive = AdaptiveConfig::new(1, 4, 16, 96);
        let cfg = HermesConfig::new(6)
            .with_seed(1)
            .with_clusters_to_search(3)
            .with_adaptive(adaptive);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        for q in queries.embeddings().iter_rows() {
            let out = engine.execute(q).unwrap();
            let m = out.searched_clusters.len();
            assert!((1..=4).contains(&m), "m={m}");
            assert!(
                (16..=96).contains(&out.stats.deep_nprobe),
                "nprobe={}",
                out.stats.deep_nprobe
            );
            // The recorded depth matches a fresh estimate of the same route.
            let route = engine.route(q).unwrap();
            let choice = DifficultyEstimator::new(adaptive).depth(&route.ranked_scores);
            assert_eq!(out.stats.deep_nprobe, choice.deep_nprobe);
            assert_eq!(m, choice.clusters.min(store.num_clusters()));
        }
    }

    #[test]
    fn adaptive_paths_agree_at_every_width() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6)
            .with_seed(1)
            .with_clusters_to_search(3)
            .with_adaptive(AdaptiveConfig::new(1, 5, 8, 128));
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let engine = Engine::for_store(&store);
        let batch = queries.to_vecs();
        let reference = engine.execute_batch(&batch, 1).unwrap();
        for threads in [0usize, 2, 64] {
            assert_eq!(engine.execute_batch(&batch, threads).unwrap(), reference);
            assert_eq!(engine.execute_coalesced(&batch, threads).unwrap(), reference);
        }
    }

    #[test]
    fn adaptive_without_route_scores_falls_back_to_fixed_knobs() {
        let (corpus, queries) = setup();
        let fixed = HermesConfig::new(6)
            .with_seed(1)
            .with_routing(Routing::Unranked)
            .with_clusters_to_search(3);
        let adaptive = fixed.with_adaptive(AdaptiveConfig::new(1, 5, 8, 64));
        let store = ClusteredStore::build(corpus.embeddings(), &fixed).unwrap();
        let out_fixed = Engine::new(&store, QueryPlan::from_config(&fixed))
            .execute(queries.embeddings().row(0))
            .unwrap();
        let out_adaptive = Engine::new(&store, QueryPlan::from_config(&adaptive))
            .execute(queries.embeddings().row(0))
            .unwrap();
        assert_eq!(out_fixed, out_adaptive);
        assert_eq!(out_adaptive.stats.deep_nprobe, fixed.deep_nprobe);
    }

    #[test]
    fn fixed_plan_records_plan_nprobe() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_deep_nprobe(64);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = Engine::for_store(&store)
            .execute(queries.embeddings().row(0))
            .unwrap();
        assert_eq!(out.stats.deep_nprobe, 64);
    }

    #[test]
    fn stats_fold_is_consistent() {
        let (corpus, queries) = setup();
        let cfg = HermesConfig::new(6).with_seed(1).with_clusters_to_search(3);
        let store = ClusteredStore::build(corpus.embeddings(), &cfg).unwrap();
        let out = Engine::for_store(&store)
            .execute(queries.embeddings().row(2))
            .unwrap();
        assert_eq!(out.stats.per_shard_scanned.len(), 3);
        assert_eq!(
            out.stats.deep.scanned_codes,
            out.stats.per_shard_scanned.iter().sum::<usize>()
        );
        assert_eq!(out.stats.deep.clusters_touched, 3);
        assert!(out.stats.gather_candidates >= out.hits.len());
        assert_eq!(
            out.stats.total_scanned_codes(),
            out.stats.route.scanned_codes + out.stats.deep.scanned_codes
        );
    }
}
