//! Adaptive retrieval depth: per-query `m` / deep-`nProbe` selection
//! from the route stage's confidence signals (ROADMAP item 3).
//!
//! Hermes fixes `clusters_to_search` and the deep `nProbe` per deployment
//! (Table 2), so an easy query — one whose sampled routing scores
//! concentrate on a single cluster — pays the same deep-search cost as a
//! hard one whose scores are nearly uniform. The sample stage already
//! produces the signal needed to tell them apart: the per-cluster score
//! distribution that ranks the clusters. [`DifficultyEstimator`] turns
//! two features of that distribution into a difficulty score in `[0, 1]`:
//!
//! * **top-1/top-2 margin** — how far the best cluster's score sits above
//!   the runner-up, normalized by the full score spread. A wide margin
//!   means the ranking is confident and a shallow search suffices.
//! * **entropy** — the normalized Shannon entropy
//!   ([`hermes_math::stats::normalized_entropy`]) of the scores' mass
//!   above the worst cluster. Flat distributions (high entropy) mean the
//!   relevant documents are spread across clusters and the search must go
//!   wide and deep.
//!
//! The policy then interpolates `clusters_to_search` and deep `nProbe`
//! linearly between the [`AdaptiveConfig`] floor and ceiling knobs. The
//! whole path is a **deterministic pure function of the routing scores**:
//! no RNG, no clocks, no global state — the same scores always produce
//! the same depth, so adaptive runs stay bit-reproducible and the
//! equivalence suite can pin them.
//!
//! With `AdaptiveConfig` absent (`QueryPlan::adaptive == None`) the
//! engine is bit-identical to the fixed-knob pipeline; with it present,
//! routing modes that produce no scores (`Routing::Unranked`) fall back
//! to the fixed knobs per query.

use crate::HermesError;

/// Floor/ceiling knobs of the adaptive-depth policy.
///
/// All fields are integers (the weight is in permille) so the config —
/// and [`crate::QueryPlan`] embedding it — stays `Copy + Eq + Hash`-able
/// and trivially bit-stable across platforms.
///
/// # Examples
///
/// ```
/// use hermes_core::adaptive::AdaptiveConfig;
/// let cfg = AdaptiveConfig::new(1, 3, 16, 128);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.min_clusters, 1);
/// assert_eq!(cfg.max_deep_nprobe, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptiveConfig {
    /// Deep-searched clusters for the easiest query (difficulty 0).
    pub min_clusters: usize,
    /// Deep-searched clusters for the hardest query (difficulty 1);
    /// clamped to the store's cluster count at execution time.
    pub max_clusters: usize,
    /// Deep-search `nProbe` for the easiest query.
    pub min_deep_nprobe: usize,
    /// Deep-search `nProbe` for the hardest query.
    pub max_deep_nprobe: usize,
    /// Weight of the entropy signal versus the margin signal, in permille
    /// (`0` = margin only, `1000` = entropy only).
    pub entropy_weight_permille: u32,
    /// Difficulty at (and below) which the floor knobs apply, in permille.
    /// Together with [`difficulty_ceiling_permille`] this calibrates the
    /// response curve to the workload: raw blended difficulty rarely
    /// spans all of `[0, 1]` (sampled cluster scores keep some mass
    /// everywhere), so the observed band is re-normalized onto the full
    /// knob range before interpolation.
    ///
    /// [`difficulty_ceiling_permille`]: AdaptiveConfig::difficulty_ceiling_permille
    pub difficulty_floor_permille: u32,
    /// Difficulty at (and above) which the ceiling knobs apply, in
    /// permille. Must exceed the floor.
    pub difficulty_ceiling_permille: u32,
}

impl AdaptiveConfig {
    /// Default blend: margin and entropy weighted equally.
    pub const DEFAULT_ENTROPY_WEIGHT_PERMILLE: u32 = 500;

    /// Builds a policy spanning `[min_clusters, max_clusters]` ×
    /// `[min_deep_nprobe, max_deep_nprobe]` with the default signal blend.
    pub fn new(
        min_clusters: usize,
        max_clusters: usize,
        min_deep_nprobe: usize,
        max_deep_nprobe: usize,
    ) -> Self {
        AdaptiveConfig {
            min_clusters,
            max_clusters,
            min_deep_nprobe,
            max_deep_nprobe,
            entropy_weight_permille: Self::DEFAULT_ENTROPY_WEIGHT_PERMILLE,
            difficulty_floor_permille: 0,
            difficulty_ceiling_permille: 1000,
        }
    }

    /// Sets the entropy-vs-margin blend (permille, clamped to 1000).
    pub fn with_entropy_weight_permille(mut self, permille: u32) -> Self {
        self.entropy_weight_permille = permille.min(1000);
        self
    }

    /// Calibrates the difficulty band (permille): blended difficulties at
    /// or below `floor` take the floor knobs, at or above `ceiling` the
    /// ceiling knobs, with linear response in between.
    pub fn with_difficulty_band_permille(mut self, floor: u32, ceiling: u32) -> Self {
        self.difficulty_floor_permille = floor;
        self.difficulty_ceiling_permille = ceiling;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] if a floor is zero, a floor
    /// exceeds its ceiling, or the weight exceeds 1000 permille.
    pub fn validate(&self) -> Result<(), HermesError> {
        use crate::HermesError::InvalidConfig;
        if self.min_clusters == 0 || self.min_deep_nprobe == 0 {
            return Err(InvalidConfig("adaptive floors must be positive".into()));
        }
        if self.min_clusters > self.max_clusters {
            return Err(InvalidConfig(format!(
                "adaptive min_clusters {} exceeds max_clusters {}",
                self.min_clusters, self.max_clusters
            )));
        }
        if self.min_deep_nprobe > self.max_deep_nprobe {
            return Err(InvalidConfig(format!(
                "adaptive min_deep_nprobe {} exceeds max_deep_nprobe {}",
                self.min_deep_nprobe, self.max_deep_nprobe
            )));
        }
        if self.entropy_weight_permille > 1000 {
            return Err(InvalidConfig(format!(
                "adaptive entropy weight {} must be ≤ 1000 permille",
                self.entropy_weight_permille
            )));
        }
        if self.difficulty_floor_permille >= self.difficulty_ceiling_permille
            || self.difficulty_ceiling_permille > 1000
        {
            return Err(InvalidConfig(format!(
                "adaptive difficulty band {}..{} must be increasing and ≤ 1000 permille",
                self.difficulty_floor_permille, self.difficulty_ceiling_permille
            )));
        }
        Ok(())
    }
}

/// The per-query depth an [`AdaptiveConfig`] policy chose, plus the
/// difficulty signals behind the choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthChoice {
    /// Clusters to deep-search (before the store-size clamp).
    pub clusters: usize,
    /// Deep-search `nProbe`.
    pub deep_nprobe: usize,
    /// Blended difficulty in `[0, 1]`.
    pub difficulty: f64,
}

/// Difficulty signals extracted from one query's routing scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Difficulty {
    /// Top-1/top-2 margin normalized by the score spread, in `[0, 1]`
    /// (large = confident ranking).
    pub margin: f64,
    /// Normalized entropy of the score mass above the worst cluster, in
    /// `[0, 1]` (large = flat, uncertain ranking).
    pub entropy: f64,
}

impl Difficulty {
    /// Extracts the signals from best-first routing scores. Non-finite
    /// scores (empty shards sample as `-inf`) carry no mass; with fewer
    /// than two finite scores the ranking says nothing and both signals
    /// read maximally hard.
    pub fn from_scores(scores: &[f32]) -> Self {
        let finite: Vec<f64> = scores
            .iter()
            .filter(|s| s.is_finite())
            .map(|&s| s as f64)
            .collect();
        if finite.len() < 2 {
            return Difficulty {
                margin: 0.0,
                entropy: 1.0,
            };
        }
        let best = finite[0];
        let second = finite[1];
        let worst = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let spread = best - worst;
        let margin = if spread > 0.0 {
            ((best - second) / spread).clamp(0.0, 1.0)
        } else {
            // All scores identical: no information in the ranking.
            0.0
        };
        // Mass above the worst score; the worst cluster itself contributes
        // nothing, matching its zero chance of being deep-searched first.
        let weights: Vec<f64> = finite.iter().map(|&s| s - worst).collect();
        let entropy = hermes_math::stats::normalized_entropy(&weights);
        Difficulty { margin, entropy }
    }

    /// Blends the two signals into one difficulty score in `[0, 1]`:
    /// `(1 - margin)` weighted against `entropy` by the config's permille
    /// knob.
    pub fn blend(&self, entropy_weight_permille: u32) -> f64 {
        let w = f64::from(entropy_weight_permille.min(1000)) / 1000.0;
        ((1.0 - self.margin) * (1.0 - w) + self.entropy * w).clamp(0.0, 1.0)
    }
}

/// A calibrated [`AdaptiveConfig`] policy: scores in, [`DepthChoice`] out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DifficultyEstimator {
    cfg: AdaptiveConfig,
}

impl DifficultyEstimator {
    /// Binds the policy knobs.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        DifficultyEstimator { cfg }
    }

    /// Picks the per-query depth for best-first routing `scores` — a
    /// deterministic pure function (same scores ⇒ same choice).
    pub fn depth(&self, scores: &[f32]) -> DepthChoice {
        let difficulty = Difficulty::from_scores(scores).blend(self.cfg.entropy_weight_permille);
        // Re-normalize the blended difficulty onto the calibrated band so
        // the knob range is actually exercised by the workload's scores.
        let floor = f64::from(self.cfg.difficulty_floor_permille) / 1000.0;
        let ceiling = f64::from(self.cfg.difficulty_ceiling_permille.max(1)) / 1000.0;
        let t = if ceiling > floor {
            ((difficulty - floor) / (ceiling - floor)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        DepthChoice {
            clusters: interpolate(self.cfg.min_clusters, self.cfg.max_clusters, t),
            deep_nprobe: interpolate(self.cfg.min_deep_nprobe, self.cfg.max_deep_nprobe, t),
            difficulty,
        }
    }
}

/// Linear interpolation between `lo` and `hi` at `t ∈ [0, 1]`, rounded to
/// the nearest integer. Endpoints are exact: `t = 0 ⇒ lo`, `t = 1 ⇒ hi`.
fn interpolate(lo: usize, hi: usize, t: f64) -> usize {
    debug_assert!(lo <= hi);
    let span = (hi - lo) as f64;
    lo + (span * t.clamp(0.0, 1.0)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(min_m: usize, max_m: usize, min_p: usize, max_p: usize) -> DifficultyEstimator {
        DifficultyEstimator::new(AdaptiveConfig::new(min_m, max_m, min_p, max_p))
    }

    #[test]
    fn confident_scores_pick_the_floor() {
        // One dominant cluster, the rest flat at the bottom: margin ≈ 1,
        // entropy ≈ 0.
        let choice = est(1, 4, 16, 128).depth(&[10.0, 0.01, 0.005, 0.0]);
        assert_eq!(choice.clusters, 1);
        assert!(choice.deep_nprobe <= 32, "nprobe={}", choice.deep_nprobe);
        assert!(choice.difficulty < 0.25, "difficulty={}", choice.difficulty);
    }

    #[test]
    fn flat_scores_pick_the_ceiling() {
        let choice = est(1, 4, 16, 128).depth(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(choice.clusters, 4);
        assert_eq!(choice.deep_nprobe, 128);
        assert_eq!(choice.difficulty, 1.0);
    }

    #[test]
    fn depth_is_monotone_in_difficulty() {
        let e = est(1, 5, 8, 256);
        // The runner-up climbing toward the leader (tail fixed) raises
        // both signals — margin shrinks, the top-2 mass flattens — so
        // depth must never decrease along the family.
        let mut last = e.depth(&[10.0, 0.0, 0.0, 0.0]);
        for x in [2.5f32, 5.0, 7.5, 10.0] {
            let next = e.depth(&[10.0, x, 0.0, 0.0]);
            assert!(next.difficulty >= last.difficulty - 1e-9, "x={x}");
            assert!(next.clusters >= last.clusters, "x={x}");
            assert!(next.deep_nprobe >= last.deep_nprobe, "x={x}");
            last = next;
        }
    }

    #[test]
    fn estimator_is_a_pure_function_of_scores() {
        let e = est(1, 4, 16, 128);
        let scores = [3.0, 2.5, 1.0, -0.5, -2.0];
        let a = e.depth(&scores);
        for _ in 0..100 {
            assert_eq!(e.depth(&scores), a);
        }
    }

    #[test]
    fn non_finite_and_degenerate_scores_go_deep() {
        let e = est(1, 4, 16, 128);
        // Empty-shard samples (-inf) and NaNs carry no information.
        for scores in [
            vec![],
            vec![1.0],
            vec![f32::NEG_INFINITY, f32::NEG_INFINITY],
            vec![f32::NAN, f32::NAN, f32::NAN],
            vec![2.0, f32::NAN, f32::NEG_INFINITY],
        ] {
            let choice = e.depth(&scores);
            assert_eq!(choice.clusters, 4, "scores={scores:?}");
            assert_eq!(choice.deep_nprobe, 128, "scores={scores:?}");
        }
    }

    #[test]
    fn entropy_weight_extremes_isolate_each_signal() {
        // A near-tied top pair over a long dead tail: the margin signal
        // reads very hard (top-2 gap ≈ 0) while the entropy signal reads
        // moderate (mass concentrated on just two of ten clusters), so
        // the two weight extremes must disagree.
        let mut scores = vec![10.0f32, 9.9];
        scores.extend(std::iter::repeat(0.1).take(8));
        let margin_only = DifficultyEstimator::new(
            AdaptiveConfig::new(1, 4, 16, 128).with_entropy_weight_permille(0),
        )
        .depth(&scores);
        let entropy_only = DifficultyEstimator::new(
            AdaptiveConfig::new(1, 4, 16, 128).with_entropy_weight_permille(1000),
        )
        .depth(&scores);
        assert!(entropy_only.difficulty < margin_only.difficulty);
        assert!(entropy_only.clusters <= margin_only.clusters);
        assert!(margin_only.difficulty > 0.9, "near-tie must read hard");
    }

    #[test]
    fn interpolation_hits_exact_endpoints() {
        assert_eq!(interpolate(2, 7, 0.0), 2);
        assert_eq!(interpolate(2, 7, 1.0), 7);
        assert_eq!(interpolate(3, 3, 0.7), 3);
        assert_eq!(interpolate(2, 7, -1.0), 2);
        assert_eq!(interpolate(2, 7, 2.0), 7);
    }

    #[test]
    fn validate_rejects_inverted_and_zero_knobs() {
        assert!(AdaptiveConfig::new(0, 3, 16, 128).validate().is_err());
        assert!(AdaptiveConfig::new(1, 3, 0, 128).validate().is_err());
        assert!(AdaptiveConfig::new(4, 3, 16, 128).validate().is_err());
        assert!(AdaptiveConfig::new(1, 3, 129, 128).validate().is_err());
        assert!(AdaptiveConfig::new(1, 3, 16, 128).validate().is_ok());
        let mut bad = AdaptiveConfig::new(1, 3, 16, 128);
        bad.entropy_weight_permille = 1001;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_difficulty_bands() {
        let base = AdaptiveConfig::new(1, 3, 16, 128);
        assert!(base.with_difficulty_band_permille(500, 500).validate().is_err());
        assert!(base.with_difficulty_band_permille(700, 300).validate().is_err());
        assert!(base.with_difficulty_band_permille(0, 1001).validate().is_err());
        assert!(base.with_difficulty_band_permille(400, 900).validate().is_ok());
    }

    #[test]
    fn difficulty_band_renormalizes_the_response() {
        // Moderately hard scores land mid-band under the identity
        // calibration; shifting the band around them swings the choice
        // between the floor and ceiling knobs without touching the raw
        // difficulty estimate.
        let scores = [10.0f32, 7.0, 3.0, 0.0];
        let base = AdaptiveConfig::new(1, 4, 16, 128);
        let plain = DifficultyEstimator::new(base).depth(&scores);
        let eased = DifficultyEstimator::new(base.with_difficulty_band_permille(800, 1000))
            .depth(&scores);
        let hardened = DifficultyEstimator::new(base.with_difficulty_band_permille(100, 200))
            .depth(&scores);
        assert!(plain.difficulty > 0.2 && plain.difficulty < 0.8);
        assert_eq!(eased.difficulty, plain.difficulty, "signal unchanged");
        assert_eq!(eased.clusters, 1, "band above the signal → floor");
        assert_eq!(eased.deep_nprobe, 16);
        assert_eq!(hardened.clusters, 4, "band below the signal → ceiling");
        assert_eq!(hardened.deep_nprobe, 128);
    }
}
