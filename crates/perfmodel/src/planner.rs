//! Cluster-size planning: pick split sizes so retrieval hides under
//! inference (paper Figures 10 and 19).
//!
//! Because Hermes pipelines retrieval for the next stride under the
//! current stride's LLM work, the retrieval latency of one cluster only
//! needs to stay below the per-stride inference latency. The planner
//! inverts the retrieval latency model to find the largest cluster (in
//! tokens) satisfying that bound, which determines how many nodes a
//! datastore of a given size needs.


use crate::cpu::RetrievalModel;
use crate::gpu::{EncoderModel, InferenceModel};

/// Plans per-node cluster sizes for retrieval/inference overlap.
///
/// # Examples
///
/// ```
/// use hermes_perfmodel::{ClusterPlanner, InferenceModel, RetrievalModel};
///
/// let planner = ClusterPlanner::new(
///     RetrievalModel::default(),
///     InferenceModel::default(),
///     EncoderModel::default(),
/// );
/// # use hermes_perfmodel::EncoderModel;
/// let tokens = planner.max_cluster_tokens(128, 128, 512, 16);
/// assert!(tokens > 1_000_000_000, "{tokens}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlanner {
    retrieval: RetrievalModel,
    inference: InferenceModel,
    encoder: EncoderModel,
}

impl ClusterPlanner {
    /// Builds a planner over the given device models.
    pub fn new(
        retrieval: RetrievalModel,
        inference: InferenceModel,
        encoder: EncoderModel,
    ) -> Self {
        ClusterPlanner {
            retrieval,
            inference,
            encoder,
        }
    }

    /// Per-stride inference latency available to hide retrieval: decoding
    /// `stride` tokens for the batch (prefill happens once and is excluded,
    /// making the bound conservative mid-generation).
    pub fn stride_budget_s(&self, batch: usize, stride: u32) -> f64 {
        self.inference.decode_latency(batch, stride)
    }

    /// Time-to-first-token budget: encode + prefill ahead of the first
    /// retrieval (used when planning for TTFT-critical serving).
    pub fn ttft_budget_s(&self, batch: usize, input_tokens: u32) -> f64 {
        self.encoder.latency(batch) + self.inference.prefill_latency(batch, input_tokens)
    }

    /// Largest per-cluster token count whose deep search (at `nprobe`)
    /// still hides under the per-stride decode latency. `input_tokens`
    /// contributes nothing mid-stride but is kept for the Figure 19 sweep,
    /// where longer inputs raise per-stride latency via re-prefill of
    /// grown context (modeled as a 10% surcharge per 512 input tokens).
    pub fn max_cluster_tokens(
        &self,
        batch: usize,
        nprobe: usize,
        input_tokens: u32,
        stride: u32,
    ) -> u64 {
        let surcharge = 1.0 + 0.1 * (input_tokens as f64 / 512.0);
        let budget = self.stride_budget_s(batch, stride) * surcharge;
        self.invert_latency(batch, nprobe, budget)
    }

    /// Number of nodes needed to serve `total_tokens` with retrieval fully
    /// hidden (at least one).
    pub fn nodes_required(
        &self,
        total_tokens: u64,
        batch: usize,
        nprobe: usize,
        input_tokens: u32,
        stride: u32,
    ) -> usize {
        let per = self
            .max_cluster_tokens(batch, nprobe, input_tokens, stride)
            .max(1);
        total_tokens.div_ceil(per).max(1) as usize
    }

    /// Retrieval latency minus the stride budget — the paper's "pipeline
    /// gap" (Figure 10); positive values mean retrieval is exposed.
    pub fn pipeline_gap_s(&self, cluster_tokens: u64, batch: usize, nprobe: usize, stride: u32) -> f64 {
        self.retrieval.batch_latency(cluster_tokens, batch, nprobe)
            - self.stride_budget_s(batch, stride)
    }

    fn invert_latency(&self, batch: usize, nprobe: usize, budget_s: f64) -> u64 {
        // Latency is affine increasing in tokens; binary search the bound.
        let mut lo = 0u64;
        let mut hi = 4_000_000_000_000u64; // 4T tokens upper bound
        if self.retrieval.batch_latency(hi, batch, nprobe) <= budget_s {
            return hi;
        }
        while hi - lo > 1_000_000 {
            let mid = lo + (hi - lo) / 2;
            if self.retrieval.batch_latency(mid, batch, nprobe) <= budget_s {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl Default for ClusterPlanner {
    fn default() -> Self {
        ClusterPlanner::new(
            RetrievalModel::default(),
            InferenceModel::default(),
            EncoderModel::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_way_split_of_100b_hides_retrieval() {
        // Figure 10's example: 100B tokens split into 10 clusters of 10B
        // keeps per-cluster search inside the inference budget at batch 128.
        let p = ClusterPlanner::default();
        let gap = p.pipeline_gap_s(10_000_000_000, 128, 128, 16);
        assert!(gap < 0.1, "gap {gap}");
    }

    #[test]
    fn monolithic_100b_does_not_hide() {
        let p = ClusterPlanner::default();
        let gap = p.pipeline_gap_s(100_000_000_000, 128, 128, 16);
        assert!(gap > 1.0, "gap {gap}");
    }

    #[test]
    fn longer_inputs_allow_larger_clusters() {
        // Figure 19: cluster size grows with input length at fixed output.
        let p = ClusterPlanner::default();
        let short = p.max_cluster_tokens(128, 128, 32, 16);
        let long = p.max_cluster_tokens(128, 128, 2048, 16);
        assert!(long > short);
    }

    #[test]
    fn max_cluster_tokens_respects_budget() {
        let p = ClusterPlanner::default();
        let tokens = p.max_cluster_tokens(128, 128, 512, 16);
        assert!(p.pipeline_gap_s(tokens, 128, 128, 16) <= 0.12);
    }

    #[test]
    fn nodes_required_covers_datastore() {
        let p = ClusterPlanner::default();
        let nodes = p.nodes_required(100_000_000_000, 128, 128, 512, 16);
        let per = p.max_cluster_tokens(128, 128, 512, 16);
        assert!(nodes as u64 * per >= 100_000_000_000);
        assert!((2..=32).contains(&nodes), "nodes {nodes}");
    }

    #[test]
    fn ttft_budget_includes_encode_and_prefill() {
        let p = ClusterPlanner::default();
        let b = p.ttft_budget_s(32, 512);
        assert!(b > 0.2 && b < 2.0, "{b}");
    }
}
