//! Calibrated device performance/power models — the reproduction of the
//! paper's multi-node analysis tool (Figure 15).
//!
//! The paper measures single-node latency and power (Intel RAPL, pynvml)
//! on real hardware and aggregates those measurements through lookup
//! tables to model multi-node deployments. This crate reproduces the
//! *tool*, seeding its lookup models with the paper's published anchors
//! (see [`calibration`]) instead of re-measuring. All models are analytic
//! in their free variables (datastore size, batch, `nProbe`, sequence
//! lengths) so benches can sweep configurations the paper sweeps.
//!
//! Modules:
//!
//! * [`cpu`] — CPU retrieval platforms ([`cpu::CpuPlatform`]) and the IVF
//!   retrieval latency/power model ([`cpu::RetrievalModel`]).
//! * [`gpu`] — GPU platforms, LLM cost models and the query encoder.
//! * [`dvfs`] — frequency/power scaling used by the Figure 21 study.
//! * [`planner`] — cluster-size planning for retrieval/inference overlap
//!   (Figures 10 and 19).
//! * [`calibration`] — every constant, with the paper anchor it matches.

pub mod calibration;
pub mod cpu;
pub mod dvfs;
pub mod gpu;
pub mod planner;

pub use cpu::{CpuPlatform, RetrievalModel};
pub use dvfs::DvfsModel;
pub use gpu::{EncoderModel, GpuPlatform, InferenceModel, LlmModel};
pub use planner::ClusterPlanner;
