//! CPU retrieval platforms and the IVF latency/power model.


use crate::calibration as cal;

/// A CPU platform the retrieval stage can run on.
///
/// The presets mirror the platforms of the paper's Figure 20; the
/// `latency_factor` is relative to the reference Xeon Gold 6448Y at the
/// same batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPlatform {
    /// Marketing name used in reports.
    pub name: String,
    /// Physical cores available for search threads.
    pub cores: u32,
    /// Nominal frequency, GHz.
    pub freq_ghz: f64,
    /// Search latency multiplier relative to the Xeon Gold 6448Y.
    pub latency_factor: f64,
    /// Package power while searching at full frequency, watts.
    pub search_power_w: f64,
    /// Memory capacity, GB (bounds the largest index a node can host).
    pub memory_gb: f64,
}

impl CpuPlatform {
    /// Intel Xeon Gold 6448Y — the paper's reference retrieval CPU.
    pub fn xeon_gold_6448y() -> Self {
        CpuPlatform {
            name: "Xeon Gold 6448Y".to_string(),
            cores: 32,
            freq_ghz: 2.3,
            latency_factor: 1.0,
            search_power_w: cal::CPU_SEARCH_POWER_W,
            memory_gb: 512.0,
        }
    }

    /// Intel Xeon Platinum 8380 — the fastest platform in Figure 20.
    pub fn xeon_platinum_8380() -> Self {
        CpuPlatform {
            name: "Xeon Platinum 8380".to_string(),
            cores: 40,
            freq_ghz: 2.3,
            latency_factor: 0.72,
            search_power_w: 270.0,
            memory_gb: 512.0,
        }
    }

    /// Intel Xeon Silver 4316 — the slower Intel part in Figure 20.
    pub fn xeon_silver_4316() -> Self {
        CpuPlatform {
            name: "Xeon Silver 4316".to_string(),
            cores: 20,
            freq_ghz: 2.3,
            latency_factor: 1.65,
            search_power_w: 150.0,
            memory_gb: 256.0,
        }
    }

    /// Ampere/ARM Neoverse-N1 — slower per core but 80 cores, so larger
    /// batches recover throughput (Figure 20's BS=128 series).
    pub fn neoverse_n1() -> Self {
        CpuPlatform {
            name: "Neoverse-N1".to_string(),
            cores: 80,
            freq_ghz: 3.0,
            latency_factor: 2.3,
            search_power_w: 180.0,
            memory_gb: 256.0,
        }
    }

    /// Calibrates a platform's `latency_factor` from measured search
    /// latencies — the single-node measurement step of the paper's
    /// methodology (Figure 15). Each sample is
    /// `(tokens, batch, nprobe, measured_seconds)`; the factor is the
    /// mean ratio of measurement to the reference model's prediction.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-positive latencies.
    pub fn calibrated(
        name: &str,
        samples: &[(u64, usize, usize, f64)],
        search_power_w: f64,
        cores: u32,
        memory_gb: f64,
    ) -> CpuPlatform {
        assert!(!samples.is_empty(), "calibration needs measurements");
        let reference = RetrievalModel::new(CpuPlatform::xeon_gold_6448y());
        let mut ratio_sum = 0.0;
        for &(tokens, batch, nprobe, measured) in samples {
            assert!(measured > 0.0, "latencies must be positive");
            ratio_sum += measured / reference.batch_latency(tokens, batch, nprobe);
        }
        CpuPlatform {
            name: name.to_string(),
            cores,
            freq_ghz: 0.0,
            latency_factor: ratio_sum / samples.len() as f64,
            search_power_w,
            memory_gb,
        }
    }

    /// All Figure 20 presets.
    pub fn figure_20_platforms() -> Vec<CpuPlatform> {
        vec![
            CpuPlatform::neoverse_n1(),
            CpuPlatform::xeon_gold_6448y(),
            CpuPlatform::xeon_platinum_8380(),
            CpuPlatform::xeon_silver_4316(),
        ]
    }
}

impl Default for CpuPlatform {
    fn default() -> Self {
        CpuPlatform::xeon_gold_6448y()
    }
}

/// Calibrated IVF-SQ8 retrieval latency/energy model for one CPU node.
///
/// Latency per batch is linear in datastore tokens (the paper's observed
/// scaling, Figures 6/7), sub-linear in batch size (work-stealing overlap)
/// and affine in `nProbe` (a fixed centroid-ranking component plus list
/// scanning).
///
/// # Examples
///
/// ```
/// use hermes_perfmodel::{CpuPlatform, RetrievalModel};
///
/// let model = RetrievalModel::new(CpuPlatform::xeon_gold_6448y());
/// // Figure 4 anchor: 10B tokens, batch 128, nProbe 128 ≈ 0.97 s.
/// let latency = model.batch_latency(10_000_000_000, 128, 128);
/// assert!((latency - 0.97).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalModel {
    platform: CpuPlatform,
}

impl RetrievalModel {
    /// Builds the model for `platform`.
    pub fn new(platform: CpuPlatform) -> Self {
        RetrievalModel { platform }
    }

    /// The modeled platform.
    pub fn platform(&self) -> &CpuPlatform {
        &self.platform
    }

    /// Seconds to search one batch against an index of `tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `nprobe` is zero.
    pub fn batch_latency(&self, tokens: u64, batch: usize, nprobe: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        assert!(nprobe > 0, "nprobe must be positive");
        let size_scale = tokens as f64 / cal::RETRIEVAL_REF_TOKENS;
        let batch_scale = (batch as f64 / cal::REF_BATCH).powf(cal::CPU_BATCH_EXPONENT);
        let nprobe_scale = cal::NPROBE_FIXED_FRACTION
            + (1.0 - cal::NPROBE_FIXED_FRACTION) * (nprobe as f64 / cal::REF_NPROBE);
        cal::RETRIEVAL_FLOOR_S
            + cal::RETRIEVAL_S_PER_10B_BATCH32
                * size_scale
                * batch_scale
                * nprobe_scale
                * self.platform.latency_factor
    }

    /// Queries per second at the given operating point.
    pub fn throughput_qps(&self, tokens: u64, batch: usize, nprobe: usize) -> f64 {
        batch as f64 / self.batch_latency(tokens, batch, nprobe)
    }

    /// Joules consumed searching one batch at full frequency, with the
    /// whole package busy (the monolithic/naive case).
    pub fn batch_energy(&self, tokens: u64, batch: usize, nprobe: usize) -> f64 {
        self.platform.search_power_w * self.batch_latency(tokens, batch, nprobe)
    }

    /// Static (frequency/load independent) package power, watts.
    pub fn static_power_w(&self) -> f64 {
        self.platform.search_power_w * cal::CPU_STATIC_FRACTION
    }

    /// Dynamic power of one busy core, watts.
    pub fn active_core_power_w(&self) -> f64 {
        self.platform.search_power_w * (1.0 - cal::CPU_STATIC_FRACTION)
            / self.platform.cores as f64
    }

    /// Single-core seconds to scan the index once for one query — FAISS
    /// schedules one thread per query, so a query's work is one core
    /// busy for this long regardless of batch size.
    pub fn per_query_scan_s(&self, tokens: u64, nprobe: usize) -> f64 {
        // At the reference point (batch = cores = 32) wall latency equals
        // per-query single-core latency: every query has its own core.
        self.batch_latency(tokens, 32, nprobe)
    }

    /// Work-based energy for `queries` queries against `tokens` tokens
    /// while the node is powered for `wall_s` seconds:
    /// `static · wall + core_power · Σ per-query work`. Reduces to
    /// [`Self::batch_energy`] at the calibration anchor (batch 32, all
    /// cores busy for the whole wall time).
    pub fn work_energy(&self, tokens: u64, queries: usize, nprobe: usize, wall_s: f64) -> f64 {
        self.static_power_w() * wall_s
            + self.active_core_power_w() * queries as f64 * self.per_query_scan_s(tokens, nprobe)
    }

    /// Whether an IVF-SQ8 index of `tokens` tokens fits in node memory.
    pub fn fits_in_memory(&self, tokens: u64) -> bool {
        let bytes = hermes_datagen::DatastoreScale::paper(tokens).index_bytes_sq8();
        (bytes as f64) <= self.platform.memory_gb * 1e9
    }
}

impl Default for RetrievalModel {
    fn default() -> Self {
        RetrievalModel::new(CpuPlatform::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B10: u64 = 10_000_000_000;
    const B100: u64 = 100_000_000_000;
    const T1: u64 = 1_000_000_000_000;

    #[test]
    fn latency_is_linear_in_tokens() {
        let m = RetrievalModel::default();
        let l10 = m.batch_latency(B10, 32, 128);
        let l100 = m.batch_latency(B100, 32, 128);
        let ratio = l100 / l10;
        assert!((9.5..10.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn figure_7_qps_anchor_holds() {
        let m = RetrievalModel::default();
        let qps = m.throughput_qps(B100, 32, 128);
        assert!((qps - 5.69).abs() < 0.3, "{qps}");
    }

    #[test]
    fn figure_7_energy_anchor_holds() {
        let m = RetrievalModel::default();
        let joules = m.batch_energy(B100, 32, 128);
        assert!((1050.0..1200.0).contains(&joules), "{joules}");
    }

    #[test]
    fn larger_batches_improve_throughput() {
        let m = RetrievalModel::default();
        assert!(m.throughput_qps(B10, 128, 128) > m.throughput_qps(B10, 32, 128));
    }

    #[test]
    fn sampling_nprobe_is_much_cheaper_than_deep() {
        let m = RetrievalModel::default();
        let sample = m.batch_latency(B10, 128, 8);
        let deep = m.batch_latency(B10, 128, 128);
        let ratio = deep / sample;
        assert!((5.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn platform_factors_order_latency() {
        let gold = RetrievalModel::new(CpuPlatform::xeon_gold_6448y());
        let platinum = RetrievalModel::new(CpuPlatform::xeon_platinum_8380());
        let silver = RetrievalModel::new(CpuPlatform::xeon_silver_4316());
        let arm = RetrievalModel::new(CpuPlatform::neoverse_n1());
        let l = |m: &RetrievalModel| m.batch_latency(B10, 128, 128);
        assert!(l(&platinum) < l(&gold));
        assert!(l(&gold) < l(&silver));
        assert!(l(&silver) < l(&arm));
    }

    #[test]
    fn one_tb_index_does_not_fit_but_10b_does() {
        let m = RetrievalModel::default();
        assert!(m.fits_in_memory(B10));
        assert!(!m.fits_in_memory(T1));
    }

    #[test]
    fn tiny_cluster_latency_floors_above_zero() {
        let m = RetrievalModel::default();
        assert!(m.batch_latency(1, 32, 1) >= 0.002);
    }

    #[test]
    fn calibration_recovers_a_known_latency_factor() {
        // Synthesize measurements from a hypothetical CPU 1.4x slower
        // than the reference; calibration must recover the factor.
        let truth = 1.4;
        let reference = RetrievalModel::default();
        let samples: Vec<(u64, usize, usize, f64)> = [
            (B10, 32usize, 128usize),
            (B10, 128, 128),
            (B100, 32, 64),
            (2 * B10, 64, 8),
        ]
        .iter()
        .map(|&(t, b, np)| (t, b, np, truth * reference.batch_latency(t, b, np)))
        .collect();
        let platform = CpuPlatform::calibrated("custom", &samples, 180.0, 24, 256.0);
        assert!((platform.latency_factor - truth).abs() < 1e-9);
        let model = RetrievalModel::new(platform);
        let predicted = model.batch_latency(B10, 32, 128);
        assert!((predicted / reference.batch_latency(B10, 32, 128) - truth).abs() < 0.01);
    }

    #[test]
    fn latency_scaling_law_is_verifiably_linear() {
        // The property the whole at-scale extrapolation rests on.
        let m = RetrievalModel::default();
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 1e10).collect();
        let ys: Vec<f64> = xs.iter().map(|&t| m.batch_latency(t as u64, 32, 128)).collect();
        let (_, _, r2) = hermes_math::stats::linear_fit(&xs, &ys).unwrap();
        assert!(r2 > 0.9999, "r2 {r2}");
    }

    #[test]
    fn work_energy_matches_batch_energy_at_anchor() {
        // Batch 32 on 32 cores keeps every core busy the whole time, so the
        // two energy accountings must coincide (±2%).
        let m = RetrievalModel::default();
        let wall = m.batch_latency(B100, 32, 128);
        let work = m.work_energy(B100, 32, 128, wall);
        let pkg = m.batch_energy(B100, 32, 128);
        assert!((work - pkg).abs() / pkg < 0.02, "{work} vs {pkg}");
    }

    #[test]
    fn work_energy_scales_with_queries_not_wall_time_alone() {
        let m = RetrievalModel::default();
        let wall = 10.0;
        let light = m.work_energy(B10, 12, 128, wall);
        let heavy = m.work_energy(B10, 120, 128, wall);
        assert!(heavy > 5.0 * light - m.static_power_w() * wall * 5.0);
        assert!(heavy > light);
    }
}
