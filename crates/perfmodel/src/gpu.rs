//! GPU platforms, LLM inference cost models and the query encoder.


use crate::calibration as cal;

/// A GPU platform for LLM inference.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuPlatform {
    /// Marketing name used in reports.
    pub name: String,
    /// FP16 throughput, TFLOPS (prefill is compute-bound).
    pub tflops: f64,
    /// Memory bandwidth, GB/s (decode is memory-bound).
    pub mem_bw_gbs: f64,
    /// Board power limit, watts.
    pub tdp_w: f64,
    /// Device memory, GB (determines how many GPUs a model needs).
    pub memory_gb: f64,
}

impl GpuPlatform {
    /// NVIDIA RTX 6000 Ada ("A6000 Ada" in the paper): 91 TFLOPS @ 300 W.
    pub fn a6000_ada() -> Self {
        GpuPlatform {
            name: "A6000 Ada".to_string(),
            tflops: 91.0,
            mem_bw_gbs: 960.0,
            tdp_w: 300.0,
            memory_gb: 48.0,
        }
    }

    /// NVIDIA L4: 31 TFLOPS @ 140 W (the paper's inference-class part).
    pub fn l4() -> Self {
        GpuPlatform {
            name: "L4".to_string(),
            tflops: 31.0,
            mem_bw_gbs: 300.0,
            tdp_w: 140.0,
            memory_gb: 24.0,
        }
    }
}

impl Default for GpuPlatform {
    fn default() -> Self {
        GpuPlatform::a6000_ada()
    }
}

/// An open-source LLM from the paper's evaluation (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct LlmModel {
    /// Model name used in reports.
    pub name: String,
    /// Parameter count in billions.
    pub params_b: f64,
}

impl LlmModel {
    /// Phi-1.5, 1.3B parameters.
    pub fn phi_1_5() -> Self {
        LlmModel {
            name: "Phi 1.5 (1.3B)".to_string(),
            params_b: 1.3,
        }
    }

    /// Gemma2-9B — the paper's reference inference model.
    pub fn gemma2_9b() -> Self {
        LlmModel {
            name: "Gemma2 (9B)".to_string(),
            params_b: 9.0,
        }
    }

    /// OPT-30B — the large model requiring two A6000 Ada GPUs.
    pub fn opt_30b() -> Self {
        LlmModel {
            name: "OPT (30B)".to_string(),
            params_b: 30.0,
        }
    }

    /// FP16 weight bytes.
    pub fn weight_bytes(&self) -> f64 {
        self.params_b * 1e9 * 2.0
    }

    /// Minimum number of `gpu`s needed to hold the weights plus ~40%
    /// activation/KV-cache headroom — reproduces the paper's placements
    /// (OPT-30B needs 2× A6000 Ada; Gemma2-9B needs 2× L4).
    pub fn gpus_required(&self, gpu: &GpuPlatform) -> usize {
        let need_gb = self.weight_bytes() * 1.4 / 1e9;
        (need_gb / gpu.memory_gb).ceil().max(1.0) as usize
    }
}

impl Default for LlmModel {
    fn default() -> Self {
        LlmModel::gemma2_9b()
    }
}

/// Calibrated LLM inference latency/energy model (prefill + decode) for a
/// model on one or more GPUs with tensor parallelism.
///
/// # Examples
///
/// ```
/// use hermes_perfmodel::{GpuPlatform, InferenceModel, LlmModel};
///
/// let inf = InferenceModel::new(LlmModel::gemma2_9b(), GpuPlatform::a6000_ada());
/// // Section 3 anchor: prefill 132 QPS at batch 32, 512 input tokens.
/// let qps = 32.0 / inf.prefill_latency(32, 512);
/// assert!((qps - 132.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceModel {
    llm: LlmModel,
    gpu: GpuPlatform,
    tensor_parallel: usize,
}

impl InferenceModel {
    /// Places `llm` on as many `gpu`s as its weights require.
    pub fn new(llm: LlmModel, gpu: GpuPlatform) -> Self {
        let tp = llm.gpus_required(&gpu);
        InferenceModel {
            llm,
            gpu,
            tensor_parallel: tp,
        }
    }

    /// Overrides the tensor-parallel degree (for the resource-scaling
    /// discussion in Takeaway 3).
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or too small to hold the model.
    pub fn with_tensor_parallel(mut self, tp: usize) -> Self {
        assert!(tp > 0, "tensor parallel degree must be positive");
        assert!(
            tp >= self.llm.gpus_required(&self.gpu),
            "model does not fit on {tp} GPUs"
        );
        self.tensor_parallel = tp;
        self
    }

    /// The model being served.
    pub fn llm(&self) -> &LlmModel {
        &self.llm
    }

    /// The GPU platform.
    pub fn gpu(&self) -> &GpuPlatform {
        &self.gpu
    }

    /// Number of GPUs used.
    pub fn num_gpus(&self) -> usize {
        self.tensor_parallel
    }

    /// Seconds to prefill a batch with `input_tokens` context each.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn prefill_latency(&self, batch: usize, input_tokens: u32) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let param_scale = (self.llm.params_b / cal::REF_PARAMS_B).powf(cal::PREFILL_PARAM_EXPONENT);
        let len_scale = input_tokens as f64 / cal::REF_INPUT_TOKENS;
        let batch_scale = (batch as f64 / cal::REF_BATCH).powf(cal::GPU_PREFILL_BATCH_EXPONENT);
        let gpu_scale = GpuPlatform::a6000_ada().tflops / self.gpu.tflops;
        let tp_speedup = (self.tensor_parallel as f64).powf(cal::TP_PREFILL_EXPONENT);
        cal::PREFILL_S_BATCH32 * param_scale * len_scale * batch_scale * gpu_scale / tp_speedup
    }

    /// Seconds to decode `tokens` output tokens for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn decode_latency(&self, batch: usize, tokens: u32) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let param_scale = (self.llm.params_b / cal::REF_PARAMS_B).powf(cal::DECODE_PARAM_EXPONENT);
        let len_scale = tokens as f64 / cal::REF_STRIDE_TOKENS;
        let batch_scale = (batch as f64 / cal::REF_BATCH).powf(cal::GPU_DECODE_BATCH_EXPONENT);
        let gpu_scale = GpuPlatform::a6000_ada().mem_bw_gbs / self.gpu.mem_bw_gbs;
        let tp_speedup = (self.tensor_parallel as f64).powf(cal::TP_DECODE_EXPONENT);
        cal::DECODE_STRIDE_S_BATCH32 * param_scale * len_scale * batch_scale * gpu_scale
            / tp_speedup
    }

    /// Board power during prefill, watts (all GPUs).
    pub fn prefill_power(&self) -> f64 {
        self.gpu.tdp_w * cal::GPU_PREFILL_POWER_FRACTION * self.tensor_parallel as f64
    }

    /// Board power during decode, watts (all GPUs).
    pub fn decode_power(&self) -> f64 {
        self.gpu.tdp_w * cal::GPU_DECODE_POWER_FRACTION * self.tensor_parallel as f64
    }

    /// Joules to prefill one batch.
    pub fn prefill_energy(&self, batch: usize, input_tokens: u32) -> f64 {
        self.prefill_power() * self.prefill_latency(batch, input_tokens)
    }

    /// Joules to decode `tokens` for one batch.
    pub fn decode_energy(&self, batch: usize, tokens: u32) -> f64 {
        self.decode_power() * self.decode_latency(batch, tokens)
    }
}

impl Default for InferenceModel {
    fn default() -> Self {
        InferenceModel::new(LlmModel::default(), GpuPlatform::default())
    }
}

/// The query encoder (BGE-large stand-in) used before every retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderModel {
    /// Seconds per batch of 32 queries.
    pub s_batch32: f64,
    /// Board power while encoding, watts.
    pub power_w: f64,
}

impl EncoderModel {
    /// The calibrated BGE-large encoder.
    pub fn bge_large() -> Self {
        EncoderModel {
            s_batch32: cal::ENCODE_S_BATCH32,
            power_w: cal::ENCODE_POWER_W,
        }
    }

    /// Seconds to encode a batch of queries.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn latency(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.s_batch32 * (batch as f64 / cal::REF_BATCH).powf(cal::ENCODE_BATCH_EXPONENT)
    }

    /// Joules to encode a batch.
    pub fn energy(&self, batch: usize) -> f64 {
        self.power_w * self.latency(batch)
    }
}

impl Default for EncoderModel {
    fn default() -> Self {
        EncoderModel::bge_large()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_anchor_matches_section_3() {
        let inf = InferenceModel::default();
        let qps = 32.0 / inf.prefill_latency(32, 512);
        assert!((qps - 132.0).abs() < 5.0, "{qps}");
    }

    #[test]
    fn decode_anchor_matches_section_3() {
        let inf = InferenceModel::default();
        let qps = 32.0 / inf.decode_latency(32, 16);
        assert!((qps - 67.0).abs() < 3.0, "{qps}");
    }

    #[test]
    fn prefill_energy_near_2_2_joules_per_query() {
        let inf = InferenceModel::default();
        let per_query = inf.prefill_energy(32, 512) / 32.0;
        assert!((per_query - 2.2).abs() < 0.2, "{per_query}");
    }

    #[test]
    fn opt_30b_needs_two_a6000() {
        assert_eq!(LlmModel::opt_30b().gpus_required(&GpuPlatform::a6000_ada()), 2);
    }

    #[test]
    fn gemma_needs_two_l4() {
        assert_eq!(LlmModel::gemma2_9b().gpus_required(&GpuPlatform::l4()), 2);
    }

    #[test]
    fn phi_fits_on_one_gpu() {
        assert_eq!(LlmModel::phi_1_5().gpus_required(&GpuPlatform::a6000_ada()), 1);
        assert_eq!(LlmModel::phi_1_5().gpus_required(&GpuPlatform::l4()), 1);
    }

    #[test]
    fn bigger_models_are_slower() {
        let gpu = GpuPlatform::a6000_ada();
        let phi = InferenceModel::new(LlmModel::phi_1_5(), gpu.clone());
        let gemma = InferenceModel::new(LlmModel::gemma2_9b(), gpu.clone());
        let opt = InferenceModel::new(LlmModel::opt_30b(), gpu);
        assert!(phi.decode_latency(32, 16) < gemma.decode_latency(32, 16));
        assert!(gemma.decode_latency(32, 16) < opt.decode_latency(32, 16));
    }

    #[test]
    fn l4_is_slower_than_a6000_for_gemma() {
        let a6000 = InferenceModel::new(LlmModel::gemma2_9b(), GpuPlatform::a6000_ada());
        let l4 = InferenceModel::new(LlmModel::gemma2_9b(), GpuPlatform::l4());
        assert!(l4.prefill_latency(32, 512) > a6000.prefill_latency(32, 512));
        // ... but draws less board power per GPU.
        assert!(GpuPlatform::l4().tdp_w < GpuPlatform::a6000_ada().tdp_w);
    }

    #[test]
    fn tensor_parallel_helps_latency_but_costs_power() {
        let base = InferenceModel::new(LlmModel::gemma2_9b(), GpuPlatform::a6000_ada());
        let tp2 = base.clone().with_tensor_parallel(2);
        assert!(tp2.prefill_latency(32, 512) < base.prefill_latency(32, 512));
        assert!(tp2.prefill_power() > base.prefill_power());
        // Diminishing returns: 2 GPUs give < 2x speedup (Takeaway 3).
        let speedup = base.prefill_latency(32, 512) / tp2.prefill_latency(32, 512);
        assert!(speedup < 2.0, "{speedup}");
    }

    #[test]
    fn prefill_scales_with_input_length() {
        let inf = InferenceModel::default();
        let short = inf.prefill_latency(32, 256);
        let long = inf.prefill_latency(32, 2048);
        assert!((long / short - 8.0).abs() < 0.5);
    }

    #[test]
    fn encoder_latency_grows_sublinearly_with_batch() {
        let e = EncoderModel::bge_large();
        let l32 = e.latency(32);
        let l128 = e.latency(128);
        assert!(l128 > l32);
        assert!(l128 < 4.0 * l32);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn undersized_tensor_parallel_rejected() {
        let _ = InferenceModel::new(LlmModel::opt_30b(), GpuPlatform::a6000_ada())
            .with_tensor_parallel(1);
    }
}
