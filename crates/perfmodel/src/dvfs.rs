//! Dynamic voltage/frequency scaling model (Figure 21).
//!
//! Hermes slows down under-loaded retrieval nodes: in *baseline* DVFS each
//! node stretches its search to the latency of the slowest node in the
//! batch; in *enhanced* DVFS every node stretches to the (pipelined)
//! inference latency, since finishing retrieval earlier than the GPU buys
//! nothing. Power follows `P(f) = P_max · (s + (1-s) · f^2.7)` with a
//! static floor `s`.


use crate::calibration as cal;

/// Frequency/power scaling for one CPU node.
///
/// # Examples
///
/// ```
/// use hermes_perfmodel::DvfsModel;
/// let dvfs = DvfsModel::default();
/// // Stretching a 0.8 s search into a 1.0 s budget saves energy.
/// let full = dvfs.energy(200.0, 0.8, 0.8);
/// let slowed = dvfs.energy(200.0, 0.8, 1.0);
/// assert!(slowed < full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsModel {
    /// Static (frequency-independent) fraction of peak power.
    pub static_fraction: f64,
    /// Exponent of the dynamic power term.
    pub power_exponent: f64,
    /// Lowest usable frequency fraction.
    pub min_freq_fraction: f64,
}

impl DvfsModel {
    /// Model with the calibrated defaults. The minimum frequency is the
    /// energy-optimal point of `P(f)/f` (below it, the static floor makes
    /// further stretching *cost* energy): `f* = (s / ((e-1)(1-s)))^(1/e)`
    /// ≈ 0.6 for the calibrated curve.
    pub fn new() -> Self {
        let s = cal::CPU_STATIC_FRACTION;
        let e = cal::DVFS_POWER_EXPONENT;
        let f_star = (s / ((e - 1.0) * (1.0 - s))).powf(1.0 / e);
        DvfsModel {
            static_fraction: s,
            power_exponent: e,
            min_freq_fraction: f_star.clamp(0.3, 0.9),
        }
    }

    /// Power at frequency fraction `f` given peak power, watts.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `(0, 1]`.
    pub fn power_at(&self, peak_watts: f64, f: f64) -> f64 {
        assert!(f > 0.0 && f <= 1.0, "frequency fraction out of range: {f}");
        peak_watts * (self.static_fraction + (1.0 - self.static_fraction) * f.powf(self.power_exponent))
    }

    /// The frequency fraction that stretches `work_s` (at full frequency)
    /// into `budget_s`, clamped to the usable range.
    pub fn frequency_for_budget(&self, work_s: f64, budget_s: f64) -> f64 {
        if budget_s <= 0.0 || work_s <= 0.0 {
            return 1.0;
        }
        (work_s / budget_s).clamp(self.min_freq_fraction, 1.0)
    }

    /// Joules to complete `work_s` of full-frequency work within
    /// `budget_s` (stretching when the budget allows).
    pub fn energy(&self, peak_watts: f64, work_s: f64, budget_s: f64) -> f64 {
        let f = self.frequency_for_budget(work_s, budget_s);
        let elapsed = work_s / f;
        self.power_at(peak_watts, f) * elapsed
    }

    /// Relative energy saving of stretching `work_s` into `budget_s`
    /// versus running at full frequency and idling (idle power = static
    /// floor) for the remainder of the budget.
    pub fn saving_vs_race_to_idle(&self, work_s: f64, budget_s: f64) -> f64 {
        if work_s <= 0.0 {
            return 0.0;
        }
        let budget = budget_s.max(work_s);
        let race = work_s + (budget - work_s) * self.static_fraction;
        let stretch = self.energy(1.0, work_s, budget);
        1.0 - stretch / race
    }
}

impl Default for DvfsModel {
    fn default() -> Self {
        DvfsModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_monotone_in_frequency() {
        let d = DvfsModel::default();
        let mut prev = 0.0;
        for i in 1..=10 {
            let p = d.power_at(200.0, i as f64 / 10.0);
            assert!(p > prev);
            prev = p;
        }
        assert_eq!(d.power_at(200.0, 1.0), 200.0);
    }

    #[test]
    fn no_budget_means_full_frequency() {
        let d = DvfsModel::default();
        assert_eq!(d.frequency_for_budget(1.0, 0.5), 1.0);
        assert_eq!(d.frequency_for_budget(1.0, 1.0), 1.0);
    }

    #[test]
    fn generous_budget_clamps_to_min_frequency() {
        let d = DvfsModel::default();
        assert_eq!(d.frequency_for_budget(0.1, 100.0), d.min_freq_fraction);
    }

    #[test]
    fn stretching_saves_energy_in_calibrated_range() {
        // Paper: baseline DVFS saves 10.1-14.5%; a ~20-25% stretch sits in
        // that band under the calibrated power curve.
        let d = DvfsModel::default();
        let saving = d.saving_vs_race_to_idle(0.8, 1.0);
        assert!((0.05..0.25).contains(&saving), "saving {saving}");
    }

    #[test]
    fn bigger_budgets_never_cost_more_energy() {
        let d = DvfsModel::default();
        let mut prev = f64::INFINITY;
        for budget in [1.0, 1.2, 1.5, 2.0, 3.0] {
            let e = d.energy(200.0, 1.0, budget);
            assert!(e <= prev + 1e-9, "budget {budget}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_frequency_rejected() {
        DvfsModel::default().power_at(100.0, 0.0);
    }
}
