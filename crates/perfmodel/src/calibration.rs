//! Calibration constants and the paper anchors they reproduce.
//!
//! The paper's own at-scale numbers come from its multi-node analysis tool
//! fed with single-node measurements. We seed the same tool with the
//! published measurements. Where the paper's numbers disagree with each
//! other (they come from different runs and configurations), we calibrate
//! to the *mutually consistent subset* below and record the residuals in
//! EXPERIMENTS.md:
//!
//! * Figure 4: IVF over 10B tokens, batch 128, `nProbe` 128 → **0.97 s /
//!   131 QPS**; HNSW → 0.40 s / 321 QPS; memory 71 GB vs 166 GB.
//! * Figure 6 (right): end-to-end latency at stride 16, 256 output
//!   tokens, batch 32 → **12.0 s @ 100M, 101.8 s @ 100B, 909.1 s @ 1T**.
//! * Figure 7: single CPU at 100B tokens → **5.69 QPS**, ≈**1124 J per
//!   batch**; 1T-token IVF-SQ8 index ≈ **10 TB**.
//! * Section 3: A6000 Ada + Gemma2-9B → prefill **132 QPS @ 2.2 J/query**,
//!   decode **67 QPS per 16-token stride**.
//!
//! Fitting those jointly gives a per-batch IVF retrieval latency of
//! `0.561 s × (tokens / 10B)` at batch 32 / `nProbe` 128 with a batch
//! exponent of 0.4: then batch 128 @ 10B = 0.561·4^0.4 ≈ 0.97 s (Fig 4),
//! batch 32 @ 100B = 5.61 s → 5.7 QPS and 200 W × 5.61 s ≈ 1122 J
//! (Fig 7), and 16 strides × 5.61 s + ~11 s of inference ≈ 101 s E2E at
//! 100B (Fig 6). The "5.62 s at 10B" reading of Figure 6's TTFT bar is
//! inconsistent with all three of those and is treated as the 100B point.

/// IVF-SQ8 retrieval seconds per batch of 32 queries per 10B tokens at
/// `nProbe` 128 on the reference CPU (Xeon Gold 6448Y, 32 cores).
pub const RETRIEVAL_S_PER_10B_BATCH32: f64 = 0.561;

/// Reference datastore size for the retrieval anchor.
pub const RETRIEVAL_REF_TOKENS: f64 = 10e9;

/// Reference batch size for CPU anchors.
pub const REF_BATCH: f64 = 32.0;

/// Latency grows as `(batch / 32)^0.4`: FAISS work-stealing overlaps
/// queries well, so QPS improves with batch (Fig 4: 0.97 s at batch 128
/// vs 0.561 s at batch 32).
pub const CPU_BATCH_EXPONENT: f64 = 0.4;

/// Reference `nProbe` for the retrieval anchor.
pub const REF_NPROBE: f64 = 128.0;

/// Fraction of search work independent of `nProbe` (centroid ranking,
/// result heap); the rest scales linearly with probed lists. Matches the
/// ≈9× sample-vs-deep latency gap of Figure 12 at nProbe 8 vs 128.
pub const NPROBE_FIXED_FRACTION: f64 = 0.05;

/// Per-batch latency floor (seconds) — dispatch and reduction overheads
/// keep tiny clusters from searching in zero time.
pub const RETRIEVAL_FLOOR_S: f64 = 0.002;

/// Mean package power of the reference CPU while searching, watts.
/// 200 W × 5.61 s ≈ 1122 J reproduces Figure 7's ≈1124 J per 100B-token
/// batch.
pub const CPU_SEARCH_POWER_W: f64 = 200.0;

/// CPU idle (static) power fraction of search power; used by the DVFS
/// model's floor.
pub const CPU_STATIC_FRACTION: f64 = 0.3;

/// Exponent of the dynamic-power/frequency relation `P_dyn ∝ f^2.7`
/// (voltage tracks frequency).
pub const DVFS_POWER_EXPONENT: f64 = 2.7;

/// A6000 Ada prefill: 132 QPS at batch 32, 512 input tokens, Gemma2-9B →
/// 0.242 s per batch.
pub const PREFILL_S_BATCH32: f64 = 32.0 / 132.0;

/// A6000 Ada decode: 67 QPS per 16-token stride at batch 32 → 0.478 s per
/// stride per batch.
pub const DECODE_STRIDE_S_BATCH32: f64 = 32.0 / 67.0;

/// Prefill is compute-bound: latency ≈ linear in batch.
pub const GPU_PREFILL_BATCH_EXPONENT: f64 = 0.95;

/// Decode is memory-bound: batching amortizes weight reads.
pub const GPU_DECODE_BATCH_EXPONENT: f64 = 0.5;

/// Prefill power ≈ full board power (2.2 J/query × 132 QPS ≈ 290 W on a
/// 300 W A6000 Ada).
pub const GPU_PREFILL_POWER_FRACTION: f64 = 0.97;

/// Decode utilization is lower (memory-bound).
pub const GPU_DECODE_POWER_FRACTION: f64 = 0.60;

/// BGE-large query encoding per batch of 32, seconds (fills the residual
/// between stage sums and Figure 6's 12.0 s E2E at 100M tokens).
pub const ENCODE_S_BATCH32: f64 = 0.15;

/// Encoder batch exponent.
pub const ENCODE_BATCH_EXPONENT: f64 = 0.6;

/// Encoder board power, watts.
pub const ENCODE_POWER_W: f64 = 100.0;

/// Reference model size (Gemma2-9B) in billions of parameters.
pub const REF_PARAMS_B: f64 = 9.0;

/// Reference input/output lengths.
pub const REF_INPUT_TOKENS: f64 = 512.0;
/// Tokens per retrieval stride at the reference point.
pub const REF_STRIDE_TOKENS: f64 = 16.0;

/// Prefill latency scales sub-linearly with parameter count (bigger
/// models use the GPU better).
pub const PREFILL_PARAM_EXPONENT: f64 = 0.9;

/// Decode latency scales ≈ linearly with parameter count (weight reads).
pub const DECODE_PARAM_EXPONENT: f64 = 1.0;

/// Tensor-parallel efficiency: speedup ≈ `tp^0.8` for prefill.
pub const TP_PREFILL_EXPONENT: f64 = 0.8;

/// Tensor-parallel efficiency for decode (communication-heavier).
pub const TP_DECODE_EXPONENT: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch128_retrieval_matches_figure_4() {
        let latency =
            RETRIEVAL_S_PER_10B_BATCH32 * (128.0f64 / REF_BATCH).powf(CPU_BATCH_EXPONENT);
        assert!((latency - 0.97).abs() < 0.03, "{latency}");
    }

    #[test]
    fn batch32_100b_matches_figure_7_qps_and_joules() {
        let latency = RETRIEVAL_S_PER_10B_BATCH32 * 10.0;
        let qps = 32.0 / latency;
        assert!((qps - 5.69).abs() < 0.2, "{qps}");
        let joules = CPU_SEARCH_POWER_W * latency;
        assert!((joules - 1124.0).abs() < 30.0, "{joules}");
    }

    #[test]
    fn prefill_anchor_matches_2_2_joules_per_query() {
        let joules_per_query = 300.0 * GPU_PREFILL_POWER_FRACTION * PREFILL_S_BATCH32 / 32.0;
        assert!((joules_per_query - 2.2).abs() < 0.1, "{joules_per_query}");
    }
}
