//! Zipf-distributed sampling for skewed topic popularity.

use hermes_math::rng::SeededRng;

/// Samples ranks `0..n` with probability `p(r) ∝ 1 / (r + 1)^s`.
///
/// Query topics in Natural Questions are heavily skewed — the paper's
/// Figure 13 shows some clusters accessed more than twice as often as
/// others. `s ≈ 0.8–1.1` reproduces that shape.
///
/// # Examples
///
/// ```
/// use hermes_datagen::ZipfSampler;
/// use hermes_math::rng::seeded_rng;
///
/// let zipf = ZipfSampler::new(10, 1.0);
/// let mut rng = seeded_rng(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len()`.
    pub fn mass(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let u: f64 = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_math::rng::seeded_rng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for r in 0..4 {
            assert!((z.mass(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_monotonically_decreasing() {
        let z = ZipfSampler::new(20, 1.0);
        for r in 1..20 {
            assert!(z.mass(r) <= z.mass(r - 1));
        }
    }

    #[test]
    fn empirical_frequencies_track_mass() {
        let z = ZipfSampler::new(8, 1.0);
        let mut rng = seeded_rng(99);
        let mut counts = [0usize; 8];
        let n = 40_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!((emp - z.mass(r)).abs() < 0.02, "rank {r}: {emp} vs {}", z.mass(r));
        }
    }

    #[test]
    fn masses_sum_to_one() {
        let z = ZipfSampler::new(13, 0.7);
        let total: f64 = (0..13).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_varies_across_seeds() {
        let z = ZipfSampler::new(16, 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = seeded_rng(seed);
            (0..64).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(5), draw(5), "same seed must replay the same trace");
        assert_ne!(draw(5), draw(6), "distinct seeds should decorrelate");
    }

    #[test]
    fn mass_ratios_follow_the_power_law() {
        // p(r) ∝ 1/(r+1)^s, so mass(0)/mass(1) = 2^s exactly.
        for s in [0.5, 0.8, 1.0, 1.5] {
            let z = ZipfSampler::new(32, s);
            let want = 2f64.powf(s);
            let got = z.mass(0) / z.mass(1);
            assert!((got - want).abs() < 1e-9, "s={s}: {got} vs {want}");
            // Head concentration grows with the exponent.
        }
        let flat = ZipfSampler::new(32, 0.5);
        let steep = ZipfSampler::new(32, 1.5);
        assert!(steep.mass(0) > flat.mass(0));
        assert!(steep.mass(31) < flat.mass(31));
    }
}
