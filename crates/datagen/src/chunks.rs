//! Deterministic synthetic document chunks for the RAG augmentation step.
//!
//! The retrieval stack operates on vectors; the *pipeline* additionally
//! needs the mapping `document id -> text chunk` (paper Figure 3). Real
//! chunk text is irrelevant to every measured quantity, so chunks are
//! synthesized deterministically from the id.


/// A retrieved document chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Global document id.
    pub id: u64,
    /// Synthetic chunk body.
    pub text: String,
    /// Token count charged to the LLM context when this chunk is
    /// prepended.
    pub tokens: u32,
}

/// Maps document ids to synthetic fixed-length chunks.
///
/// # Examples
///
/// ```
/// use hermes_datagen::ChunkStore;
/// let store = ChunkStore::new(100);
/// let chunk = store.chunk(42);
/// assert_eq!(chunk.tokens, 100);
/// assert_eq!(store.chunk(42), chunk); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStore {
    chunk_tokens: u32,
}

impl ChunkStore {
    /// Creates a store emitting `chunk_tokens`-token chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens == 0`.
    pub fn new(chunk_tokens: u32) -> Self {
        assert!(chunk_tokens > 0, "chunks need tokens");
        ChunkStore { chunk_tokens }
    }

    /// Tokens per chunk.
    pub fn chunk_tokens(&self) -> u32 {
        self.chunk_tokens
    }

    /// Fetches the chunk for `id`.
    pub fn chunk(&self, id: u64) -> Chunk {
        // One synthetic "word" per token keeps token accounting exact.
        let mut text = String::with_capacity(self.chunk_tokens as usize * 8);
        let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in 0..self.chunk_tokens {
            if i > 0 {
                text.push(' ');
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            text.push_str(WORDS[(state % WORDS.len() as u64) as usize]);
        }
        Chunk {
            id,
            text,
            tokens: self.chunk_tokens,
        }
    }

    /// Fetches several chunks, preserving order.
    pub fn chunks(&self, ids: &[u64]) -> Vec<Chunk> {
        ids.iter().map(|&id| self.chunk(id)).collect()
    }
}

const WORDS: &[&str] = &[
    "retrieval", "datastore", "cluster", "index", "query", "vector", "token",
    "context", "search", "probe", "centroid", "latency", "energy", "batch",
    "stride", "document", "embedding", "sample", "rank", "augment",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_deterministic_per_id() {
        let store = ChunkStore::new(32);
        assert_eq!(store.chunk(7), store.chunk(7));
        assert_ne!(store.chunk(7).text, store.chunk(8).text);
    }

    #[test]
    fn token_count_matches_word_count() {
        let store = ChunkStore::new(16);
        let c = store.chunk(3);
        assert_eq!(c.text.split(' ').count(), 16);
        assert_eq!(c.tokens, 16);
    }

    #[test]
    fn batch_fetch_preserves_order() {
        let store = ChunkStore::new(8);
        let got = store.chunks(&[5, 1, 9]);
        assert_eq!(got.iter().map(|c| c.id).collect::<Vec<_>>(), vec![5, 1, 9]);
    }

    #[test]
    #[should_panic(expected = "tokens")]
    fn zero_token_chunks_rejected() {
        let _ = ChunkStore::new(0);
    }
}
