//! Synthetic topical corpus generation (the Common Crawl / SPHERE
//! stand-in).

use hermes_math::distance::normalize;
use hermes_math::rng::{derive_seed, seeded_rng};
use hermes_math::Mat;

use crate::zipf::ZipfSampler;

/// Parameters of the Gaussian topic-mixture corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Number of document embeddings to generate.
    pub num_docs: usize,
    /// Embedding dimensionality (the paper's BGE-large setup is 768; tests
    /// use smaller dims for speed).
    pub dim: usize,
    /// Number of latent topics; K-means disaggregation can recover up to
    /// this many coherent clusters.
    pub num_topics: usize,
    /// Intra-topic Gaussian noise relative to unit topic separation.
    /// Small values give crisp clusters (easy routing); large values blur
    /// topic boundaries.
    pub topic_spread: f32,
    /// Zipf exponent for topic sizes (0 = equal-size topics). Nonzero
    /// values produce the natural size imbalance of Figure 13 (left).
    pub topic_size_skew: f64,
    /// Whether to L2-normalize document embeddings (encoder stand-ins emit
    /// unit vectors, matching BGE-style encoders).
    pub normalized: bool,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// A reasonable default corpus: crisp topics, mild size skew,
    /// normalized embeddings.
    pub fn new(num_docs: usize, dim: usize, num_topics: usize) -> Self {
        CorpusSpec {
            num_docs,
            dim,
            num_topics,
            topic_spread: 0.25,
            topic_size_skew: 0.3,
            normalized: true,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the intra-topic spread.
    pub fn with_spread(mut self, spread: f32) -> Self {
        self.topic_spread = spread;
        self
    }

    /// Sets the topic-size Zipf exponent.
    pub fn with_size_skew(mut self, skew: f64) -> Self {
        self.topic_size_skew = skew;
        self
    }
}

/// A generated corpus: embeddings plus the latent topic labels (used only
/// for diagnostics — the retrieval stack never sees them).
#[derive(Debug, Clone)]
pub struct Corpus {
    spec: CorpusSpec,
    embeddings: Mat,
    topic_of: Vec<u32>,
    topic_centroids: Mat,
}

impl Corpus {
    /// Generates a corpus according to `spec`.
    ///
    /// Topic centroids are random unit directions; documents are centroid
    /// plus isotropic Gaussian noise of scale `topic_spread`.
    ///
    /// # Panics
    ///
    /// Panics if `num_docs`, `dim` or `num_topics` is zero.
    pub fn generate(spec: CorpusSpec) -> Self {
        assert!(spec.num_docs > 0, "corpus needs documents");
        assert!(spec.dim > 0, "corpus needs dimensions");
        assert!(spec.num_topics > 0, "corpus needs topics");

        let mut topic_rng = seeded_rng(derive_seed(spec.seed, 1));
        let mut centroid_rows = Vec::with_capacity(spec.num_topics);
        for _ in 0..spec.num_topics {
            let mut c: Vec<f32> = (0..spec.dim)
                .map(|_| gaussian(&mut topic_rng))
                .collect();
            normalize(&mut c);
            centroid_rows.push(c);
        }
        let topic_centroids = Mat::from_rows(&centroid_rows);

        let zipf = ZipfSampler::new(spec.num_topics, spec.topic_size_skew);
        let mut doc_rng = seeded_rng(derive_seed(spec.seed, 2));
        let mut rows = Vec::with_capacity(spec.num_docs);
        let mut topic_of = Vec::with_capacity(spec.num_docs);
        for _ in 0..spec.num_docs {
            let t = zipf.sample(&mut doc_rng);
            let centroid = topic_centroids.row(t);
            let mut v: Vec<f32> = centroid
                .iter()
                .map(|&x| x + gaussian(&mut doc_rng) * spec.topic_spread)
                .collect();
            if spec.normalized {
                normalize(&mut v);
            }
            rows.push(v);
            topic_of.push(t as u32);
        }

        Corpus {
            spec,
            embeddings: Mat::from_rows(&rows),
            topic_of,
            topic_centroids,
        }
    }

    /// The generation parameters.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Document embeddings, one per row.
    pub fn embeddings(&self) -> &Mat {
        &self.embeddings
    }

    /// Latent topic of each document (diagnostics only).
    pub fn topic_of(&self) -> &[u32] {
        &self.topic_of
    }

    /// The latent topic centroids (diagnostics only).
    pub fn topic_centroids(&self) -> &Mat {
        &self.topic_centroids
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.embeddings.rows()
    }

    /// Whether the corpus is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Documents per topic.
    pub fn topic_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.spec.num_topics];
        for &t in &self.topic_of {
            sizes[t as usize] += 1;
        }
        sizes
    }
}

/// Standard normal via Box–Muller.
pub(crate) fn gaussian(rng: &mut hermes_math::rng::SeededRng) -> f32 {
    let u1: f32 = rng.next_f32().max(1e-7);
    let u2: f32 = rng.next_f32();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_math::distance::{cosine, norm};

    #[test]
    fn corpus_has_requested_shape() {
        let c = Corpus::generate(CorpusSpec::new(200, 16, 5).with_seed(1));
        assert_eq!(c.len(), 200);
        assert_eq!(c.embeddings().cols(), 16);
        assert_eq!(c.topic_of().len(), 200);
        assert_eq!(c.topic_centroids().rows(), 5);
    }

    #[test]
    fn normalized_corpus_has_unit_vectors() {
        let c = Corpus::generate(CorpusSpec::new(50, 8, 3).with_seed(2));
        for row in c.embeddings().iter_rows() {
            assert!((norm(row) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn documents_are_closer_to_own_topic_centroid() {
        let c = Corpus::generate(
            CorpusSpec::new(300, 32, 4).with_seed(3).with_spread(0.15),
        );
        let mut correct = 0;
        for (i, row) in c.embeddings().iter_rows().enumerate() {
            let own = c.topic_of()[i] as usize;
            let best = (0..4)
                .max_by(|&a, &b| {
                    cosine(row, c.topic_centroids().row(a))
                        .partial_cmp(&cosine(row, c.topic_centroids().row(b)))
                        .unwrap()
                })
                .unwrap();
            if best == own {
                correct += 1;
            }
        }
        assert!(correct > 280, "only {correct}/300 docs nearest own topic");
    }

    #[test]
    fn size_skew_produces_imbalanced_topics() {
        let skewed = Corpus::generate(
            CorpusSpec::new(2000, 4, 8).with_seed(4).with_size_skew(1.0),
        );
        let flat = Corpus::generate(
            CorpusSpec::new(2000, 4, 8).with_seed(4).with_size_skew(0.0),
        );
        let imb = |c: &Corpus| {
            let s = c.topic_sizes();
            *s.iter().max().unwrap() as f64 / (*s.iter().min().unwrap()).max(1) as f64
        };
        assert!(imb(&skewed) > imb(&flat));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusSpec::new(64, 8, 3).with_seed(9));
        let b = Corpus::generate(CorpusSpec::new(64, 8, 3).with_seed(9));
        assert_eq!(a.embeddings().as_slice(), b.embeddings().as_slice());
        assert_eq!(a.topic_of(), b.topic_of());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusSpec::new(64, 8, 3).with_seed(1));
        let b = Corpus::generate(CorpusSpec::new(64, 8, 3).with_seed(2));
        assert_ne!(a.embeddings().as_slice(), b.embeddings().as_slice());
    }

    #[test]
    fn topic_sizes_sum_to_corpus_size() {
        let c = Corpus::generate(CorpusSpec::new(123, 4, 7).with_seed(5));
        assert_eq!(c.topic_sizes().iter().sum::<usize>(), 123);
    }
}
