//! Query workload generation (the TriviaQA / Natural Questions stand-in).

use hermes_math::distance::normalize;
use hermes_math::rng::{derive_seed, seeded_rng};
use hermes_math::Mat;

use crate::corpus::{gaussian, Corpus};
use crate::zipf::ZipfSampler;

/// Parameters of a synthetic query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Number of queries.
    pub num_queries: usize,
    /// Zipf exponent of query interest over topics. NQ-style workloads are
    /// skewed (~1.0): most questions hit a few popular topics, producing
    /// Figure 13's access-frequency imbalance.
    pub topic_interest_skew: f64,
    /// Query noise around the topic centroid, relative to unit separation.
    /// Larger values make routing harder (queries straddle clusters).
    pub query_spread: f32,
    /// RNG seed.
    pub seed: u64,
}

impl QuerySpec {
    /// NQ-like defaults: skew 1.0, spread 0.35.
    pub fn new(num_queries: usize) -> Self {
        QuerySpec {
            num_queries,
            topic_interest_skew: 1.0,
            query_spread: 0.35,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the topic-interest Zipf exponent.
    pub fn with_interest_skew(mut self, skew: f64) -> Self {
        self.topic_interest_skew = skew;
        self
    }

    /// Sets the query spread.
    pub fn with_spread(mut self, spread: f32) -> Self {
        self.query_spread = spread;
        self
    }
}

/// A generated query workload tied to a [`Corpus`]'s topic space.
#[derive(Debug, Clone)]
pub struct QuerySet {
    embeddings: Mat,
    topic_of: Vec<u32>,
}

impl QuerySet {
    /// Draws queries around the topics of `corpus` according to `spec`.
    ///
    /// Topic ranks are permuted per seed so "popular" topics differ across
    /// workloads, then sampled with Zipf skew.
    ///
    /// # Panics
    ///
    /// Panics if `spec.num_queries == 0`.
    pub fn generate(corpus: &Corpus, spec: QuerySpec) -> Self {
        assert!(spec.num_queries > 0, "workload needs queries");
        let num_topics = corpus.topic_centroids().rows();
        let zipf = ZipfSampler::new(num_topics, spec.topic_interest_skew);

        // Permute which topics are popular, seeded independently from the
        // corpus so workload shape and data shape decouple.
        let mut perm: Vec<usize> = (0..num_topics).collect();
        {
            seeded_rng(derive_seed(spec.seed, 10)).shuffle(&mut perm);
        }

        let mut rng = seeded_rng(derive_seed(spec.seed, 11));
        let normalized = corpus.spec().normalized;
        let mut rows = Vec::with_capacity(spec.num_queries);
        let mut topic_of = Vec::with_capacity(spec.num_queries);
        for _ in 0..spec.num_queries {
            let t = perm[zipf.sample(&mut rng)];
            let centroid = corpus.topic_centroids().row(t);
            let mut v: Vec<f32> = centroid
                .iter()
                .map(|&x| x + gaussian(&mut rng) * spec.query_spread)
                .collect();
            if normalized {
                normalize(&mut v);
            }
            rows.push(v);
            topic_of.push(t as u32);
        }
        QuerySet {
            embeddings: Mat::from_rows(&rows),
            topic_of,
        }
    }

    /// Query embeddings, one per row.
    pub fn embeddings(&self) -> &Mat {
        &self.embeddings
    }

    /// Latent topic of each query (diagnostics only).
    pub fn topic_of(&self) -> &[u32] {
        &self.topic_of
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.embeddings.rows()
    }

    /// Whether the workload is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queries as owned vectors — the shape the index batch APIs take.
    pub fn to_vecs(&self) -> Vec<Vec<f32>> {
        self.embeddings.iter_rows().map(|r| r.to_vec()).collect()
    }

    /// Splits the workload into batches of `batch_size` (last batch may be
    /// short).
    pub fn batches(&self, batch_size: usize) -> Vec<Vec<Vec<f32>>> {
        let vecs = self.to_vecs();
        vecs.chunks(batch_size.max(1)).map(<[Vec<f32>]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use hermes_math::distance::cosine;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusSpec::new(200, 16, 6).with_seed(1))
    }

    #[test]
    fn workload_has_requested_size() {
        let c = corpus();
        let q = QuerySet::generate(&c, QuerySpec::new(40).with_seed(2));
        assert_eq!(q.len(), 40);
        assert_eq!(q.embeddings().cols(), 16);
    }

    #[test]
    fn queries_align_with_their_topic() {
        let c = corpus();
        let q = QuerySet::generate(&c, QuerySpec::new(60).with_seed(3).with_spread(0.1));
        let mut correct = 0;
        for (i, row) in q.embeddings().iter_rows().enumerate() {
            let own = q.topic_of()[i] as usize;
            let best = (0..6)
                .max_by(|&a, &b| {
                    cosine(row, c.topic_centroids().row(a))
                        .partial_cmp(&cosine(row, c.topic_centroids().row(b)))
                        .unwrap()
                })
                .unwrap();
            if best == own {
                correct += 1;
            }
        }
        assert!(correct > 54, "only {correct}/60 queries nearest own topic");
    }

    #[test]
    fn interest_skew_concentrates_queries() {
        let c = corpus();
        let skewed = QuerySet::generate(&c, QuerySpec::new(600).with_seed(4).with_interest_skew(1.5));
        let uniform = QuerySet::generate(&c, QuerySpec::new(600).with_seed(4).with_interest_skew(0.0));
        let top_share = |q: &QuerySet| {
            let mut counts = [0usize; 6];
            for &t in q.topic_of() {
                counts[t as usize] += 1;
            }
            *counts.iter().max().unwrap() as f64 / 600.0
        };
        assert!(top_share(&skewed) > top_share(&uniform));
    }

    #[test]
    fn batches_cover_all_queries() {
        let c = corpus();
        let q = QuerySet::generate(&c, QuerySpec::new(25).with_seed(5));
        let batches = q.batches(8);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 25);
        assert_eq!(batches[3].len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let a = QuerySet::generate(&c, QuerySpec::new(10).with_seed(6));
        let b = QuerySet::generate(&c, QuerySpec::new(10).with_seed(6));
        assert_eq!(a.embeddings().as_slice(), b.embeddings().as_slice());
    }
}
