//! Token-scale accounting: maps datastore sizes in tokens (the unit the
//! paper reports: 100M … 1T) to chunk counts and index bytes.


/// Describes a datastore by its token count, chunking and embedding width.
///
/// The paper's setup: ~100 tokens per chunk (10B tokens over 100M document
/// chunks, Figure 4) and d=768 BGE-large embeddings stored SQ8 (1 byte per
/// dimension) giving ≈71 GB per 10B tokens and ≈10 TB at 1T (Figure 7).
///
/// # Examples
///
/// ```
/// use hermes_datagen::DatastoreScale;
/// let ds = DatastoreScale::new(10_000_000_000, 100, 768);
/// assert_eq!(ds.num_chunks(), 100_000_000);
/// let gb = ds.index_bytes_sq8() as f64 / 1e9;
/// assert!(gb > 70.0 && gb < 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatastoreScale {
    /// Total datastore size in tokens.
    pub tokens: u64,
    /// Tokens per document chunk.
    pub chunk_tokens: u32,
    /// Embedding dimensionality.
    pub dim: u32,
}

impl DatastoreScale {
    /// Creates a scale descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens` or `dim` is zero.
    pub fn new(tokens: u64, chunk_tokens: u32, dim: u32) -> Self {
        assert!(chunk_tokens > 0, "chunks need tokens");
        assert!(dim > 0, "embeddings need dimensions");
        DatastoreScale {
            tokens,
            chunk_tokens,
            dim,
        }
    }

    /// The paper's configuration: 100-token chunks, 768-dim embeddings.
    pub fn paper(tokens: u64) -> Self {
        DatastoreScale::new(tokens, 100, 768)
    }

    /// Number of document chunks (= vectors in the index).
    pub fn num_chunks(&self) -> u64 {
        self.tokens / self.chunk_tokens as u64
    }

    /// Index bytes with SQ8 storage: codes (1 B/dim) + ids (8 B) + ~5%
    /// coarse-quantizer/list overhead.
    pub fn index_bytes_sq8(&self) -> u64 {
        let per_vec = self.dim as u64 + 8;
        let raw = self.num_chunks() * per_vec;
        raw + raw / 20
    }

    /// Index bytes with HNSW-fp16 storage: vectors (2 B/dim) + graph links
    /// (≈2·M·4 B with M=16, counting both directions) + ids. Calibrated to
    /// the paper's Figure 4 ratio of ≈2.3× over IVF-SQ8.
    pub fn index_bytes_hnsw(&self) -> u64 {
        let links = 2 * 16 * 4;
        let per_vec = 2 * self.dim as u64 + links + 8;
        self.num_chunks() * per_vec
    }

    /// Index bytes with flat f32 storage.
    pub fn index_bytes_flat(&self) -> u64 {
        self.num_chunks() * (4 * self.dim as u64 + 8)
    }

    /// Splits the datastore into `n` equal shards (token counts; the last
    /// shard absorbs the remainder).
    pub fn split(&self, n: usize) -> Vec<DatastoreScale> {
        assert!(n > 0, "cannot split into zero shards");
        let base = self.tokens / n as u64;
        (0..n)
            .map(|i| {
                let extra = if i == n - 1 { self.tokens % n as u64 } else { 0 };
                DatastoreScale::new(base + extra, self.chunk_tokens, self.dim)
            })
            .collect()
    }
}

impl std::fmt::Display for DatastoreScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", format_tokens(self.tokens))
    }
}

/// Human-readable token count ("100M", "10B", "1T") used in every bench
/// table.
pub fn format_tokens(tokens: u64) -> String {
    const T: u64 = 1_000_000_000_000;
    const B: u64 = 1_000_000_000;
    const M: u64 = 1_000_000;
    const K: u64 = 1_000;
    let (div, suffix) = if tokens >= T {
        (T, "T")
    } else if tokens >= B {
        (B, "B")
    } else if tokens >= M {
        (M, "M")
    } else if tokens >= K {
        (K, "K")
    } else {
        (1, "")
    };
    let whole = tokens / div;
    let frac = (tokens % div) * 10 / div;
    if frac == 0 {
        format!("{whole}{suffix}")
    } else {
        format!("{whole}.{frac}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_math_matches_paper_figure_4() {
        // 10B tokens over 100-token chunks = 100M vectors.
        let ds = DatastoreScale::paper(10_000_000_000);
        assert_eq!(ds.num_chunks(), 100_000_000);
    }

    #[test]
    fn sq8_bytes_near_71_gb_at_10b_tokens() {
        let ds = DatastoreScale::paper(10_000_000_000);
        let gb = ds.index_bytes_sq8() as f64 / 1e9;
        assert!((71.0..90.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn hnsw_to_ivf_memory_ratio_near_2_3() {
        let ds = DatastoreScale::paper(10_000_000_000);
        let ratio = ds.index_bytes_hnsw() as f64 / ds.index_bytes_sq8() as f64;
        assert!((1.9..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn trillion_tokens_near_10_tb() {
        let ds = DatastoreScale::paper(1_000_000_000_000);
        let tb = ds.index_bytes_sq8() as f64 / 1e12;
        assert!((7.0..11.0).contains(&tb), "{tb} TB");
    }

    #[test]
    fn split_preserves_total_tokens() {
        let ds = DatastoreScale::paper(100_000_000_003);
        let shards = ds.split(10);
        assert_eq!(shards.len(), 10);
        assert_eq!(shards.iter().map(|s| s.tokens).sum::<u64>(), ds.tokens);
    }

    #[test]
    fn format_tokens_uses_si_suffixes() {
        assert_eq!(format_tokens(100_000_000), "100M");
        assert_eq!(format_tokens(10_000_000_000), "10B");
        assert_eq!(format_tokens(1_000_000_000_000), "1T");
        assert_eq!(format_tokens(1_500_000_000), "1.5B");
        assert_eq!(format_tokens(512), "512");
    }

    #[test]
    fn display_matches_format_tokens() {
        assert_eq!(DatastoreScale::paper(10_000_000_000).to_string(), "10B");
    }
}
