//! Temporal query streams — the cache-facing view of a workload.
//!
//! [`QuerySet`](crate::QuerySet) captures *what* users ask (topic mix,
//! spread); this module captures *when they ask it again*. A semantic
//! cache only pays off under temporal locality, so the `ext_adaptive`
//! benchmark needs workloads whose repetition structure is a knob:
//!
//! * [`StreamKind::Repeated`] — exact resubmission of popular queries
//!   with Zipf frequency (the Figure 13 skew applied to *queries*, not
//!   topics). Upper bound for an exact-match cache.
//! * [`StreamKind::Bursty`] — a trending query is asked many times in a
//!   row by different users, each phrasing it slightly differently
//!   (small jitter). Exercises the near-duplicate semantic layer.
//! * [`StreamKind::Drifting`] — interest moves on: each burst jitters
//!   around a pool query, and the anchor itself advances through the
//!   pool so old entries stop matching. Worst case for a cache sized
//!   below the working set.
//!
//! Streams are pure functions of `(pool, spec)` — the same seed always
//! replays the same byte-identical trace, so cache hit rates measured
//! by the bench are reproducible.

use hermes_math::rng::{derive_seed, seeded_rng, SeededRng};

use crate::corpus::gaussian;
use crate::query::QuerySet;
use crate::zipf::ZipfSampler;

/// Repetition structure of a [`query_stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamKind {
    /// Resubmit pool queries verbatim with Zipf(`skew`) popularity.
    Repeated {
        /// Zipf exponent over pool queries (0 = uniform).
        skew: f64,
    },
    /// Runs of `burst` near-duplicates (`jitter` noise per coordinate)
    /// around Zipf-popular pool queries.
    Bursty {
        /// Queries per burst.
        burst: usize,
        /// Per-coordinate Gaussian jitter within a burst.
        jitter: f32,
        /// Zipf exponent picking each burst's anchor.
        skew: f64,
    },
    /// Bursts whose anchor walks forward through the pool, so the
    /// popular set keeps changing.
    Drifting {
        /// Queries per anchor before interest moves on.
        dwell: usize,
        /// Per-coordinate Gaussian jitter around the current anchor.
        jitter: f32,
    },
}

/// Parameters of a temporal query stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Total queries emitted.
    pub length: usize,
    /// Repetition structure.
    pub kind: StreamKind,
    /// RNG seed.
    pub seed: u64,
}

impl StreamSpec {
    /// A repeated-query stream with NQ-like skew 1.0.
    pub fn repeated(length: usize) -> Self {
        StreamSpec {
            length,
            kind: StreamKind::Repeated { skew: 1.0 },
            seed: 0,
        }
    }

    /// A bursty stream: bursts of 8 near-duplicates, jitter 1e-3.
    pub fn bursty(length: usize) -> Self {
        StreamSpec {
            length,
            kind: StreamKind::Bursty {
                burst: 8,
                jitter: 1e-3,
                skew: 1.0,
            },
            seed: 0,
        }
    }

    /// A drifting stream: dwell 8 per anchor, paraphrase-scale jitter
    /// 0.03 — wide enough that followers usually fall outside a tight
    /// semantic threshold, so the drift defeats both cache layers.
    pub fn drifting(length: usize) -> Self {
        StreamSpec {
            length,
            kind: StreamKind::Drifting {
                dwell: 8,
                jitter: 0.03,
            },
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the repetition structure.
    pub fn with_kind(mut self, kind: StreamKind) -> Self {
        self.kind = kind;
        self
    }
}

/// Emits a temporal stream of `spec.length` queries over `pool`.
///
/// # Panics
///
/// Panics if `spec.length == 0`, or on a `Bursty`/`Drifting` kind with
/// a zero burst/dwell.
///
/// # Examples
///
/// ```
/// use hermes_datagen::{query_stream, Corpus, CorpusSpec, QuerySet, QuerySpec, StreamSpec};
///
/// let corpus = Corpus::generate(CorpusSpec::new(100, 8, 4).with_seed(1));
/// let pool = QuerySet::generate(&corpus, QuerySpec::new(10).with_seed(2));
/// let stream = query_stream(&pool, StreamSpec::repeated(50).with_seed(3));
/// assert_eq!(stream.len(), 50);
/// ```
pub fn query_stream(pool: &QuerySet, spec: StreamSpec) -> Vec<Vec<f32>> {
    assert!(spec.length > 0, "stream needs queries");
    let mut rng = seeded_rng(derive_seed(spec.seed, 20));
    match spec.kind {
        StreamKind::Repeated { skew } => {
            let zipf = ZipfSampler::new(pool.len(), skew);
            (0..spec.length)
                .map(|_| pool.embeddings().row(zipf.sample(&mut rng)).to_vec())
                .collect()
        }
        StreamKind::Bursty {
            burst,
            jitter,
            skew,
        } => {
            assert!(burst > 0, "burst must be positive");
            let zipf = ZipfSampler::new(pool.len(), skew);
            let mut out = Vec::with_capacity(spec.length);
            while out.len() < spec.length {
                let anchor = pool.embeddings().row(zipf.sample(&mut rng));
                // First ask is verbatim; followers jitter around it.
                out.push(anchor.to_vec());
                for _ in 1..burst {
                    if out.len() == spec.length {
                        break;
                    }
                    out.push(jittered(anchor, jitter, &mut rng));
                }
            }
            out
        }
        StreamKind::Drifting { dwell, jitter } => {
            assert!(dwell > 0, "dwell must be positive");
            let mut out = Vec::with_capacity(spec.length);
            let mut anchor = 0usize;
            while out.len() < spec.length {
                let row = pool.embeddings().row(anchor % pool.len());
                out.push(row.to_vec());
                for _ in 1..dwell {
                    if out.len() == spec.length {
                        break;
                    }
                    out.push(jittered(row, jitter, &mut rng));
                }
                anchor += 1;
            }
            out
        }
    }
}

fn jittered(anchor: &[f32], jitter: f32, rng: &mut SeededRng) -> Vec<f32> {
    anchor.iter().map(|&x| x + gaussian(rng) * jitter).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusSpec};
    use crate::query::QuerySpec;
    use hermes_math::distance::cosine;

    fn pool() -> QuerySet {
        let corpus = Corpus::generate(CorpusSpec::new(200, 12, 5).with_seed(7));
        QuerySet::generate(&corpus, QuerySpec::new(16).with_seed(8))
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let p = pool();
        for spec in [
            StreamSpec::repeated(40).with_seed(9),
            StreamSpec::bursty(40).with_seed(9),
            StreamSpec::drifting(40).with_seed(9),
        ] {
            let a = query_stream(&p, spec);
            let b = query_stream(&p, spec);
            assert_eq!(a, b, "{:?}", spec.kind);
            assert_eq!(a.len(), 40);
        }
    }

    #[test]
    fn repeated_stream_resubmits_verbatim() {
        let p = pool();
        let stream = query_stream(&p, StreamSpec::repeated(100).with_seed(10));
        let rows: Vec<&[f32]> = p.embeddings().iter_rows().collect();
        for q in &stream {
            assert!(rows.iter().any(|r| *r == q.as_slice()));
        }
        // Zipf skew means some query repeats exactly.
        let mut counts = vec![0usize; rows.len()];
        for q in &stream {
            let i = rows.iter().position(|r| *r == q.as_slice()).unwrap();
            counts[i] += 1;
        }
        assert!(counts.iter().any(|&c| c > 1), "no repetition at length 100");
    }

    #[test]
    fn bursty_stream_runs_are_near_duplicates() {
        let p = pool();
        let spec = StreamSpec::bursty(32).with_seed(11);
        let stream = query_stream(&p, spec);
        // Each burst of 8 stays within tight cosine of its anchor.
        for chunk in stream.chunks(8) {
            for q in chunk {
                assert!(cosine(&chunk[0], q) > 0.999, "burst member drifted");
            }
        }
    }

    #[test]
    fn drifting_stream_changes_anchor() {
        let p = pool();
        let spec = StreamSpec::drifting(32).with_seed(12);
        let stream = query_stream(&p, spec);
        // Consecutive dwell blocks anchor on different pool queries.
        assert_ne!(stream[0], stream[8]);
        assert_eq!(stream[0].as_slice(), p.embeddings().row(0));
        assert_eq!(stream[8].as_slice(), p.embeddings().row(1));
    }

    #[test]
    #[should_panic(expected = "stream needs queries")]
    fn empty_stream_panics() {
        let p = pool();
        let _ = query_stream(&p, StreamSpec::repeated(0));
    }
}
