//! Arrival-process generation for open-loop serving workloads.
//!
//! The serving layer (`hermes-serve`), the queueing simulator
//! (`hermes_sim::queueing`) and the serving-oracle tests all consume the
//! *same* seeded Poisson arrival streams: the simulator predicts tail
//! latency for an arrival trace, the server is driven by the identical
//! trace, and the oracle test asserts the two agree. Centralizing the
//! sampling here guarantees "identical" means bit-identical — one
//! formula, one RNG stream.
//!
//! Times are produced both as `f64` seconds (the simulator's native
//! unit) and as `u64` nanoseconds (the serving layer's clock unit); the
//! nanosecond stream is the seconds stream rounded once per arrival, so
//! the two never drift by more than a nanosecond per event.

use hermes_math::rng::{seeded_rng, SeededRng};

/// One exponential inter-arrival gap for a Poisson process of rate
/// `rate_per_s`, in seconds. This is the exact draw
/// `hermes_sim::queueing::simulate_md1` has always used; callers that
/// share a seed with the simulator see the same gaps bit-for-bit.
///
/// # Panics
///
/// Panics if `rate_per_s` is not positive.
pub fn exp_interarrival_s(rng: &mut SeededRng, rate_per_s: f64) -> f64 {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_s
}

/// Absolute arrival times (seconds, strictly increasing from the first
/// gap — the process starts at `t = 0` with no arrival at 0) of `num`
/// Poisson arrivals at `rate_per_s`, seeded.
///
/// # Panics
///
/// Panics if `rate_per_s` is not positive or `num` is zero.
///
/// # Examples
///
/// ```
/// use hermes_datagen::arrivals::poisson_arrival_times_s;
/// let times = poisson_arrival_times_s(100.0, 1_000, 7);
/// assert_eq!(times.len(), 1_000);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// // Mean gap ≈ 1/rate.
/// let mean_gap = times.last().unwrap() / 1_000.0;
/// assert!((mean_gap - 0.01).abs() < 0.002);
/// ```
pub fn poisson_arrival_times_s(rate_per_s: f64, num: usize, seed: u64) -> Vec<f64> {
    assert!(num > 0, "need at least one arrival");
    let mut rng = seeded_rng(seed);
    let mut clock = 0.0f64;
    (0..num)
        .map(|_| {
            clock += exp_interarrival_s(&mut rng, rate_per_s);
            clock
        })
        .collect()
}

/// [`poisson_arrival_times_s`] rounded to whole nanoseconds — the unit
/// the serving layer's clocks use. Each absolute time is rounded once,
/// so the nanosecond trace deviates from the seconds trace by at most
/// half a nanosecond per arrival (no cumulative drift).
pub fn poisson_arrival_times_ns(rate_per_s: f64, num: usize, seed: u64) -> Vec<u64> {
    poisson_arrival_times_s(rate_per_s, num, seed)
        .into_iter()
        .map(|t| (t * 1e9).round() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_times_are_deterministic_and_monotone() {
        let a = poisson_arrival_times_s(50.0, 500, 3);
        let b = poisson_arrival_times_s(50.0, 500, 3);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0] > 0.0);
    }

    #[test]
    fn seconds_and_nanoseconds_streams_agree() {
        let s = poisson_arrival_times_s(200.0, 300, 9);
        let ns = poisson_arrival_times_ns(200.0, 300, 9);
        for (a, b) in s.iter().zip(&ns) {
            assert!((a * 1e9 - *b as f64).abs() <= 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn mean_rate_tracks_request() {
        let times = poisson_arrival_times_s(1_000.0, 20_000, 11);
        let measured = 20_000.0 / times.last().unwrap();
        assert!(
            (measured - 1_000.0).abs() < 30.0,
            "measured rate {measured} too far from 1000"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = poisson_arrival_times_s(0.0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_arrivals_rejected() {
        let _ = poisson_arrival_times_s(1.0, 0, 1);
    }
}
