//! Synthetic data generation — the stand-in for the paper's datasets.
//!
//! The paper evaluates on SPHERE (a pre-encoded Common Crawl subset) with
//! TriviaQA and Natural Questions queries. Those assets are not available
//! offline, so this crate generates workloads with the *properties the
//! Hermes mechanisms exploit*, each controlled explicitly:
//!
//! * **Topical cluster structure** ([`corpus`]): documents are drawn from
//!   a mixture of Gaussian topics, so K-means disaggregation can discover
//!   coherent partitions — the property behind Figure 11's accuracy gap
//!   between clustered and naively split datastores.
//! * **Skewed query interest** ([`query`], [`zipf`]): queries concentrate
//!   on popular topics with Zipf-like frequencies, producing the cluster
//!   access-frequency imbalance of Figure 13.
//! * **Token-scale accounting** ([`scale`]): maps datastore token counts
//!   (100M…1T) to chunk counts and index bytes so the performance model
//!   can reason about sizes no laptop can materialize.
//! * **Chunk payloads** ([`chunks`]): deterministic synthetic document
//!   chunks for the RAG augmentation step.
//! * **Arrival processes** ([`arrivals`]): seeded Poisson arrival streams
//!   shared by the queueing simulator and the serving-layer load
//!   generator, so oracle comparisons see bit-identical traces.
//! * **Temporal repetition** ([`workload`]): repeated / bursty / drifting
//!   query streams with seeded replay — the locality structure the
//!   semantic result cache exploits (and the regime that defeats it).

pub mod arrivals;
pub mod chunks;
pub mod corpus;
pub mod query;
pub mod scale;
pub mod workload;
pub mod zipf;

pub use arrivals::{poisson_arrival_times_ns, poisson_arrival_times_s};
pub use chunks::ChunkStore;
pub use corpus::{Corpus, CorpusSpec};
pub use query::{QuerySet, QuerySpec};
pub use scale::DatastoreScale;
pub use workload::{query_stream, StreamKind, StreamSpec};
pub use zipf::ZipfSampler;
