//! First-party work-stealing executor for the workspace's batch paths.
//!
//! Every batched fan-out in the repo — `VectorIndex::batch_search`,
//! `ClusteredStore::batch_hierarchical_search`, the K-means assignment
//! sweeps and the brute-force ground-truth oracle — used to spawn fresh
//! OS threads per call and split the work into static chunks. Under the
//! skewed per-query cost the paper's Zipf traces produce (Figure 13),
//! static chunking strands threads on the cheap chunks while one thread
//! grinds through the expensive one, and the spawn cost is re-paid on
//! every retrieval stride. [`Pool`] replaces both defects:
//!
//! * **Persistent workers** — threads are spawned once ([`Pool::new`], or
//!   lazily for [`Pool::global`]) and parked on a condvar between jobs;
//!   a batch submission is a notify, not `N` `clone()`+`spawn()` calls.
//! * **Dynamic stealing** — tasks are claimed from a shared atomic
//!   cursor (`fetch_add`), one index (or one small grain) at a time, so
//!   a worker that finishes a cheap query immediately steals the next
//!   one instead of idling behind a static chunk boundary.
//! * **Deterministic ordering** — each task writes its result into the
//!   slot of its *input* index, so [`Pool::parallel_map`] returns exactly
//!   what the sequential map would, bit for bit, for any thread count
//!   and any interleaving.
//! * **Panic propagation** — a panicking task's payload is captured and
//!   re-raised on the submitting thread via
//!   [`std::panic::resume_unwind`], so a worker assertion failure
//!   surfaces with its original message instead of the generic
//!   "search worker panicked" the old `JoinHandle::join().expect(..)`
//!   produced.
//!
//! The global pool is sized from [`std::thread::available_parallelism`],
//! overridable with the `HERMES_THREADS` environment variable
//! (`HERMES_THREADS=1` forces every batch path to run inline and
//! sequentially — useful for bisecting concurrency bugs; oversubscribed
//! values exercise contended schedules). See [`Pool::global`] for the
//! exact parsing rules.
//!
//! Zero external dependencies, per the workspace hermeticity policy:
//! the pool is `std` (`Mutex`/`Condvar` + atomics) plus the in-repo
//! `hermes-trace` telemetry layer.
//!
//! # Telemetry
//!
//! When `hermes_trace::enable()` is on, workers record:
//!
//! * `pool.task` spans — one per cursor claim (a grain of one or more
//!   indices), with `start`/`len` args; these land on the worker's own
//!   thread lane in a Perfetto view, so stealing imbalance is visible.
//! * `pool.steal` counter — one sample per successful claim.
//! * `pool.queue_depth` counter — indices still unclaimed after each
//!   claim (the drain curve of a job).
//! * `pool.idle` complete-spans — time a worker spent parked on the
//!   condvar between jobs.
//!
//! Disabled (the default), each of these sites costs one relaxed atomic
//! load on the claim path and nothing per item.
//!
//! # Examples
//!
//! ```
//! use hermes_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.parallel_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Fallible maps propagate the first error in *input* order,
//! // matching what a sequential loop would report.
//! let r: Result<Vec<u64>, String> =
//!     pool.try_parallel_map(&[2u64, 0, 4, 0], |&x| {
//!         if x == 0 { Err("zero".to_string()) } else { Ok(100 / x) }
//!     });
//! assert_eq!(r, Err("zero".to_string()));
//! ```

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Set while this thread is executing a pool task. A nested
    /// `parallel_map` from inside a task runs inline and sequentially
    /// instead of re-entering the (single-job) pool, which would
    /// deadlock on the submission lock.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// A type-erased borrowed job. The `'static` lifetime is a lie told to
/// the worker threads; `Pool::run` guarantees the reference outlives
/// every worker's use of it by not returning until all workers have
/// finished the job.
#[derive(Clone, Copy)]
struct RawJob(&'static (dyn Fn() + Sync));

/// Shared pool state guarded by one mutex.
struct Slot {
    /// Bumped once per submitted job so a worker never runs the same job
    /// twice.
    epoch: u64,
    /// The current job, if one is in flight.
    job: Option<RawJob>,
    /// Workers that have not yet finished the current job.
    running: usize,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Inner {
    slot: Mutex<Slot>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The submitter waits here for `running == 0`.
    done: Condvar,
}

fn lock(m: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    // Tasks never unwind while holding this mutex (every user closure is
    // wrapped in catch_unwind), so poison only means a defensive path
    // already captured the payload — keep going.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent work-stealing thread pool. See the crate docs for the
/// scheduling discipline and guarantees.
pub struct Pool {
    inner: Arc<Inner>,
    /// Serializes job submission: the pool runs one job at a time, and
    /// concurrent submitting threads queue here.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool with `threads` total parallelism (clamped to at
    /// least 1). The submitting thread participates in every job, so
    /// `threads - 1` workers are spawned; `Pool::new(1)` spawns nothing
    /// and runs every map inline and sequentially.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hermes-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            inner,
            submit: Mutex::new(()),
            handles,
            threads,
        }
    }

    /// The process-wide shared pool, created on first use.
    ///
    /// Sizing rules, checked in order:
    ///
    /// 1. `HERMES_THREADS` set to a positive integer (surrounding
    ///    whitespace tolerated, e.g. `" 8 "`) — that exact width, even
    ///    if it oversubscribes the machine.
    /// 2. `HERMES_THREADS` set to anything else — `"0"`, empty,
    ///    negative, fractional (`"1.5"`), or non-numeric — the value is
    ///    **ignored** and rule 3 applies. Zero is not "inline mode";
    ///    use `HERMES_THREADS=1` for that.
    /// 3. Unset — [`std::thread::available_parallelism`], falling back
    ///    to 1 if the platform cannot report it.
    ///
    /// The width is decided once, at first use; later changes to the
    /// environment variable have no effect on this process.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Total parallelism of this pool (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, stealing one item at a time
    /// from a shared cursor. Output order matches input order exactly.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any task produced, with its original
    /// payload.
    pub fn parallel_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.parallel_map_capped(items, usize::MAX, f)
    }

    /// [`Self::parallel_map`] with concurrency capped at `cap` threads
    /// (clamped to at least 1) — the hook behind the `threads` argument
    /// of the public batch-search APIs.
    pub fn parallel_map_capped<T, U, F>(&self, items: &[T], cap: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run_map(items.len(), cap, 1, |i| f(&items[i]))
    }

    /// Fallible parallel map. Every item is evaluated (no early exit:
    /// stopping at the first *observed* error would make which error is
    /// returned schedule-dependent) and the first `Err` in **input
    /// order** is returned — exactly the error a sequential
    /// `iter().map(f).collect()` reports.
    pub fn try_parallel_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        self.try_parallel_map_capped(items, usize::MAX, f)
    }

    /// [`Self::try_parallel_map`] with concurrency capped at `cap`.
    pub fn try_parallel_map_capped<T, U, E, F>(
        &self,
        items: &[T],
        cap: usize,
        f: F,
    ) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        self.parallel_map_capped(items, cap, f).into_iter().collect()
    }

    /// Runs `f` for each item in parallel; completion of the call
    /// implies completion (and visibility) of every task.
    pub fn parallel_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.parallel_map(items, f);
    }

    /// Indexed parallel map over `0..n` for cheap per-index work (K-means
    /// row sweeps, per-query metric evaluation). Steals a grain of
    /// several indices per cursor claim to keep atomic traffic off the
    /// hot path; ordering and panic semantics match
    /// [`Self::parallel_map`].
    pub fn parallel_map_index<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        // ~8 steals per thread balances skew resistance against cursor
        // contention for fine-grained tasks.
        let grain = (n / (self.threads * 8)).clamp(1, 1024);
        self.run_map(n, usize::MAX, grain, f)
    }

    /// The core primitive every public map routes through: evaluate
    /// `f(i)` for `i in 0..n` with at most `cap` threads, stealing
    /// `grain` indices per cursor claim, writing each result into slot
    /// `i`.
    fn run_map<U, F>(&self, n: usize, cap: usize, grain: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let cap = cap.max(1);
        if n <= 1 || cap == 1 || self.threads == 1 {
            // Inline sequential path: panics and result order are
            // trivially identical to the parallel path's contract.
            return (0..n).map(f).collect();
        }

        struct Slots<'a, U>(&'a [std::cell::UnsafeCell<Option<U>>]);
        // SAFETY: workers write disjoint slots (each index is claimed by
        // exactly one fetch_add winner) and no one reads until after the
        // completion barrier in `run`.
        unsafe impl<U: Send> Sync for Slots<'_, U> {}
        impl<U> Slots<'_, U> {
            /// # Safety
            /// Each index must be written by at most one thread.
            unsafe fn write(&self, i: usize, v: U) {
                *self.0[i].get() = Some(v);
            }
        }

        let slots: Vec<std::cell::UnsafeCell<Option<U>>> =
            (0..n).map(|_| std::cell::UnsafeCell::new(None)).collect();
        let shared = Slots(&slots);
        let cursor = AtomicUsize::new(0);
        let participants = AtomicUsize::new(0);
        let grain = grain.max(1);
        let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let task = || {
            if participants.fetch_add(1, Ordering::Relaxed) >= cap {
                return;
            }
            loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + grain).min(n);
                let _task_span = hermes_trace::is_enabled().then(|| {
                    hermes_trace::counter(hermes_trace::names::POOL_STEAL, 1);
                    hermes_trace::counter(hermes_trace::names::POOL_QUEUE_DEPTH, (n - end) as u64);
                    hermes_trace::span_with(
                        "pool.task",
                        &[("start", start as u64), ("len", (end - start) as u64)],
                    )
                });
                for i in start..end {
                    match catch_unwind(AssertUnwindSafe(|| f(i))) {
                        Ok(v) => unsafe { shared.write(i, v) },
                        Err(payload) => {
                            let mut g = panic_box
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if g.is_none() {
                                *g = Some(payload);
                            }
                            // Park the cursor past the end so no new
                            // tasks start; in-flight ones finish.
                            cursor.store(n, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        };
        self.run(&task);

        if let Some(payload) = panic_box
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|c| c.into_inner().expect("task completed for every index"))
            .collect()
    }

    /// Dispatches one job to every worker, participates from the calling
    /// thread, and blocks until all workers have finished it.
    fn run(&self, task: &(dyn Fn() + Sync)) {
        if self.handles.is_empty() || IN_POOL_TASK.with(Cell::get) {
            task();
            return;
        }
        let _submission = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // SAFETY: `run` does not return until every worker has finished
        // executing `task` (the `running == 0` wait below), so no worker
        // can observe the reference after this frame ends; erasing the
        // lifetime for the duration of the job is sound.
        let job = RawJob(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task)
        });
        {
            let mut slot = lock(&self.inner.slot);
            slot.epoch = slot.epoch.wrapping_add(1);
            slot.job = Some(job);
            slot.running = self.handles.len();
            self.inner.work.notify_all();
        }
        IN_POOL_TASK.with(|t| t.set(true));
        let caller = catch_unwind(AssertUnwindSafe(|| task()));
        IN_POOL_TASK.with(|t| t.set(false));
        {
            let mut slot = lock(&self.inner.slot);
            while slot.running > 0 {
                slot = self
                    .inner
                    .done
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            slot.job = None;
        }
        // Only after the barrier is it safe to unwind (workers no longer
        // hold borrows into the caller's frame). `run_map` wraps every
        // user closure in catch_unwind, so this is purely defensive.
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.inner.slot);
            slot.shutdown = true;
            self.inner.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = lock(&inner.slot);
            // Idle time is reported as a `Complete` event stamped at
            // wake rather than a Span guard: a guard held across the
            // condvar wait would leave an unmatched `Begin` in the ring
            // if a snapshot drained while this worker was parked.
            let mut idle_from: Option<u64> = None;
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    if let Some(job) = slot.job {
                        seen = slot.epoch;
                        if let Some(t0) = idle_from {
                            let now = hermes_trace::now_ns();
                            hermes_trace::complete(hermes_trace::names::POOL_IDLE, t0, now.saturating_sub(t0));
                        }
                        break job;
                    }
                }
                if idle_from.is_none() && hermes_trace::is_enabled() {
                    idle_from = Some(hermes_trace::now_ns());
                }
                slot = inner
                    .work
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        IN_POOL_TASK.with(|t| t.set(true));
        // The job closure (built by run_map) catches task panics itself;
        // this catch_unwind only guards the pool's liveness against a
        // hypothetical escaping unwind — the decrement below must happen
        // or the submitter waits forever.
        let _ = catch_unwind(AssertUnwindSafe(|| (job.0)()));
        IN_POOL_TASK.with(|t| t.set(false));
        let mut slot = lock(&inner.slot);
        slot.running -= 1;
        if slot.running == 0 {
            inner.done.notify_all();
        }
    }
}

/// Pool width for [`Pool::global`]: `HERMES_THREADS` when it parses to a
/// positive integer, else the machine's available parallelism.
fn default_threads() -> usize {
    parse_hermes_threads(std::env::var("HERMES_THREADS").ok().as_deref())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Interprets a `HERMES_THREADS` value: `Some(n)` for a positive integer
/// (surrounding whitespace tolerated), `None` for unset or anything that
/// does not name a positive integer — including `"0"`, which callers
/// must not conflate with inline mode (`1`). Pure so every case is unit
/// testable without mutating the process environment.
fn parse_hermes_threads(value: Option<&str>) -> Option<usize> {
    let n = value?.trim().parse::<usize>().ok()?;
    (n >= 1).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential_for_various_widths() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let pool = Pool::new(threads);
            assert_eq!(pool.parallel_map(&items, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.parallel_map(&[1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert_eq!(pool.parallel_map(&[] as &[u64], |x| *x), Vec::<u64>::new());
        assert_eq!(pool.parallel_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn panic_payload_is_propagated_verbatim() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |&i| {
                assert!(i != 13, "worker assertion tripped at index {i}");
                i
            })
        }));
        let payload = result.expect_err("map must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a message");
        assert!(
            msg.contains("worker assertion tripped at index 13"),
            "original message lost: {msg}"
        );
        // The pool must still be usable after a propagated panic.
        assert_eq!(pool.parallel_map(&[1u64, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn try_map_returns_first_error_in_input_order() {
        let pool = Pool::new(4);
        // Errors at 5 and 20; input order says 5 wins, regardless of
        // which task finishes first.
        let items: Vec<usize> = (0..32).collect();
        for _ in 0..50 {
            let r: Result<Vec<usize>, String> = pool.try_parallel_map(&items, |&i| {
                if i == 5 || i == 20 {
                    Err(format!("bad item {i}"))
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r, Err("bad item 5".to_string()));
        }
    }

    #[test]
    fn capped_map_still_completes_everything() {
        let pool = Pool::new(8);
        let items: Vec<u64> = (0..50).collect();
        for cap in [1, 2, 7, 100] {
            let got = pool.parallel_map_capped(&items, cap, |x| x + 1);
            assert_eq!(got, (1..=50).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        let pool = Pool::new(4);
        let outer: Vec<u64> = (0..8).collect();
        let got = pool.parallel_map(&outer, |&x| {
            let inner: Vec<u64> = (0..4).collect();
            Pool::global()
                .parallel_map(&inner, |&y| x * 10 + y)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|x| (0..4).map(|y| x * 10 + y).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn for_each_observes_every_item_exactly_once() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.parallel_for_each(&items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn map_index_grains_cover_the_range() {
        let pool = Pool::new(3);
        for n in [0usize, 1, 7, 64, 4097] {
            let got = pool.parallel_map_index(n, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        let pool = Arc::new(Pool::new(4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let items: Vec<u64> = (0..200).collect();
                    let got = pool.parallel_map(&items, |x| x + t);
                    assert_eq!(got, (t..200 + t).collect::<Vec<u64>>());
                });
            }
        });
    }

    #[test]
    fn global_pool_honors_env_override() {
        let p = Pool::global();
        assert!(p.threads() >= 1);
        if let Ok(v) = std::env::var("HERMES_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    assert_eq!(p.threads(), n);
                }
            }
        }
    }

    #[test]
    fn hermes_threads_parsing_accepts_positive_integers() {
        assert_eq!(parse_hermes_threads(Some("1")), Some(1));
        assert_eq!(parse_hermes_threads(Some("16")), Some(16));
        assert_eq!(parse_hermes_threads(Some(" 8 ")), Some(8), "whitespace trimmed");
        assert_eq!(parse_hermes_threads(Some("1024")), Some(1024), "oversubscription allowed");
    }

    #[test]
    fn hermes_threads_parsing_rejects_everything_else() {
        assert_eq!(parse_hermes_threads(None), None, "unset");
        assert_eq!(parse_hermes_threads(Some("")), None, "empty");
        assert_eq!(parse_hermes_threads(Some("0")), None, "zero is not inline mode");
        assert_eq!(parse_hermes_threads(Some("-4")), None, "negative");
        assert_eq!(parse_hermes_threads(Some("1.5")), None, "fractional");
        assert_eq!(parse_hermes_threads(Some("lots")), None, "garbage");
        assert_eq!(parse_hermes_threads(Some("8 cores")), None, "trailing text");
    }

    // Note: traced-execution behavior (pool.task span balance, steal /
    // queue-depth counters, bit-identical results with telemetry on) is
    // covered by the workspace integration test `trace_validation`,
    // which owns its process and can serialize access to the global
    // trace state. Enabling tracing here would race with this binary's
    // other tests, which all drive pools concurrently.

    #[test]
    fn drop_joins_workers_promptly() {
        let pool = Pool::new(6);
        let _ = pool.parallel_map(&[1u64, 2, 3], |x| *x);
        drop(pool); // must not hang
    }
}
