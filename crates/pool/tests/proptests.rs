//! Property-based concurrency tests for the work-stealing executor, on
//! `hermes-testkit`.
//!
//! The load-bearing invariant for the whole workspace: for ANY input
//! length and ANY pool width (0, 1, width > len, oversubscribed),
//! `parallel_map` is indistinguishable from the sequential map — same
//! values, same order, nothing lost, nothing duplicated. Every batch
//! search path inherits its determinism guarantee from these properties.

use std::sync::atomic::{AtomicUsize, Ordering};

use hermes_math::rng::seeded_rng;
use hermes_pool::Pool;
use hermes_testkit::prelude::*;

fn cfg() -> Config {
    Config::from_env().with_cases(24)
}

/// `parallel_map` equals the sequential map for arbitrary input lengths
/// × thread counts, including 0 (clamped to 1), 1 (no workers at all)
/// and `len < threads` (idle workers must not corrupt or duplicate).
#[test]
fn parallel_map_equals_sequential_map() {
    let strat = tuple2(vec_of(u64_any(), 0..80), usize_in(0..10));
    check_with(
        "parallel_map_equals_sequential_map",
        &cfg(),
        &strat,
        |(xs, threads)| {
            let pool = Pool::new(*threads);
            let xform = |x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13) ^ 0xA5A5;
            let sequential: Vec<u64> = xs.iter().map(xform).collect();
            let parallel = pool.parallel_map(xs, xform);
            prop_assert_eq!(sequential, parallel);
            Ok(())
        },
    );
}

/// Fallible maps report the error of the lowest failing *input index*,
/// never a schedule-dependent one.
#[test]
fn try_map_error_is_first_in_input_order() {
    let strat = tuple3(vec_of(u64_in(0..50), 1..60), usize_in(1..9), u64_in(0..50));
    check_with(
        "try_map_error_is_first_in_input_order",
        &cfg(),
        &strat,
        |(xs, threads, bad)| {
            let pool = Pool::new(*threads);
            let f = |x: &u64| -> Result<u64, String> {
                if x == bad {
                    Err(format!("rejected {x}"))
                } else {
                    Ok(x + 1)
                }
            };
            let sequential: Result<Vec<u64>, String> = xs.iter().map(f).collect();
            let parallel = pool.try_parallel_map(xs, f);
            prop_assert_eq!(sequential, parallel);
            Ok(())
        },
    );
}

/// Indexed maps (the grained path used by the K-means sweeps) are also
/// order- and value-identical to the sequential loop.
#[test]
fn map_index_equals_sequential_loop() {
    let strat = tuple2(usize_in(0..2000), usize_in(0..6));
    check_with(
        "map_index_equals_sequential_loop",
        &cfg(),
        &strat,
        |(n, threads)| {
            let pool = Pool::new(*threads);
            let sequential: Vec<usize> = (0..*n).map(|i| i.wrapping_mul(7) % 1013).collect();
            let parallel = pool.parallel_map_index(*n, |i| i.wrapping_mul(7) % 1013);
            prop_assert_eq!(sequential, parallel);
            Ok(())
        },
    );
}

/// Seeded stress test with deliberately skewed per-task cost (a Zipf-like
/// spread: a few tasks ~1000× the median, mirroring the paper's skewed
/// cluster access traces). Dynamic stealing must keep the results
/// ordered, complete, and must actually share the work (every
/// participant-visible task executes exactly once).
#[test]
fn skewed_task_cost_keeps_results_ordered_and_complete() {
    let pool = Pool::new(8);
    let mut rng = seeded_rng(0x5745_4550); // "SWEP"
    let n = 400usize;
    // Mostly tiny tasks, occasional huge ones at deterministic but
    // irregular positions.
    let costs: Vec<u64> = (0..n)
        .map(|i| {
            if i % 53 == 0 {
                25_000
            } else {
                rng.gen_range(1..64)
            }
        })
        .collect();
    let executions = AtomicUsize::new(0);

    let spin = |&cost: &u64| {
        executions.fetch_add(1, Ordering::Relaxed);
        let mut acc = cost;
        for j in 0..cost {
            acc = acc.wrapping_add(j ^ acc.rotate_left(3));
        }
        (cost, acc)
    };
    let parallel = pool.parallel_map(&costs, spin);

    assert_eq!(parallel.len(), n, "no task may be dropped");
    assert_eq!(
        executions.load(Ordering::Relaxed),
        n,
        "every task runs exactly once"
    );
    // Slot i holds task i's result: the cost echo proves ordering, the
    // accumulator proves the result is task i's own computation.
    let sequential: Vec<(u64, u64)> = costs
        .iter()
        .map(|&cost| {
            let mut acc = cost;
            for j in 0..cost {
                acc = acc.wrapping_add(j ^ acc.rotate_left(3));
            }
            (cost, acc)
        })
        .collect();
    assert_eq!(parallel, sequential);
}

/// Repeated submissions on one pool stay deterministic — the persistent
/// workers carry no state across jobs.
#[test]
fn repeated_jobs_are_independent_and_deterministic() {
    let pool = Pool::new(5);
    let items: Vec<u64> = (0..300).collect();
    let first = pool.parallel_map(&items, |x| x * x);
    for _ in 0..20 {
        assert_eq!(pool.parallel_map(&items, |x| x * x), first);
    }
}
