//! Property-based tests for the math substrate, on `hermes-testkit`.

use hermes_math::stats::{linear_fit, OnlineStats};
use hermes_math::wire::{Reader, Writer};
use hermes_math::{Mat, Metric, Neighbor, TopK};
use hermes_testkit::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    f32_in(-1e6..1e6)
}

/// TopK agrees with sort-then-truncate for any input.
#[test]
fn topk_equals_sort_truncate() {
    let strat = tuple2(vec_of(finite_f32(), 1..200), usize_in(1..20));
    check("topk_equals_sort_truncate", &strat, |(scores, k)| {
        let mut top = TopK::new(*k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i as u64, s);
        }
        let got = top.into_sorted_vec();

        let mut all: Vec<Neighbor> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Neighbor::new(i as u64, s))
            .collect();
        all.sort();
        all.truncate(*k);
        prop_assert_eq!(got, all);
        Ok(())
    });
}

/// Similarity is symmetric for the symmetric metrics.
#[test]
fn l2_and_cosine_are_symmetric() {
    let strat = tuple2(vec_of(finite_f32(), 8..9), vec_of(finite_f32(), 8..9));
    check("l2_and_cosine_are_symmetric", &strat, |(a, b)| {
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let ab = metric.similarity(a, b);
            let ba = metric.similarity(b, a);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0), "{metric}");
        }
        Ok(())
    });
}

/// Self-similarity under L2 is maximal.
#[test]
fn l2_self_similarity_dominates() {
    let strat = tuple2(vec_of(finite_f32(), 6..7), vec_of(finite_f32(), 6..7));
    check("l2_self_similarity_dominates", &strat, |(a, b)| {
        prop_assert!(Metric::L2.similarity(a, a) >= Metric::L2.similarity(a, b));
        Ok(())
    });
}

/// Rotation followed by transpose recovers the input for orthonormal
/// matrices.
#[test]
fn orthonormal_rotation_is_invertible() {
    let strat = tuple2(
        vec_of(vec_of(f32_in(-1.0..1.0), 6..7), 6..7),
        vec_of(f32_in(-10.0..10.0), 6..7),
    );
    // Near-degenerate rows found by the old proptest run; keep it pinned.
    let regression = (
        vec![
            vec![-0.83440214, -0.3624748, 0.41711116, 0.75543004, -0.54768384, 0.47014242],
            vec![0.0, -0.84116113, 0.72943574, 0.03454585, -0.5941334, 0.9393982],
            vec![0.906539, 0.9324757, -0.19172081, 0.09651843, -0.6482588, 0.1287739],
            vec![-0.23186162, -0.40684626, -0.12194871, 0.5677976, -0.03420545, 0.52390254],
            vec![0.81454706, 0.7872395, 0.9897278, 0.8538393, -0.1400392, 0.07080147],
            vec![-0.2554111, 0.14306785, 0.027532531, 0.22620943, -0.84322053, 0.33031172],
        ],
        vec![4.7791104, 0.0, 0.0, 0.0, 9.56704, 0.0],
    );
    check_with_regressions(
        "orthonormal_rotation_is_invertible",
        &Config::from_env(),
        &strat,
        &[regression],
        |(seed_rows, v)| {
            let mut m = Mat::from_rows(seed_rows);
            m.orthonormalize_rows();
            let back = m.transpose_vec(&m.mat_vec(v));
            for (x, y) in back.iter().zip(v) {
                // Gram-Schmidt on near-degenerate random rows loses a few
                // bits; allow a relative single-precision tolerance.
                prop_assert!((x - y).abs() < 1e-2 * y.abs().max(1.0), "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Wire round-trip is lossless for arbitrary payloads.
#[test]
fn wire_round_trips_arbitrary_payloads() {
    let strat = tuple3(
        vec_of(u64_any(), 0..64),
        tuple2(vec_of(finite_f32(), 0..32), vec_of(u64_any(), 0..32)),
        u64_any(),
    );
    check(
        "wire_round_trips_arbitrary_payloads",
        &strat,
        |(raw, (floats, ids), x)| {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let mut w = Writer::new();
            w.header("PROP", 1);
            w.u64(*x);
            w.bytes(&bytes);
            w.f32s(floats);
            w.u64s(ids);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            r.header("PROP", 1).unwrap();
            prop_assert_eq!(r.u64().unwrap(), *x);
            prop_assert_eq!(r.bytes().unwrap(), bytes);
            prop_assert_eq!(&r.f32s().unwrap(), floats);
            prop_assert_eq!(&r.u64s().unwrap(), ids);
            prop_assert!(r.is_exhausted());
            Ok(())
        },
    );
}

/// Truncating a valid wire buffer anywhere never panics — it errors.
#[test]
fn wire_truncation_never_panics() {
    let strat = tuple2(vec_of(finite_f32(), 1..32), f64_in(0.0..1.0));
    check("wire_truncation_never_panics", &strat, |(floats, cut_frac)| {
        let mut w = Writer::new();
        w.f32s(floats);
        w.u64s(&[1, 2, 3]);
        let buf = w.finish();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let mut r = Reader::new(&buf[..cut]);
        // Either both reads succeed (cut at the very end) or one errors.
        let _ = r.f32s().and_then(|_| r.u64s());
        Ok(())
    });
}

/// OnlineStats matches naive two-pass computation.
#[test]
fn online_stats_matches_naive() {
    let strat = vec_of(f64_in(-1e3..1e3), 2..100);
    check("online_stats_matches_naive", &strat, |xs| {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.variance() - var).abs() < 1e-5);
        Ok(())
    });
}

/// A perfect line always fits with r² = 1 regardless of slope.
#[test]
fn linear_fit_is_exact_on_lines() {
    let strat = tuple2(f64_in(-100.0..100.0), f64_in(-100.0..100.0));
    check("linear_fit_is_exact_on_lines", &strat, |&(slope, intercept)| {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let (s, i, r2) = linear_fit(&xs, &ys).unwrap();
        prop_assert!((s - slope).abs() < 1e-6);
        prop_assert!((i - intercept).abs() < 1e-5);
        prop_assert!(r2 > 1.0 - 1e-9 || slope.abs() < 1e-12);
        Ok(())
    });
}
