//! Property-based tests for the math substrate.

use hermes_math::stats::{linear_fit, OnlineStats};
use hermes_math::wire::{Reader, Writer};
use hermes_math::{Mat, Metric, Neighbor, TopK};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e6f32..1e6).prop_map(|x| x)
}

proptest! {
    /// TopK agrees with sort-then-truncate for any input.
    #[test]
    fn topk_equals_sort_truncate(
        scores in proptest::collection::vec(finite_f32(), 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i as u64, s);
        }
        let got = top.into_sorted_vec();

        let mut all: Vec<Neighbor> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Neighbor::new(i as u64, s))
            .collect();
        all.sort();
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    /// Similarity is symmetric for the symmetric metrics.
    #[test]
    fn l2_and_cosine_are_symmetric(
        a in proptest::collection::vec(finite_f32(), 8),
        b in proptest::collection::vec(finite_f32(), 8),
    ) {
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let ab = metric.similarity(&a, &b);
            let ba = metric.similarity(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0), "{metric}");
        }
    }

    /// Self-similarity under L2 is maximal.
    #[test]
    fn l2_self_similarity_dominates(
        a in proptest::collection::vec(finite_f32(), 6),
        b in proptest::collection::vec(finite_f32(), 6),
    ) {
        prop_assert!(Metric::L2.similarity(&a, &a) >= Metric::L2.similarity(&a, &b));
    }

    /// Rotation followed by transpose recovers the input for orthonormal
    /// matrices.
    #[test]
    fn orthonormal_rotation_is_invertible(
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 6), 6),
        v in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        let mut m = Mat::from_rows(&seed_rows);
        m.orthonormalize_rows();
        let back = m.transpose_vec(&m.mat_vec(&v));
        for (x, y) in back.iter().zip(&v) {
            // Gram-Schmidt on near-degenerate random rows loses a few
            // bits; allow a relative single-precision tolerance.
            prop_assert!((x - y).abs() < 1e-2 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// Wire round-trip is lossless for arbitrary payloads.
    #[test]
    fn wire_round_trips_arbitrary_payloads(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        floats in proptest::collection::vec(finite_f32(), 0..32),
        ids in proptest::collection::vec(any::<u64>(), 0..32),
        x in any::<u64>(),
    ) {
        let mut w = Writer::new();
        w.header("PROP", 1);
        w.u64(x);
        w.bytes(&bytes);
        w.f32s(&floats);
        w.u64s(&ids);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.header("PROP", 1).unwrap();
        prop_assert_eq!(r.u64().unwrap(), x);
        prop_assert_eq!(r.bytes().unwrap(), bytes);
        prop_assert_eq!(r.f32s().unwrap(), floats);
        prop_assert_eq!(r.u64s().unwrap(), ids);
        prop_assert!(r.is_exhausted());
    }

    /// Truncating a valid wire buffer anywhere never panics — it errors.
    #[test]
    fn wire_truncation_never_panics(
        floats in proptest::collection::vec(finite_f32(), 1..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut w = Writer::new();
        w.f32s(&floats);
        w.u64s(&[1, 2, 3]);
        let buf = w.finish();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let mut r = Reader::new(&buf[..cut]);
        // Either both reads succeed (cut at the very end) or one errors.
        let _ = r.f32s().and_then(|_| r.u64s());
    }

    /// OnlineStats matches naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
    ) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.variance() - var).abs() < 1e-5);
    }

    /// A perfect line always fits with r² = 1 regardless of slope.
    #[test]
    fn linear_fit_is_exact_on_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let (s, i, r2) = linear_fit(&xs, &ys).unwrap();
        prop_assert!((s - slope).abs() < 1e-6);
        prop_assert!((i - intercept).abs() < 1e-5);
        prop_assert!(r2 > 1.0 - 1e-9 || slope.abs() < 1e-12);
    }
}
