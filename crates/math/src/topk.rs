//! Bounded best-k selection.
//!
//! Every search path in the workspace — flat scan, IVF inverted-list probe,
//! HNSW beam, Hermes cluster ranking — funnels candidates through
//! [`TopK`], a fixed-capacity min-heap keeping the `k` items with the
//! highest similarity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::block::BLOCK;

/// A scored search hit: a document id plus its similarity to the query
/// (greater = closer; see [`crate::Metric`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the matched vector/document.
    pub id: u64,
    /// Similarity score; greater is better.
    pub score: f32,
}

impl Neighbor {
    /// Creates a neighbor from an id and a similarity score.
    pub fn new(id: u64, score: f32) -> Self {
        Neighbor { id, score }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Best-first total order: a higher score compares as `Less` so an
        // ascending sort yields best-first output. Ties break by id for
        // cross-run determinism; NaN scores sort last.
        match other.score.partial_cmp(&self.score) {
            Some(ord) => ord.then_with(|| self.id.cmp(&other.id)),
            None => match (self.score.is_nan(), other.score.is_nan()) {
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                _ => self.id.cmp(&other.id),
            },
        }
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fixed-capacity selector retaining the `k` highest-scoring items.
///
/// Push is `O(log k)`; pushes that cannot beat the current worst are `O(1)`.
///
/// # Examples
///
/// ```
/// use hermes_math::topk::TopK;
/// let mut t = TopK::new(2);
/// for (id, s) in [(0u64, 0.1f32), (1, 0.9), (2, 0.5)] {
///     t.push(id, s);
/// }
/// let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
/// assert_eq!(ids, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap under the best-first `Neighbor` ordering, so `peek()` is the
    // *worst* retained hit — the eviction candidate.
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a selector for the best `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; an empty selection is never meaningful in a
    /// search path and indicates a configuration bug.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK capacity must be positive");
        TopK {
            k,
            // Pre-sized to its maximum occupancy (`k`, plus one slot of
            // slack) so no push ever reallocates mid-scan.
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The capacity `k` this selector was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no item has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current lowest retained score, or `None` while under capacity.
    ///
    /// Search loops use this as an early-termination bound: a candidate
    /// whose upper-bound similarity is below `worst_score` cannot enter.
    pub fn worst_score(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|n| n.score)
        }
    }

    /// The pruning bound for fused block scans, as a plain `f32`:
    /// the current worst retained score once `k` items are held,
    /// `f32::NEG_INFINITY` while still filling (everything is admitted),
    /// and NaN if the heap is full of NaN scores (in which case pruning
    /// must be disabled — any real score displaces a NaN).
    ///
    /// Callers prune with `!(score < threshold)` rather than
    /// `score >= threshold`: the negated form admits NaN candidates and
    /// everything at `NEG_INFINITY`, so [`TopK::push`] stays the single
    /// arbiter of ties, NaN ordering and id-based eviction.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f32::NEG_INFINITY, |n| n.score)
        }
    }

    /// Offers a block of scored candidates, skipping heap traffic for
    /// candidates that cannot beat [`TopK::threshold`].
    ///
    /// Survivors of each [`BLOCK`]-sized chunk are selected with a
    /// branchless compare-and-compact pass, then pushed in input order —
    /// the result is bit-identical to calling [`TopK::push`] on every
    /// `(id, score)` pair, but the common full-heap case touches the
    /// heap 0–1 times per chunk instead of [`BLOCK`] times.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != scores.len()`.
    pub fn push_block(&mut self, ids: &[u64], scores: &[f32]) {
        assert_eq!(ids.len(), scores.len(), "one id per score required");
        for (idc, sc) in ids.chunks(BLOCK).zip(scores.chunks(BLOCK)) {
            // The threshold only rises as pushes land, so a bound taken
            // at the top of the chunk never over-prunes.
            let t = self.threshold();
            let mut keep = [0u8; BLOCK];
            let mut n = 0usize;
            for (j, &s) in sc.iter().enumerate() {
                keep[n] = j as u8;
                n += usize::from(!(s < t));
            }
            for &j in &keep[..n] {
                self.push(idc[j as usize], sc[j as usize]);
            }
        }
    }

    /// Offers `(id, score)`; returns `true` if it was retained.
    pub fn push(&mut self, id: u64, score: f32) -> bool {
        let cand = Neighbor::new(id, score);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            return true;
        }
        let worst = *self.heap.peek().expect("non-empty at capacity");
        // `cand < worst` under the best-first ordering means cand is better.
        if cand.cmp(&worst) == Ordering::Less {
            self.heap.pop();
            self.heap.push(cand);
            true
        } else {
            false
        }
    }

    /// Consumes the selector, returning hits sorted best-first.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

impl Extend<Neighbor> for TopK {
    fn extend<T: IntoIterator<Item = Neighbor>>(&mut self, iter: T) {
        for n in iter {
            self.push(n.id, n.score);
        }
    }
}

/// Merges several already-sorted result lists into a single best-first
/// top-`k` list. Used to aggregate per-cluster deep-search results.
pub fn merge_topk(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut sel = TopK::new(k.max(1));
    for list in lists {
        for n in list {
            sel.push(n.id, n.score);
        }
    }
    let mut out = sel.into_sorted_vec();
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for i in 0..10u64 {
            t.push(i, i as f32);
        }
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![9, 8, 7]);
    }

    #[test]
    fn output_is_sorted_descending_by_score() {
        let mut t = TopK::new(5);
        for (i, s) in [(1u64, 0.3f32), (2, 0.9), (3, 0.1), (4, 0.7)] {
            t.push(i, s);
        }
        let v = t.into_sorted_vec();
        for w in v.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut t = TopK::new(2);
        t.push(7, 0.5);
        t.push(3, 0.5);
        t.push(5, 0.5);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn worst_score_none_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst_score(), None);
        t.push(0, 1.0);
        assert_eq!(t.worst_score(), None);
        t.push(1, 2.0);
        assert_eq!(t.worst_score(), Some(1.0));
    }

    #[test]
    fn push_returns_whether_retained() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 1.0));
        assert!(!t.push(1, 0.5));
        assert!(t.push(2, 2.0));
    }

    #[test]
    fn nan_scores_never_displace_real_scores() {
        let mut t = TopK::new(2);
        t.push(0, 1.0);
        t.push(1, 2.0);
        t.push(2, f32::NAN);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 0]);
    }

    #[test]
    fn threshold_is_neg_infinity_while_empty_or_filling() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.push(0, 1.0);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.push(1, 2.0);
        assert_eq!(t.threshold(), 1.0);
        t.push(2, 3.0);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn threshold_is_nan_when_full_of_nans_and_pruning_stays_safe() {
        let mut t = TopK::new(2);
        t.push_block(&[0, 1], &[f32::NAN, f32::NAN]);
        assert!(t.threshold().is_nan());
        // `!(s < NaN)` is true for every s, so real scores still get
        // through the compact pass and displace the NaNs.
        t.push_block(&[2, 3], &[0.5, 0.25]);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn push_block_is_bit_identical_to_sequential_push() {
        // Ties, NaNs, multi-chunk blocks: the fused path must retain the
        // exact same set as pushing one by one.
        let scores: Vec<f32> = (0..40)
            .map(|i| {
                if i % 7 == 3 {
                    f32::NAN
                } else {
                    ((i * 13) % 9) as f32 / 3.0
                }
            })
            .collect();
        let ids: Vec<u64> = (0..40).collect();
        for k in [1usize, 3, 8, 40] {
            let mut seq = TopK::new(k);
            for (&id, &s) in ids.iter().zip(&scores) {
                seq.push(id, s);
            }
            let mut blk = TopK::new(k);
            blk.push_block(&ids, &scores);
            let a = seq.into_sorted_vec();
            let b = blk.into_sorted_vec();
            assert_eq!(a.len(), b.len(), "k={k}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "k={k}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn push_block_skips_subthreshold_candidates_without_heap_traffic() {
        let mut t = TopK::new(2);
        t.push_block(&[0, 1], &[5.0, 6.0]);
        // All below the worst retained score: nothing changes.
        t.push_block(&[2, 3, 4], &[1.0, 2.0, 3.0]);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "one id per score")]
    fn push_block_rejects_mismatched_lengths() {
        let mut t = TopK::new(2);
        t.push_block(&[0, 1], &[1.0]);
    }

    #[test]
    fn merge_topk_aggregates_across_lists() {
        let a = vec![Neighbor::new(1, 0.9), Neighbor::new(2, 0.4)];
        let b = vec![Neighbor::new(3, 0.8), Neighbor::new(4, 0.1)];
        let merged = merge_topk(&[a, b], 3);
        let ids: Vec<u64> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn extend_accepts_neighbors() {
        let mut t = TopK::new(2);
        t.extend(vec![Neighbor::new(0, 0.1), Neighbor::new(1, 0.9)]);
        assert_eq!(t.len(), 2);
    }
}
