//! Bounded best-k selection.
//!
//! Every search path in the workspace — flat scan, IVF inverted-list probe,
//! HNSW beam, Hermes cluster ranking — funnels candidates through
//! [`TopK`], a fixed-capacity min-heap keeping the `k` items with the
//! highest similarity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored search hit: a document id plus its similarity to the query
/// (greater = closer; see [`crate::Metric`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the matched vector/document.
    pub id: u64,
    /// Similarity score; greater is better.
    pub score: f32,
}

impl Neighbor {
    /// Creates a neighbor from an id and a similarity score.
    pub fn new(id: u64, score: f32) -> Self {
        Neighbor { id, score }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Best-first total order: a higher score compares as `Less` so an
        // ascending sort yields best-first output. Ties break by id for
        // cross-run determinism; NaN scores sort last.
        match other.score.partial_cmp(&self.score) {
            Some(ord) => ord.then_with(|| self.id.cmp(&other.id)),
            None => match (self.score.is_nan(), other.score.is_nan()) {
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                _ => self.id.cmp(&other.id),
            },
        }
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fixed-capacity selector retaining the `k` highest-scoring items.
///
/// Push is `O(log k)`; pushes that cannot beat the current worst are `O(1)`.
///
/// # Examples
///
/// ```
/// use hermes_math::topk::TopK;
/// let mut t = TopK::new(2);
/// for (id, s) in [(0u64, 0.1f32), (1, 0.9), (2, 0.5)] {
///     t.push(id, s);
/// }
/// let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
/// assert_eq!(ids, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap under the best-first `Neighbor` ordering, so `peek()` is the
    // *worst* retained hit — the eviction candidate.
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a selector for the best `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; an empty selection is never meaningful in a
    /// search path and indicates a configuration bug.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK capacity must be positive");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The capacity `k` this selector was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no item has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current lowest retained score, or `None` while under capacity.
    ///
    /// Search loops use this as an early-termination bound: a candidate
    /// whose upper-bound similarity is below `worst_score` cannot enter.
    pub fn worst_score(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|n| n.score)
        }
    }

    /// Offers `(id, score)`; returns `true` if it was retained.
    pub fn push(&mut self, id: u64, score: f32) -> bool {
        let cand = Neighbor::new(id, score);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            return true;
        }
        let worst = *self.heap.peek().expect("non-empty at capacity");
        // `cand < worst` under the best-first ordering means cand is better.
        if cand.cmp(&worst) == Ordering::Less {
            self.heap.pop();
            self.heap.push(cand);
            true
        } else {
            false
        }
    }

    /// Consumes the selector, returning hits sorted best-first.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

impl Extend<Neighbor> for TopK {
    fn extend<T: IntoIterator<Item = Neighbor>>(&mut self, iter: T) {
        for n in iter {
            self.push(n.id, n.score);
        }
    }
}

/// Merges several already-sorted result lists into a single best-first
/// top-`k` list. Used to aggregate per-cluster deep-search results.
pub fn merge_topk(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut sel = TopK::new(k.max(1));
    for list in lists {
        for n in list {
            sel.push(n.id, n.score);
        }
    }
    let mut out = sel.into_sorted_vec();
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for i in 0..10u64 {
            t.push(i, i as f32);
        }
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![9, 8, 7]);
    }

    #[test]
    fn output_is_sorted_descending_by_score() {
        let mut t = TopK::new(5);
        for (i, s) in [(1u64, 0.3f32), (2, 0.9), (3, 0.1), (4, 0.7)] {
            t.push(i, s);
        }
        let v = t.into_sorted_vec();
        for w in v.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut t = TopK::new(2);
        t.push(7, 0.5);
        t.push(3, 0.5);
        t.push(5, 0.5);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn worst_score_none_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst_score(), None);
        t.push(0, 1.0);
        assert_eq!(t.worst_score(), None);
        t.push(1, 2.0);
        assert_eq!(t.worst_score(), Some(1.0));
    }

    #[test]
    fn push_returns_whether_retained() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 1.0));
        assert!(!t.push(1, 0.5));
        assert!(t.push(2, 2.0));
    }

    #[test]
    fn nan_scores_never_displace_real_scores() {
        let mut t = TopK::new(2);
        t.push(0, 1.0);
        t.push(1, 2.0);
        t.push(2, f32::NAN);
        let ids: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 0]);
    }

    #[test]
    fn merge_topk_aggregates_across_lists() {
        let a = vec![Neighbor::new(1, 0.9), Neighbor::new(2, 0.4)];
        let b = vec![Neighbor::new(3, 0.8), Neighbor::new(4, 0.1)];
        let merged = merge_topk(&[a, b], 3);
        let ids: Vec<u64> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn extend_accepts_neighbors() {
        let mut t = TopK::new(2);
        t.extend(vec![Neighbor::new(0, 0.1), Neighbor::new(1, 0.9)]);
        assert_eq!(t.len(), 2);
    }
}
