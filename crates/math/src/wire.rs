//! Minimal little-endian binary wire format for index persistence.
//!
//! The paper's workflow builds indices offline and serves them online
//! (Appendix A.5 steps 7 vs 8); persistence is what connects the two.
//! The format is deliberately simple: length-prefixed primitives, no
//! self-description, a magic header with a version byte per container.
//! Buffers are plain `Vec<u8>` / `&[u8]` — no external byte crates.

use crate::Mat;

/// Errors produced while decoding a persisted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the expected payload.
    Truncated,
    /// Magic bytes or version did not match.
    BadHeader {
        /// What the decoder expected.
        expected: &'static str,
    },
    /// A length or enum tag was out of range.
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadHeader { expected } => write!(f, "bad header, expected {expected}"),
            WireError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// 64-bit FNV-1a hash — the workspace's page/section checksum. Chosen
/// over CRC because it is a dozen lines of dependency-free code with
/// good avalanche on the byte-flip and truncation corruptions the
/// persistence layer must detect; it is *not* cryptographic.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Sequential writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Writes a magic tag (fixed 8 bytes, padded with zeros) + version.
    pub fn header(&mut self, magic: &str, version: u8) {
        let mut tag = [0u8; 8];
        for (dst, src) in tag.iter_mut().zip(magic.bytes()) {
            *dst = src;
        }
        self.buf.extend_from_slice(&tag);
        self.buf.push(version);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn f32s(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        self.buf.reserve(4 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        self.buf.reserve(8 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Writes a matrix (rows, cols, row-major data).
    pub fn mat(&mut self, m: &Mat) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        self.buf.reserve(4 * m.rows() * m.cols());
        for &x in m.as_slice() {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Finishes and returns the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over an immutable buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.len() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Consumes and returns the next `n` bytes; caller must `need` first.
    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        head
    }

    /// Checks a magic tag + version written by [`Writer::header`].
    pub fn header(&mut self, magic: &'static str, version: u8) -> Result<(), WireError> {
        self.need(9)?;
        let tag = self.take(8);
        let mut expected = [0u8; 8];
        for (dst, src) in expected.iter_mut().zip(magic.bytes()) {
            *dst = src;
        }
        let v = self.take(1)[0];
        if tag != expected || v != version {
            return Err(WireError::BadHeader { expected: magic });
        }
        Ok(())
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.take(1)[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(u32::from_le_bytes(self.take(4).try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(u64::from_le_bytes(self.take(8).try_into().unwrap()))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        self.need(4)?;
        Ok(f32::from_le_bytes(self.take(4).try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        self.need(8)?;
        Ok(f64::from_le_bytes(self.take(8).try_into().unwrap()))
    }

    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u64()? as usize;
        // Guard against hostile lengths before allocating.
        if n.checked_mul(elem_size).is_none_or(|total| total > self.buf.len()) {
            return Err(WireError::Corrupt(format!("length {n} exceeds buffer")));
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n).to_vec())
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.len_prefix(4)?;
        Ok(self
            .take(4 * n)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len_prefix(8)?;
        Ok(self
            .take(8 * n)
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a matrix written by [`Writer::mat`].
    pub fn mat(&mut self) -> Result<Mat, WireError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let total = rows
            .checked_mul(cols)
            .ok_or_else(|| WireError::Corrupt("matrix shape overflow".into()))?;
        if total.checked_mul(4).is_none_or(|b| b > self.buf.len()) {
            return Err(WireError::Corrupt(format!(
                "matrix {rows}x{cols} exceeds buffer"
            )));
        }
        let data = self
            .take(4 * total)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Mat::from_flat(rows, cols, data))
    }

    /// Whether the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Types that can append themselves to a [`Writer`].
pub trait WireEncode {
    /// Appends this value's encoding to `w`.
    fn encode_wire(&self, w: &mut Writer);
}

/// Types that can reconstruct themselves from a [`Reader`].
pub trait WireDecode: Sized {
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, bad tags or corrupt lengths.
    fn decode_wire(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl WireEncode for Mat {
    fn encode_wire(&self, w: &mut Writer) {
        w.mat(self);
    }
}

impl WireDecode for Mat {
    fn decode_wire(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.mat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.header("TEST", 3);
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(1.25);
        w.f64(-2.5);
        w.bytes(&[1, 2, 3]);
        w.f32s(&[0.5, -0.5]);
        w.u64s(&[9, 8]);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        r.header("TEST", 3).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), 1.25);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f32s().unwrap(), vec![0.5, -0.5]);
        assert_eq!(r.u64s().unwrap(), vec![9, 8]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn mat_round_trips() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut w = Writer::new();
        w.mat(&m);
        let buf = w.finish();
        let got = Reader::new(&buf).mat().unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut w = Writer::new();
        w.header("AAAA", 1);
        let buf = w.finish();
        let err = Reader::new(&buf).header("BBBB", 1).unwrap_err();
        assert!(matches!(err, WireError::BadHeader { .. }));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut w = Writer::new();
        w.header("AAAA", 1);
        let buf = w.finish();
        assert!(Reader::new(&buf).header("AAAA", 2).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.u64s(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..10]);
        assert!(r.u64s().is_err());
    }

    #[test]
    fn checksum64_detects_single_byte_flips() {
        let base = b"hermes paged store".to_vec();
        let h = checksum64(&base);
        // Known FNV-1a property: empty input hashes to the offset basis.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(checksum64(&flipped), h, "flip at {i} undetected");
        }
        // Truncation by one byte changes the hash too.
        assert_ne!(checksum64(&base[..base.len() - 1]), h);
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd length prefix
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.f32s(), Err(WireError::Corrupt(_))));
    }
}
