//! Vector math substrate for the Hermes reproduction.
//!
//! This crate provides the numeric building blocks every other crate in the
//! workspace leans on:
//!
//! * [`distance`] — distance/similarity kernels ([`Metric`]) used by the
//!   flat, IVF and HNSW indices,
//! * [`block`] — blocked query-vs-row-block kernels with register tiling
//!   (the hot scan-loop form), pinned to the scalar kernels by the
//!   two-tier equivalence contract documented there,
//! * [`simd`] — runtime SIMD dispatch ([`SimdLevel`]): AVX2/FMA and NEON
//!   implementations of the blocked kernels behind a once-per-process
//!   CPU-feature decision, overridable via `HERMES_SIMD`,
//! * [`topk`] — bounded best-k selection ([`topk::TopK`]),
//! * [`matrix`] — a minimal row-major matrix ([`matrix::Mat`]) used for OPQ
//!   rotations and K-means centroid tables,
//! * [`stats`] — online and batch summary statistics used by the metrics
//!   and performance-model crates,
//! * [`rng`] — deterministic, seed-derivable random number generators.
//!
//! # Examples
//!
//! ```
//! use hermes_math::{Metric, topk::TopK};
//!
//! let query = [1.0f32, 0.0];
//! let docs = [[0.9f32, 0.1], [0.0, 1.0]];
//! let mut best = TopK::new(1);
//! for (id, d) in docs.iter().enumerate() {
//!     best.push(id as u64, Metric::InnerProduct.similarity(&query, d));
//! }
//! assert_eq!(best.into_sorted_vec()[0].id, 0);
//! ```

pub mod block;
pub mod distance;
pub mod matrix;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod topk;
pub mod wire;

pub use distance::Metric;
pub use matrix::Mat;
pub use simd::{parse_hermes_simd, simd_level, SimdLevel};
pub use topk::{Neighbor, TopK};

/// The scalar element type used for all embeddings in the workspace.
pub type Scalar = f32;
