//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (K-means init, synthetic
//! corpus, query traces, quantizer training) takes an explicit `u64` seed
//! and derives per-subsystem streams with [`derive_seed`], so experiments
//! replay bit-identically across runs and machines.
//!
//! The generator is a from-scratch ChaCha8 keystream (no external crates;
//! see the zero-dependency policy in DESIGN.md). The stream for a given
//! seed is frozen by a regression test in `tests/determinism.rs` — if you
//! change anything here, expect that test to fail loudly and re-golden it
//! deliberately, noting the change in EXPERIMENTS.md.

/// The deterministic RNG used throughout the workspace.
///
/// A ChaCha8-based generator seeded from a single `u64`. The key is the
/// SplitMix64 expansion of the seed, the nonce is zero and the 64-bit
/// block counter starts at zero, giving a 2^70-byte period — far beyond
/// anything the experiments draw.
#[derive(Debug, Clone)]
pub struct SeededRng {
    /// ChaCha input block: constants, 8 key words, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill needed".
    word: usize,
}

const CHACHA_ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeededRng {
    /// Creates a generator from a bare seed (see [`seeded_rng`]).
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64 so
        // nearby seeds produce unrelated keys.
        let mut key = [0u32; 8];
        let mut s = seed;
        for pair in key.chunks_mut(2) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k", the standard ChaCha constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&key);
        // state[12..14] = 64-bit block counter, state[14..16] = nonce.
        SeededRng {
            state,
            block: [0u32; 16],
            word: 16,
        }
    }

    /// Runs the ChaCha8 block function and advances the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }

    /// Returns the next word of the keystream.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let v = self.block[self.word];
        self.word += 1;
        v
    }

    /// Returns the next 64 bits of the keystream (low word first).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range.
    ///
    /// Supported range types: `usize`, `u32`, `u64`, `i64`, `f32`, `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Fills `dest` with keystream bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }
}

/// Scalar types [`SeededRng::gen_range`] can sample uniformly.
pub trait UniformRange: Sized {
    /// Draws a uniform sample from `range`.
    fn sample(rng: &mut SeededRng, range: std::ops::Range<Self>) -> Self;
}

/// Maps a raw 64-bit draw into `[0, span)` by widening multiply.
///
/// Bias is at most `span / 2^64`, irrelevant at the spans used here.
#[inline]
fn bounded_u64(rng: &mut SeededRng, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformRange for $ty {
            #[inline]
            fn sample(rng: &mut SeededRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(usize, u32, u64, i64);

impl UniformRange for f32 {
    #[inline]
    fn sample(rng: &mut SeededRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + rng.next_f32() * (range.end - range.start)
    }
}

impl UniformRange for f64 {
    #[inline]
    fn sample(rng: &mut SeededRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

/// Creates a [`SeededRng`] from a bare seed.
///
/// # Examples
///
/// ```
/// use hermes_math::rng::seeded_rng;
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn seeded_rng(seed: u64) -> SeededRng {
    SeededRng::new(seed)
}

/// Derives an independent stream seed from a parent seed and a label.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64`, so
/// distinct `(seed, stream)` pairs map to distinct derived seeds whenever
/// `seed + stream` differ.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(0, 1), derive_seed(1, 1));
    }

    #[test]
    fn derived_streams_are_statistically_distinct() {
        let mut a = seeded_rng(derive_seed(9, 0));
        let mut b = seeded_rng(derive_seed(9, 1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = seeded_rng(3);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "f32 out of range: {x}");
            let y = rng.next_f64();
            assert!((0.0..1.0).contains(&y), "f64 out of range: {y}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = seeded_rng(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_span() {
        let mut rng = seeded_rng(5);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded_rng(6);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_covers_the_slice_and_handles_empty() {
        let mut rng = seeded_rng(7);
        let xs = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..64 {
            let &v = rng.choose(&xs).unwrap();
            seen[xs.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.choose::<i32>(&[]), None);
    }

    #[test]
    fn fill_matches_word_stream() {
        let mut a = seeded_rng(8);
        let mut b = seeded_rng(8);
        let mut buf = [0u8; 11];
        a.fill(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..], &w2[..3]);
    }

    #[test]
    fn counter_overflow_carries_into_high_word() {
        let mut rng = seeded_rng(9);
        rng.state[12] = u32::MAX;
        rng.word = 16;
        let _ = rng.next_u32();
        assert_eq!(rng.state[12], 0);
        assert_eq!(rng.state[13], 1);
    }
}
