//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (K-means init, synthetic
//! corpus, query traces, quantizer training) takes an explicit `u64` seed
//! and derives per-subsystem streams with [`derive_seed`], so experiments
//! replay bit-identically across runs and machines.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used throughout the workspace.
pub type SeededRng = ChaCha8Rng;

/// Creates a [`SeededRng`] from a bare seed.
///
/// # Examples
///
/// ```
/// use hermes_math::rng::seeded_rng;
/// use rand::Rng;
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SeededRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a parent seed and a label.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64`, so
/// distinct `(seed, stream)` pairs map to distinct derived seeds whenever
/// `seed + stream` differ.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(0, 1), derive_seed(1, 1));
    }

    #[test]
    fn derived_streams_are_statistically_distinct() {
        let mut a = seeded_rng(derive_seed(9, 0));
        let mut b = seeded_rng(derive_seed(9, 1));
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
