//! Distance and similarity kernels.
//!
//! All indices in the workspace rank candidates by a *similarity* in which
//! **greater is better**. For inner-product and cosine that is the raw
//! score; for Euclidean it is the negated squared distance. Folding the
//! orientation into one convention keeps every downstream heap, ranker and
//! NDCG computation branch-free.


/// The metric used to compare embedding vectors.
///
/// # Examples
///
/// ```
/// use hermes_math::Metric;
/// let a = [1.0f32, 0.0];
/// let b = [0.0f32, 1.0];
/// assert!(Metric::L2.similarity(&a, &b) < Metric::L2.similarity(&a, &a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Euclidean distance; similarity is `-||a-b||^2`.
    L2,
    /// Dot product; the paper re-ranks retrieved chunks by inner product.
    #[default]
    InnerProduct,
    /// Cosine similarity (inner product of normalized vectors).
    Cosine,
}

impl Metric {
    /// Similarity between `a` and `b` under this metric (greater = closer).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths — in release builds
    /// too. This used to be a `debug_assert!` that silently truncated to
    /// the shorter slice in release; hot scan loops now go through
    /// [`Metric::similarity_block`], which validates once per block, so
    /// the per-call check here is off every fast path.
    #[inline]
    pub fn similarity(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            Metric::L2 => -l2_sq(a, b),
            Metric::InnerProduct => inner_product(a, b),
            Metric::Cosine => cosine(a, b),
        }
    }

    /// Similarity of `query` against each row of a contiguous row-major
    /// block — the blocked form of [`Metric::similarity`], dispatching to
    /// the [`crate::block`] kernels at the process-wide
    /// [`simd_level`](crate::simd::simd_level). At
    /// [`SimdLevel::Scalar`](crate::simd::SimdLevel) `out[i]` is
    /// bit-identical to `self.similarity(query, row_i)`; at a SIMD level
    /// it is bit-identical to that level's lane-ordered reduction
    /// reference and within the pinned ULP bound of the scalar value
    /// (the tier-B contract in [`crate::block`]). Dimensions are
    /// validated once per block instead of once per vector.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
    #[inline]
    pub fn similarity_block(self, query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
        self.similarity_block_at(crate::simd::simd_level(), query, rows, dim, out);
    }

    /// [`Metric::similarity_block`] at an explicit dispatch level — the
    /// seam equivalence suites use to pin every runnable kernel in one
    /// process. The L2 sign flip is a scalar unary negation at every
    /// level, so it never perturbs the contract.
    #[inline]
    pub fn similarity_block_at(
        self,
        level: crate::simd::SimdLevel,
        query: &[f32],
        rows: &[f32],
        dim: usize,
        out: &mut [f32],
    ) {
        match self {
            Metric::L2 => {
                crate::block::l2_sq_block_at(level, query, rows, dim, out);
                for o in out.iter_mut() {
                    *o = -*o;
                }
            }
            Metric::InnerProduct => {
                crate::block::inner_product_block_at(level, query, rows, dim, out)
            }
            Metric::Cosine => crate::block::cosine_block_at(level, query, rows, dim, out),
        }
    }

    /// Whether this metric's similarity is translation-invariant. K-means
    /// (which minimizes L2) is still a usable coarse quantizer for IP and
    /// cosine data in practice; this flag lets callers warn on mismatch.
    #[inline]
    pub fn is_euclidean(self) -> bool {
        matches!(self, Metric::L2)
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Metric::L2 => "l2",
            Metric::InnerProduct => "ip",
            Metric::Cosine => "cosine",
        };
        f.write_str(name)
    }
}

/// Squared Euclidean distance `||a - b||^2`.
///
/// Unrolled by chunks of 4 so the autovectorizer reliably emits SIMD on the
/// target CPUs without `unsafe` or architecture-specific intrinsics.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Dot product `a · b`.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Euclidean norm `||a||`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    inner_product(a, a).sqrt()
}

/// Cosine similarity; `0.0` when either vector is all-zero.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    inner_product(a, b) / (na * nb)
}

/// Normalizes `v` in place to unit length; leaves all-zero vectors alone.
#[inline]
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// `out[i] += v[i]` — accumulate a vector into a running sum.
#[inline]
pub fn add_assign(out: &mut [f32], v: &[f32]) {
    debug_assert_eq!(out.len(), v.len());
    for (o, x) in out.iter_mut().zip(v) {
        *o += *x;
    }
}

/// `out[i] *= s` — in-place scalar multiply.
#[inline]
pub fn scale(out: &mut [f32], s: f32) {
    for o in out.iter_mut() {
        *o *= s;
    }
}

/// `a[i] - b[i]` into a freshly allocated vector.
#[inline]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_of_identical_vectors_is_zero() {
        let v = [1.0, -2.5, 3.25, 0.0, 9.0];
        assert_eq!(l2_sq(&v, &v), 0.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(l2_sq(&a, &b), 9.0 + 16.0);
    }

    #[test]
    fn inner_product_matches_hand_computation() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(inner_product(&a, &b), 35.0);
    }

    #[test]
    fn cosine_is_one_for_parallel_vectors() {
        let a = [2.0, 0.0, 0.0];
        let b = [7.5, 0.0, 0.0];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_leaves_zero_vector() {
        let mut v = vec![0.0; 8];
        normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn metric_similarity_orients_l2_correctly() {
        let q = [0.0, 0.0];
        let near = [0.1, 0.1];
        let far = [5.0, 5.0];
        assert!(Metric::L2.similarity(&q, &near) > Metric::L2.similarity(&q, &far));
    }

    #[test]
    fn metric_display_is_stable() {
        assert_eq!(Metric::L2.to_string(), "l2");
        assert_eq!(Metric::InnerProduct.to_string(), "ip");
        assert_eq!(Metric::Cosine.to_string(), "cosine");
    }

    #[test]
    fn add_assign_and_scale_compose_to_mean() {
        let mut acc = vec![0.0; 3];
        add_assign(&mut acc, &[1.0, 2.0, 3.0]);
        add_assign(&mut acc, &[3.0, 2.0, 1.0]);
        scale(&mut acc, 0.5);
        assert_eq!(acc, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn sub_subtracts_elementwise() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn similarity_rejects_length_mismatch_even_in_release() {
        let _ = Metric::InnerProduct.similarity(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn similarity_block_at_scalar_matches_similarity_for_all_metrics() {
        let query = [0.5f32, -1.0, 2.0, 0.25, -0.125];
        let rows = [1.0f32, 2.0, 3.0, 4.0, 5.0, -1.0, 0.0, 1.0, 0.5, 2.5];
        let mut out = [0.0f32; 2];
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            metric.similarity_block_at(crate::simd::SimdLevel::Scalar, &query, &rows, 5, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = metric.similarity(&query, &rows[i * 5..(i + 1) * 5]);
                assert_eq!(o.to_bits(), want.to_bits(), "{metric} row {i}");
            }
        }
    }

    #[test]
    fn similarity_block_orientation_is_uniform_across_levels() {
        // Whatever the dispatch level, L2 similarities stay negated and
        // ordering-compatible with the scalar metric.
        let query = [0.25f32, -0.5, 1.5, 2.0, -1.0, 0.125, 3.0];
        let rows: Vec<f32> = (0..7 * 6).map(|i| (i as f32).sin()).collect();
        let mut scalar = [0.0f32; 6];
        Metric::L2.similarity_block_at(
            crate::simd::SimdLevel::Scalar,
            &query,
            &rows,
            7,
            &mut scalar,
        );
        for level in crate::simd::SimdLevel::available() {
            let mut out = [0.0f32; 6];
            Metric::L2.similarity_block_at(level, &query, &rows, 7, &mut out);
            for (o, s) in out.iter().zip(&scalar) {
                assert!(*o <= 0.0, "{level}: L2 similarity must be non-positive");
                assert!((o - s).abs() <= 1e-4 * s.abs().max(1.0), "{level}");
            }
        }
    }

    #[test]
    fn kernels_handle_non_multiple_of_four_lengths() {
        for len in [1usize, 2, 3, 5, 7, 9, 17] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i * 2) as f32).collect();
            let naive_l2: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_ip: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((l2_sq(&a, &b) - naive_l2).abs() < 1e-4, "len {len}");
            assert!((inner_product(&a, &b) - naive_ip).abs() < 1e-4, "len {len}");
        }
    }
}
