//! Runtime SIMD dispatch for the scoring kernels.
//!
//! The blocked kernels in [`crate::block`] exist in up to three
//! implementations: the portable scalar reference (always present),
//! AVX2+FMA on x86_64 and NEON on aarch64. Which one runs is decided
//! **once per process** — the first scoring call detects CPU features
//! (or honours the `HERMES_SIMD` override), caches the choice in an
//! atomic, and every block entry point thereafter pays one relaxed load.
//!
//! # `HERMES_SIMD`
//!
//! `HERMES_SIMD={auto,avx2,neon,scalar}` forces a dispatch level, the
//! way `HERMES_THREADS` forces a pool width. `auto` (or unset) picks the
//! best supported level; forcing a level the CPU cannot run, or an
//! unrecognized value, warns once on stderr and falls back to `auto` —
//! matching the `parse_hermes_threads` precedent of never failing on a
//! bad environment value. [`parse_hermes_simd`] is pure so every case is
//! unit testable without mutating the process environment.
//!
//! # The two-tier equivalence contract
//!
//! Dispatch is only sound because every level is pinned to the same
//! results, at two strictnesses (see DESIGN.md "Scoring kernels"):
//!
//! * **Tier A — bit-identical.** The SQ8 dequantize-and-score and PQ/ADC
//!   table walks perform, per code, the *exact same sequence of f32
//!   operations* at every level: the SIMD forms vectorize **across
//!   codes** (one lane per code) so each code keeps one accumulator
//!   folded sequentially over dimensions, with no FMA contraction.
//!   `QueryScorer::score_block` is bit-identical to `score` regardless
//!   of level.
//! * **Tier B — pinned reduction order per level, ULP-bounded across
//!   levels.** The f32 reductions vectorize **within a row**, so each
//!   level reassociates differently. Every level is bit-identical to
//!   the deterministic lane-ordered reference
//!   (`hermes_testkit::lane_ordered_fold`) at its own
//!   [`SimdLevel::lanes`]/[`SimdLevel::fused`] parameters, and levels
//!   agree with each other within the pinned ULP bound recorded in
//!   EXPERIMENTS.md.
//!
//! Because a process never mixes levels (one decision, cached), every
//! within-process equivalence pin in the workspace — engine vs legacy,
//! serving vs standalone, blocked vs fused scans — still holds
//! bit-for-bit at whatever level was selected.

use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::Once;

/// A dispatchable kernel implementation.
///
/// All variants exist on every architecture (so parsing and display are
/// uniform); [`SimdLevel::is_supported`] says whether this CPU can run
/// one. Passing an unsupported level to a `*_at` kernel entry point is
/// not undefined behaviour — it scores via the scalar reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar reference: 4 unfused accumulator lanes.
    Scalar = 0,
    /// x86_64 AVX2 + FMA: 8 fused accumulator lanes.
    Avx2 = 1,
    /// aarch64 NEON: 4 fused accumulator lanes.
    Neon = 2,
}

impl SimdLevel {
    /// Every level, in preference order (best first) — the order
    /// [`simd_level`] probes under `auto`.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Avx2, SimdLevel::Neon, SimdLevel::Scalar];

    /// Accumulator lanes per f32 reduction at this level — the `lanes`
    /// argument of the `lane_ordered_fold` tier-B reference.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Neon => 4,
        }
    }

    /// Whether this level's f32 reductions fuse multiply-add (one
    /// rounding per term, `f32::mul_add` semantics) instead of rounding
    /// the product first. SIMD levels fuse; the scalar reference does
    /// not.
    #[inline]
    pub fn fused(self) -> bool {
        !matches!(self, SimdLevel::Scalar)
    }

    /// Whether this CPU can execute this level's kernels. Feature
    /// detection is cached by the standard library, so this is cheap
    /// enough for per-block guards.
    #[inline]
    pub fn is_supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            SimdLevel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            // NEON is a mandatory part of AArch64.
            SimdLevel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The levels this CPU supports, best first (always ends with
    /// `Scalar`). Equivalence suites iterate this to pin every runnable
    /// kernel, not just the selected one.
    pub fn available() -> Vec<SimdLevel> {
        Self::ALL.into_iter().filter(|l| l.is_supported()).collect()
    }

    /// Stable lower-case name; also the accepted `HERMES_SIMD` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Interprets a `HERMES_SIMD` value. `Ok(None)` means auto-detect
/// (unset, blank, or the literal `auto`); `Ok(Some(level))` is an
/// explicit force; `Err` carries the warning for anything else. Callers
/// must treat `Err` as auto plus a warning — never a hard failure —
/// matching the `parse_hermes_threads` precedent.
pub fn parse_hermes_simd(value: Option<&str>) -> Result<Option<SimdLevel>, String> {
    let Some(raw) = value else { return Ok(None) };
    let t = raw.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    for level in SimdLevel::ALL {
        if t.eq_ignore_ascii_case(level.as_str()) {
            return Ok(Some(level));
        }
    }
    Err(format!(
        "unrecognized HERMES_SIMD value {raw:?} (expected auto, avx2, neon or scalar); using auto"
    ))
}

/// Best level this CPU supports — the `auto` choice.
fn detect() -> SimdLevel {
    SimdLevel::available()[0]
}

/// Resolves an environment value to the level a process would run at,
/// plus the warning (if any) it would print. Pure: the decision logic
/// is testable without touching [`simd_level`]'s process-wide cache.
pub fn resolve_simd_level(env: Option<&str>) -> (SimdLevel, Option<String>) {
    match parse_hermes_simd(env) {
        Ok(None) => (detect(), None),
        Ok(Some(level)) if level.is_supported() => (level, None),
        Ok(Some(level)) => (
            detect(),
            Some(format!(
                "HERMES_SIMD={level} is not supported on this CPU; using auto"
            )),
        ),
        Err(msg) => (detect(), Some(msg)),
    }
}

const UNDECIDED: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNDECIDED);
static DECIDE: Once = Once::new();
static DECISIONS: AtomicU64 = AtomicU64::new(0);

fn decode(v: u8) -> SimdLevel {
    match v {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Avx2,
        2 => SimdLevel::Neon,
        _ => unreachable!("corrupt cached SimdLevel {v}"),
    }
}

/// The dispatch level this process scores with.
///
/// Decided exactly once (first call wins, `HERMES_SIMD` honoured at
/// that point, warning printed at most once); afterwards a single
/// relaxed atomic load. Tests that need a *different* level in the same
/// process use the `*_at` kernel entry points instead of the
/// environment.
pub fn simd_level() -> SimdLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNDECIDED {
        return decode(v);
    }
    DECIDE.call_once(|| {
        DECISIONS.fetch_add(1, Ordering::Relaxed);
        let (level, warning) = resolve_simd_level(std::env::var("HERMES_SIMD").ok().as_deref());
        if let Some(w) = warning {
            eprintln!("hermes-math: {w}");
        }
        LEVEL.store(level as u8, Ordering::Relaxed);
    });
    decode(LEVEL.load(Ordering::Relaxed))
}

/// How many times the process-wide dispatch decision has run. Exposed
/// so the regression suite can assert it is exactly 1 no matter how
/// many threads race through [`simd_level`].
pub fn simd_decision_count() -> u64 {
    DECISIONS.load(Ordering::Relaxed)
}

/// AVX2+FMA kernels. Callers must hold a [`SimdLevel::Avx2`]
/// `is_supported()` proof before calling anything here — the
/// `#[target_feature]` functions are UB on CPUs without the features.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use core::arch::x86_64::*;

    /// Sums the 8 lanes strictly left to right — the lane-combination
    /// order the tier-B reference pins.
    #[inline]
    unsafe fn hsum_in_order(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        let mut sum = lanes[0];
        for &l in &lanes[1..] {
            sum += l;
        }
        sum
    }

    /// `q · x` with 8 fused lanes; bit-identical to
    /// `lane_ordered_fold(n, 8, |acc, i| q[i].mul_add(x[i], acc))`
    /// (`vfmadd` and `f32::mul_add` are both correctly-rounded fma).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn ip_row(q: &[f32], x: &[f32]) -> f32 {
        let n = q.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let b = c * 8;
            let qa = _mm256_loadu_ps(q.as_ptr().add(b));
            let xa = _mm256_loadu_ps(x.as_ptr().add(b));
            acc = _mm256_fmadd_ps(xa, qa, acc);
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 8..n {
            sum = x[i].mul_add(q[i], sum);
        }
        sum
    }

    /// `||q - x||²` with 8 fused lanes; term `(q[i]-x[i]).mul_add(q[i]-x[i], acc)`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn l2_row(q: &[f32], x: &[f32]) -> f32 {
        let n = q.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let b = c * 8;
            let qa = _mm256_loadu_ps(q.as_ptr().add(b));
            let xa = _mm256_loadu_ps(x.as_ptr().add(b));
            let d = _mm256_sub_ps(qa, xa);
            acc = _mm256_fmadd_ps(d, d, acc);
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 8..n {
            let d = q[i] - x[i];
            sum = d.mul_add(d, sum);
        }
        sum
    }

    /// `||x||²` with 8 fused lanes; term `x[i].mul_add(x[i], acc)`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq_norm_row(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let xa = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            acc = _mm256_fmadd_ps(xa, xa, acc);
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 8..n {
            sum = x[i].mul_add(x[i], sum);
        }
        sum
    }

    /// Four dot products sharing each loaded query chunk; per row
    /// identical to [`ip_row`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn ip_tile4(q: &[f32], rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = q.len();
        let chunks = n / 8;
        let mut acc = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let b = c * 8;
            let qa = _mm256_loadu_ps(q.as_ptr().add(b));
            for (t, row) in rows.iter().enumerate() {
                let xa = _mm256_loadu_ps(row.as_ptr().add(b));
                acc[t] = _mm256_fmadd_ps(xa, qa, acc[t]);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 8..n {
                sum = row[i].mul_add(q[i], sum);
            }
            out[t] = sum;
        }
    }

    /// Four squared distances sharing each loaded query chunk; per row
    /// identical to [`l2_row`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn l2_tile4(q: &[f32], rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = q.len();
        let chunks = n / 8;
        let mut acc = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let b = c * 8;
            let qa = _mm256_loadu_ps(q.as_ptr().add(b));
            for (t, row) in rows.iter().enumerate() {
                let xa = _mm256_loadu_ps(row.as_ptr().add(b));
                let d = _mm256_sub_ps(qa, xa);
                acc[t] = _mm256_fmadd_ps(d, d, acc[t]);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 8..n {
                let d = q[i] - row[i];
                sum = d.mul_add(d, sum);
            }
            out[t] = sum;
        }
    }

    /// Four squared norms; per row identical to [`sq_norm_row`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sq_norm_tile4(rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = rows[0].len();
        let chunks = n / 8;
        let mut acc = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let b = c * 8;
            for (t, row) in rows.iter().enumerate() {
                let xa = _mm256_loadu_ps(row.as_ptr().add(b));
                acc[t] = _mm256_fmadd_ps(xa, xa, acc[t]);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 8..n {
                sum = row[i].mul_add(row[i], sum);
            }
            out[t] = sum;
        }
    }

    /// Byte offsets `{0, stride, …, 7·stride}` for gathering one byte
    /// from each of 8 consecutive codes.
    #[inline]
    unsafe fn code_offsets(stride: usize) -> __m256i {
        _mm256_mullo_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(stride as i32),
        )
    }

    /// Tier-A SQ8 kernels: vectorized **across codes** (one lane per
    /// code), each lane folding dimensions sequentially with the exact
    /// scalar operation order — `mul`/`add` kept separate, no FMA — so
    /// results are bit-identical to the scalar walk. Returns how many
    /// leading codes were scored; the caller finishes the rest with the
    /// scalar kernel. Tiles stop one short of the buffer end because
    /// each byte gather reads 4 bytes per lane.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq8_ip_tiles(
        q: &[f32],
        mins: &[f32],
        scales: &[f32],
        codes: &[u8],
        out: &mut [f32],
    ) -> usize {
        let dim = q.len();
        if dim == 0 || dim > (i32::MAX as usize) / 8 {
            return 0;
        }
        let offs = code_offsets(dim);
        let mask = _mm256_set1_epi32(0xFF);
        let mut r = 0;
        // Last byte gathered for tile r is at (r+7)*dim + (dim-1) and the
        // gather reads 4 bytes, hence the +3 slack requirement.
        while r + 8 <= out.len() && (r + 8) * dim + 3 <= codes.len() {
            let base = codes.as_ptr().add(r * dim);
            let mut acc = _mm256_setzero_ps();
            for d in 0..dim {
                let raw = _mm256_i32gather_epi32::<1>(base.add(d) as *const i32, offs);
                let lv = _mm256_cvtepi32_ps(_mm256_and_si256(raw, mask));
                let val = _mm256_add_ps(
                    _mm256_set1_ps(mins[d]),
                    _mm256_mul_ps(lv, _mm256_set1_ps(scales[d])),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(q[d]), val));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(r), acc);
            r += 8;
        }
        r
    }

    /// See [`sq8_ip_tiles`]; writes the **negated** accumulated squared
    /// distance (sign flipped by XOR, matching scalar unary negation
    /// bit-for-bit, `-0.0` included).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq8_l2_tiles(
        q: &[f32],
        mins: &[f32],
        scales: &[f32],
        codes: &[u8],
        out: &mut [f32],
    ) -> usize {
        let dim = q.len();
        if dim == 0 || dim > (i32::MAX as usize) / 8 {
            return 0;
        }
        let offs = code_offsets(dim);
        let mask = _mm256_set1_epi32(0xFF);
        let sign = _mm256_set1_ps(-0.0);
        let mut r = 0;
        while r + 8 <= out.len() && (r + 8) * dim + 3 <= codes.len() {
            let base = codes.as_ptr().add(r * dim);
            let mut acc = _mm256_setzero_ps();
            for d in 0..dim {
                let raw = _mm256_i32gather_epi32::<1>(base.add(d) as *const i32, offs);
                let lv = _mm256_cvtepi32_ps(_mm256_and_si256(raw, mask));
                let val = _mm256_add_ps(
                    _mm256_set1_ps(mins[d]),
                    _mm256_mul_ps(lv, _mm256_set1_ps(scales[d])),
                );
                let diff = _mm256_sub_ps(_mm256_set1_ps(q[d]), val);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(r), _mm256_xor_ps(acc, sign));
            r += 8;
        }
        r
    }

    /// Tier-A PQ/ADC table walk: 8 codes per tile, one lane per code,
    /// pure float gathers + in-order adds — bit-identical to the scalar
    /// walk. Same return/slack convention as [`sq8_ip_tiles`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_tiles(tables: &[f32], m: usize, codes: &[u8], out: &mut [f32]) -> usize {
        if m == 0 || m > (i32::MAX as usize) / 8 {
            return 0;
        }
        let offs = code_offsets(m);
        let mask = _mm256_set1_epi32(0xFF);
        let mut r = 0;
        while r + 8 <= out.len() && (r + 8) * m + 3 <= codes.len() {
            let base = codes.as_ptr().add(r * m);
            let mut acc = _mm256_setzero_ps();
            for sub in 0..m {
                let raw = _mm256_i32gather_epi32::<1>(base.add(sub) as *const i32, offs);
                let idx = _mm256_and_si256(raw, mask);
                // idx < 256 and tables holds m*256 floats, so the float
                // gather is always in bounds.
                let vals = _mm256_i32gather_ps::<4>(tables.as_ptr().add(sub * 256), idx);
                acc = _mm256_add_ps(acc, vals);
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(r), acc);
            r += 8;
        }
        r
    }
}

/// NEON kernels: 4 fused lanes (`vfmaq_f32` is correctly-rounded fma,
/// matching `f32::mul_add`), lane sum in order via a stack store, the
/// same structure as the AVX2 module at half the width. NEON is
/// mandatory on AArch64 so these are safe whenever they compile, but
/// they keep the `unsafe`/`target_feature` shape for symmetry.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use core::arch::aarch64::*;

    #[inline]
    unsafe fn hsum_in_order(v: float32x4_t) -> f32 {
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), v);
        ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
    }

    /// `q · x`; bit-identical to
    /// `lane_ordered_fold(n, 4, |acc, i| q[i].mul_add(x[i], acc))`.
    #[target_feature(enable = "neon")]
    pub unsafe fn ip_row(q: &[f32], x: &[f32]) -> f32 {
        let n = q.len();
        let chunks = n / 4;
        let mut acc = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let b = c * 4;
            acc = vfmaq_f32(acc, vld1q_f32(x.as_ptr().add(b)), vld1q_f32(q.as_ptr().add(b)));
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 4..n {
            sum = x[i].mul_add(q[i], sum);
        }
        sum
    }

    /// `||q - x||²`; term `(q[i]-x[i]).mul_add(q[i]-x[i], acc)`.
    #[target_feature(enable = "neon")]
    pub unsafe fn l2_row(q: &[f32], x: &[f32]) -> f32 {
        let n = q.len();
        let chunks = n / 4;
        let mut acc = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let b = c * 4;
            let d = vsubq_f32(vld1q_f32(q.as_ptr().add(b)), vld1q_f32(x.as_ptr().add(b)));
            acc = vfmaq_f32(acc, d, d);
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 4..n {
            let d = q[i] - x[i];
            sum = d.mul_add(d, sum);
        }
        sum
    }

    /// `||x||²`; term `x[i].mul_add(x[i], acc)`.
    #[target_feature(enable = "neon")]
    pub unsafe fn sq_norm_row(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / 4;
        let mut acc = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let xa = vld1q_f32(x.as_ptr().add(c * 4));
            acc = vfmaq_f32(acc, xa, xa);
        }
        let mut sum = hsum_in_order(acc);
        for i in chunks * 4..n {
            sum = x[i].mul_add(x[i], sum);
        }
        sum
    }

    /// Four dot products sharing each loaded query chunk.
    #[target_feature(enable = "neon")]
    pub unsafe fn ip_tile4(q: &[f32], rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = q.len();
        let chunks = n / 4;
        let mut acc = [vdupq_n_f32(0.0); 4];
        for c in 0..chunks {
            let b = c * 4;
            let qa = vld1q_f32(q.as_ptr().add(b));
            for (t, row) in rows.iter().enumerate() {
                acc[t] = vfmaq_f32(acc[t], vld1q_f32(row.as_ptr().add(b)), qa);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 4..n {
                sum = row[i].mul_add(q[i], sum);
            }
            out[t] = sum;
        }
    }

    /// Four squared distances sharing each loaded query chunk.
    #[target_feature(enable = "neon")]
    pub unsafe fn l2_tile4(q: &[f32], rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = q.len();
        let chunks = n / 4;
        let mut acc = [vdupq_n_f32(0.0); 4];
        for c in 0..chunks {
            let b = c * 4;
            let qa = vld1q_f32(q.as_ptr().add(b));
            for (t, row) in rows.iter().enumerate() {
                let d = vsubq_f32(qa, vld1q_f32(row.as_ptr().add(b)));
                acc[t] = vfmaq_f32(acc[t], d, d);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 4..n {
                let d = q[i] - row[i];
                sum = d.mul_add(d, sum);
            }
            out[t] = sum;
        }
    }

    /// Four squared norms.
    #[target_feature(enable = "neon")]
    pub unsafe fn sq_norm_tile4(rows: [&[f32]; 4], out: &mut [f32; 4]) {
        let n = rows[0].len();
        let chunks = n / 4;
        let mut acc = [vdupq_n_f32(0.0); 4];
        for c in 0..chunks {
            let b = c * 4;
            for (t, row) in rows.iter().enumerate() {
                let xa = vld1q_f32(row.as_ptr().add(b));
                acc[t] = vfmaq_f32(acc[t], xa, xa);
            }
        }
        for (t, row) in rows.iter().enumerate() {
            let mut sum = hsum_in_order(acc[t]);
            for i in chunks * 4..n {
                sum = row[i].mul_add(row[i], sum);
            }
            out[t] = sum;
        }
    }

    /// Tier-A SQ8 inner product: 4 codes per tile, one lane per code,
    /// byte loads widened in scalar (exact) then unfused vector
    /// mul/add in the scalar operation order — bit-identical to the
    /// scalar walk. Returns codes scored (a multiple of 4); no slack
    /// needed since there are no gathers.
    #[target_feature(enable = "neon")]
    pub unsafe fn sq8_ip_tiles(
        q: &[f32],
        mins: &[f32],
        scales: &[f32],
        codes: &[u8],
        out: &mut [f32],
    ) -> usize {
        let dim = q.len();
        if dim == 0 {
            return 0;
        }
        let mut r = 0;
        while r + 4 <= out.len() {
            let base = r * dim;
            let mut acc = vdupq_n_f32(0.0);
            for d in 0..dim {
                let lv = [
                    codes[base + d] as f32,
                    codes[base + dim + d] as f32,
                    codes[base + 2 * dim + d] as f32,
                    codes[base + 3 * dim + d] as f32,
                ];
                let val = vaddq_f32(
                    vdupq_n_f32(mins[d]),
                    vmulq_f32(vld1q_f32(lv.as_ptr()), vdupq_n_f32(scales[d])),
                );
                acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(q[d]), val));
            }
            vst1q_f32(out.as_mut_ptr().add(r), acc);
            r += 4;
        }
        r
    }

    /// See [`sq8_ip_tiles`]; writes the negated squared distance
    /// (sign flipped, matching scalar unary negation).
    #[target_feature(enable = "neon")]
    pub unsafe fn sq8_l2_tiles(
        q: &[f32],
        mins: &[f32],
        scales: &[f32],
        codes: &[u8],
        out: &mut [f32],
    ) -> usize {
        let dim = q.len();
        if dim == 0 {
            return 0;
        }
        let mut r = 0;
        while r + 4 <= out.len() {
            let base = r * dim;
            let mut acc = vdupq_n_f32(0.0);
            for d in 0..dim {
                let lv = [
                    codes[base + d] as f32,
                    codes[base + dim + d] as f32,
                    codes[base + 2 * dim + d] as f32,
                    codes[base + 3 * dim + d] as f32,
                ];
                let val = vaddq_f32(
                    vdupq_n_f32(mins[d]),
                    vmulq_f32(vld1q_f32(lv.as_ptr()), vdupq_n_f32(scales[d])),
                );
                let diff = vsubq_f32(vdupq_n_f32(q[d]), val);
                acc = vaddq_f32(acc, vmulq_f32(diff, diff));
            }
            vst1q_f32(out.as_mut_ptr().add(r), vnegq_f32(acc));
            r += 4;
        }
        r
    }

    /// Tier-A PQ/ADC walk: 4 codes per tile, table rows loaded lane by
    /// lane, in-order vector adds — bit-identical to the scalar walk.
    #[target_feature(enable = "neon")]
    pub unsafe fn adc_tiles(tables: &[f32], m: usize, codes: &[u8], out: &mut [f32]) -> usize {
        if m == 0 {
            return 0;
        }
        let mut r = 0;
        while r + 4 <= out.len() {
            let base = r * m;
            let mut acc = vdupq_n_f32(0.0);
            for sub in 0..m {
                let t = sub * 256;
                let vals = [
                    tables[t + codes[base + sub] as usize],
                    tables[t + codes[base + m + sub] as usize],
                    tables[t + codes[base + 2 * m + sub] as usize],
                    tables[t + codes[base + 3 * m + sub] as usize],
                ];
                acc = vaddq_f32(acc, vld1q_f32(vals.as_ptr()));
            }
            vst1q_f32(out.as_mut_ptr().add(r), acc);
            r += 4;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_level_name_case_insensitively() {
        assert_eq!(parse_hermes_simd(Some("scalar")), Ok(Some(SimdLevel::Scalar)));
        assert_eq!(parse_hermes_simd(Some("AVX2")), Ok(Some(SimdLevel::Avx2)));
        assert_eq!(parse_hermes_simd(Some(" Neon ")), Ok(Some(SimdLevel::Neon)));
    }

    #[test]
    fn parse_treats_unset_blank_and_auto_as_auto() {
        assert_eq!(parse_hermes_simd(None), Ok(None));
        assert_eq!(parse_hermes_simd(Some("")), Ok(None));
        assert_eq!(parse_hermes_simd(Some("  ")), Ok(None));
        assert_eq!(parse_hermes_simd(Some("auto")), Ok(None));
        assert_eq!(parse_hermes_simd(Some("AUTO")), Ok(None));
    }

    #[test]
    fn parse_rejects_unknown_values_with_a_warning_message() {
        let err = parse_hermes_simd(Some("avx512")).unwrap_err();
        assert!(err.contains("avx512"), "{err}");
        assert!(err.contains("using auto"), "{err}");
        assert!(parse_hermes_simd(Some("3")).is_err());
    }

    #[test]
    fn unknown_values_resolve_to_auto_with_a_warning() {
        // parse_hermes_threads precedent: a bad env value can never make
        // the process fail or change semantics — it warns and detects.
        let (bad, warn) = resolve_simd_level(Some("turbo"));
        let (auto, none) = resolve_simd_level(None);
        assert_eq!(bad, auto);
        assert!(warn.is_some());
        assert!(none.is_none());
    }

    #[test]
    fn unsupported_forced_level_resolves_to_auto_with_a_warning() {
        // At most one of avx2/neon is supported on any one machine, so
        // the other must warn and fall back.
        let foreign = [SimdLevel::Avx2, SimdLevel::Neon]
            .into_iter()
            .find(|l| !l.is_supported());
        if let Some(level) = foreign {
            let (got, warn) = resolve_simd_level(Some(level.as_str()));
            assert_eq!(got, resolve_simd_level(None).0);
            let warn = warn.expect("forcing an unsupported level must warn");
            assert!(warn.contains(level.as_str()), "{warn}");
        }
    }

    #[test]
    fn forcing_scalar_always_works() {
        let (level, warn) = resolve_simd_level(Some("scalar"));
        assert_eq!(level, SimdLevel::Scalar);
        assert!(warn.is_none());
    }

    #[test]
    fn scalar_is_always_available_and_last() {
        let avail = SimdLevel::available();
        assert_eq!(*avail.last().unwrap(), SimdLevel::Scalar);
        assert!(avail.iter().all(|l| l.is_supported()));
    }

    #[test]
    fn lane_counts_match_the_documented_contract() {
        assert_eq!(SimdLevel::Scalar.lanes(), 4);
        assert!(!SimdLevel::Scalar.fused());
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
        assert!(SimdLevel::Avx2.fused());
        assert_eq!(SimdLevel::Neon.lanes(), 4);
        assert!(SimdLevel::Neon.fused());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for level in SimdLevel::ALL {
            assert_eq!(
                parse_hermes_simd(Some(&level.to_string())),
                Ok(Some(level))
            );
        }
    }

    #[test]
    fn dispatch_is_decided_exactly_once_across_racing_threads() {
        let levels: Vec<SimdLevel> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(simd_level))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(levels.iter().all(|&l| l == levels[0]));
        // However many tests and threads have raced through simd_level()
        // by now, the decision must have run exactly once this process.
        assert_eq!(simd_decision_count(), 1);
        assert!(simd_level().is_supported());
    }
}
