//! Summary statistics shared by the metrics and performance-model crates.


/// Numerically stable single-pass mean/variance/min/max accumulator
/// (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use hermes_math::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch percentile summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Computes `p50`/`p95`/`p99`/`max` using nearest-rank interpolation.
///
/// Returns `None` for an empty sample.
pub fn percentiles(sample: &[f64]) -> Option<Percentiles> {
    if sample.is_empty() {
        return None;
    }
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let at = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some(Percentiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        max: *v.last().expect("non-empty"),
    })
}

/// Ratio of the largest to the smallest value — the paper's proxy for
/// K-means cluster-size imbalance (Section 4.1).
///
/// Returns `None` if `sizes` is empty or contains a zero.
pub fn imbalance_ratio(sizes: &[usize]) -> Option<f64> {
    let min = *sizes.iter().min()?;
    let max = *sizes.iter().max()?;
    if min == 0 {
        None
    } else {
        Some(max as f64 / min as f64)
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept, r_squared)`; `None` for fewer than two
/// points or zero variance in `x`. Used to verify the linear scaling laws
/// (retrieval latency/energy/memory vs datastore size) and to calibrate
/// device models from measurements.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / nf;
    let mean_y: f64 = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some((slope, intercept, r2))
}

/// Index of the log2 bucket holding `v`: `0` for `v <= 1`, otherwise
/// `floor(log2(v))` — so bucket `i` covers `[2^i, 2^(i+1))` and a fixed
/// array of 64 buckets spans every `u64`. This is the bucketing rule of
/// the telemetry layer's latency histograms (`hermes-trace`), kept here
/// so the math crate owns every numeric convention in one place.
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Lower bound of log2 bucket `i` (the inverse of [`log2_bucket`]):
/// `0` for bucket 0, else `2^i`. Histogram percentile readouts report
/// this value, which makes fixtures exactly computable by hand.
#[inline]
pub fn log2_bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Shannon entropy of a size distribution in nats; an alternative imbalance
/// measure the paper mentions (variance/entropy) — exposed for the ablation
/// bench on splitting strategies.
pub fn size_entropy(sizes: &[usize]) -> f64 {
    let total: usize = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / total as f64;
            -p * p.ln()
        })
        .sum()
}

/// Normalized Shannon entropy of a nonnegative weight vector: `0.0` when
/// all mass sits on one weight, `1.0` for a uniform distribution (the raw
/// entropy divided by `ln(len)`). Non-finite or nonpositive weights carry
/// no mass; a vector with no mass at all returns `1.0` — "no information"
/// reads as maximal uncertainty, which is the conservative answer for the
/// routing-confidence estimator built on this ([`size_entropy`]'s f64
/// sibling).
pub fn normalized_entropy(weights: &[f64]) -> f64 {
    if weights.len() < 2 {
        return 0.0;
    }
    let total: f64 = weights
        .iter()
        .filter(|w| w.is_finite() && **w > 0.0)
        .sum();
    if total <= 0.0 {
        return 1.0;
    }
    let h: f64 = weights
        .iter()
        .filter(|w| w.is_finite() && **w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.ln()
        })
        .sum();
    (h / (weights.len() as f64).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_sequential_push() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let p = percentiles(&v).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn percentiles_empty_is_none() {
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn imbalance_ratio_matches_paper_definition() {
        assert_eq!(imbalance_ratio(&[50, 100]), Some(2.0));
        assert_eq!(imbalance_ratio(&[10, 10, 10]), Some(1.0));
        assert_eq!(imbalance_ratio(&[0, 5]), None);
        assert_eq!(imbalance_ratio(&[]), None);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let (slope, intercept, r2) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept + 7.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_reports_poor_r2_for_noise() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..40).map(|i| ((i * 7919) % 13) as f64).collect();
        let (_, _, r2) = linear_fit(&xs, &ys).unwrap();
        assert!(r2 < 0.5, "r2 {r2}");
    }

    #[test]
    fn linear_fit_degenerate_inputs_are_none() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn log2_bucket_covers_powers_and_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(1023), 9);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(u64::MAX), 63);
        for i in 1..64usize {
            assert_eq!(log2_bucket(log2_bucket_floor(i)), i);
            assert_eq!(log2_bucket(log2_bucket_floor(i) - 1), i - 1);
        }
    }

    #[test]
    fn log2_bucket_floor_inverts_bucketing() {
        assert_eq!(log2_bucket_floor(0), 0);
        assert_eq!(log2_bucket_floor(1), 2);
        assert_eq!(log2_bucket_floor(10), 1024);
        assert_eq!(log2_bucket_floor(63), 1u64 << 63);
    }

    #[test]
    fn entropy_is_maximal_for_balanced_sizes() {
        let balanced = size_entropy(&[25, 25, 25, 25]);
        let skewed = size_entropy(&[97, 1, 1, 1]);
        assert!(balanced > skewed);
        assert!((balanced - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn normalized_entropy_spans_unit_interval() {
        assert!((normalized_entropy(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(normalized_entropy(&[5.0, 0.0, 0.0]), 0.0);
        let mid = normalized_entropy(&[8.0, 2.0, 1.0, 1.0]);
        assert!(mid > 0.0 && mid < 1.0, "mid={mid}");
    }

    #[test]
    fn normalized_entropy_degenerate_inputs() {
        // Fewer than two weights carry no ranking uncertainty at all.
        assert_eq!(normalized_entropy(&[]), 0.0);
        assert_eq!(normalized_entropy(&[3.0]), 0.0);
        // No usable mass (all zero / non-finite) reads as maximal
        // uncertainty.
        assert_eq!(normalized_entropy(&[0.0, 0.0]), 1.0);
        assert_eq!(normalized_entropy(&[f64::NAN, f64::NEG_INFINITY]), 1.0);
        // Non-finite entries are skipped, not propagated.
        let h = normalized_entropy(&[1.0, f64::NAN, 1.0]);
        assert!(h.is_finite());
    }
}
