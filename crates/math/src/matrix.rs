//! A minimal row-major matrix used for centroid tables, OPQ rotations and
//! the synthetic-corpus generators.
//!
//! This is intentionally not a linear-algebra library: the workspace only
//! needs dense storage with row views, matrix–vector products and a
//! Gram-Schmidt orthonormalization (to build random rotations for OPQ).


use crate::distance;

/// Dense row-major `rows x cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use hermes_math::Mat;
/// let m = Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// assert_eq!(m.mat_vec(&[3.0, 4.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Appends one row (in-place ingest for mutable indices).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols` on a non-empty matrix. An empty
    /// 0-column matrix adopts the first row's width.
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "ragged rows");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Removes row `i`, shifting later rows up (dense compaction).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn remove_row(&mut self, i: usize) {
        assert!(i < self.rows, "row index out of bounds");
        let start = i * self.cols;
        self.data.drain(start..start + self.cols);
        self.rows -= 1;
    }

    /// `M · v` for a column vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mat_vec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        self.iter_rows()
            .map(|r| distance::inner_product(r, v))
            .collect()
    }

    /// `Mᵀ · v`; with `M` orthonormal this is the inverse rotation.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn transpose_vec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, r) in self.iter_rows().enumerate() {
            let s = v[i];
            for (o, x) in out.iter_mut().zip(r) {
                *o += s * x;
            }
        }
        out
    }

    /// Orthonormalizes the rows in place (modified Gram–Schmidt). Rows that
    /// become numerically zero are re-seeded from the standard basis so the
    /// result is always a full rotation for square matrices.
    pub fn orthonormalize_rows(&mut self) {
        let cols = self.cols;
        for i in 0..self.rows {
            for j in 0..i {
                let proj = {
                    let (head, tail) = self.data.split_at(i * cols);
                    let rj = &head[j * cols..(j + 1) * cols];
                    let ri = &tail[..cols];
                    distance::inner_product(ri, rj)
                };
                let (head, tail) = self.data.split_at_mut(i * cols);
                let rj = &head[j * cols..(j + 1) * cols];
                let ri = &mut tail[..cols];
                for (a, b) in ri.iter_mut().zip(rj) {
                    *a -= proj * b;
                }
            }
            let n = distance::norm(self.row(i));
            if n < 1e-9 {
                // Degenerate row: fall back to a basis vector not yet used.
                let basis = i % cols;
                let row = self.row_mut(i);
                row.fill(0.0);
                row[basis] = 1.0;
            } else {
                distance::scale(self.row_mut(i), 1.0 / n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mat_vec_is_noop() {
        let m = Mat::identity(4);
        let v = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.mat_vec(&v), v);
    }

    #[test]
    fn from_rows_round_trips_row_access() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn transpose_vec_inverts_rotation() {
        // 90-degree rotation in the plane.
        let m = Mat::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
        let v = vec![2.0, 5.0];
        let rotated = m.mat_vec(&v);
        let back = m.transpose_vec(&rotated);
        for (a, b) in back.iter().zip(&v) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn orthonormalize_produces_orthonormal_rows() {
        let mut m = Mat::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ]);
        m.orthonormalize_rows();
        for i in 0..3 {
            assert!((distance::norm(m.row(i)) - 1.0).abs() < 1e-5);
            for j in 0..i {
                assert!(distance::inner_product(m.row(i), m.row(j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn orthonormalize_recovers_from_degenerate_rows() {
        let mut m = Mat::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0]]);
        m.orthonormalize_rows();
        assert!(distance::inner_product(m.row(0), m.row(1)).abs() < 1e-5);
    }

    #[test]
    fn push_and_remove_rows_keep_dense_layout() {
        let mut m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        m.remove_row(1);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[5.0, 6.0]);
        let mut empty = Mat::zeros(0, 0);
        empty.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!((empty.rows(), empty.cols()), (1, 3));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mat_vec_checks_dimension() {
        let m = Mat::identity(3);
        let _ = m.mat_vec(&[1.0, 2.0]);
    }
}
