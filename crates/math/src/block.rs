//! Blocked scoring kernels: one query against a contiguous block of rows.
//!
//! The serial inner loop of every scan path used to be one
//! [`Metric::similarity`](crate::Metric::similarity) call per stored
//! vector. These kernels score a whole row block per call with register
//! tiling ([`TILE`] rows share each loaded query chunk), which is what
//! the flat scan, the IVF inverted-list probe and the HNSW neighbour
//! expansion now consume in chunks of [`BLOCK`].
//!
//! # Determinism contract
//!
//! Every blocked kernel performs, **per row, the exact same sequence of
//! f32 operations as its scalar reference** (`l2_sq`, `inner_product`,
//! `cosine`): four lane accumulators over chunks of 4, lanes summed in
//! order, then a sequential tail. Tiling only interleaves *independent*
//! per-row accumulations, so blocked results are bit-identical to the
//! scalar loop — the engine-equivalence pins and recall goldens hold
//! unchanged. `tests/properties.rs` asserts the bit equality across
//! dims 1..=80 and all metrics.
//!
//! Unlike the scalar kernels (which only `debug_assert!` shapes), the
//! blocked entry points validate dimensions with hard asserts — once
//! per block instead of once per vector, so the checks are off the hot
//! path *and* release builds can no longer silently truncate.

use crate::distance::{cosine, inner_product, l2_sq, norm};
use crate::matrix::Mat;

/// Rows per scan chunk: scan loops score `BLOCK` rows into a stack
/// buffer, then offer the whole buffer to the top-k selector at once.
pub const BLOCK: usize = 16;

/// Rows per register tile inside a kernel: `TILE` independent
/// accumulator sets stay live so one loaded query chunk is reused
/// `TILE` times.
pub const TILE: usize = 4;

#[inline(always)]
fn chunk4(s: &[f32], b: usize) -> &[f32; 4] {
    s[b..b + 4].try_into().expect("4-wide chunk")
}

#[track_caller]
fn validate_block(query: &[f32], rows: &[f32], dim: usize, n: usize) {
    assert_eq!(
        query.len(),
        dim,
        "query dimension mismatch: query has {} dims, rows have {dim}",
        query.len()
    );
    assert_eq!(
        rows.len(),
        n * dim,
        "row block size mismatch: {} floats is not {n} rows x {dim} dims",
        rows.len()
    );
}

/// `a · b` for four rows at once; per row identical to
/// [`inner_product`].
#[inline]
pub fn inner_product_tile4(query: &[f32], rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = query.len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        let q = chunk4(query, b);
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                acc[t][lane] += q[lane] * x[lane];
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            sum += query[i] * row[i];
        }
        out[t] = sum;
    }
}

/// `||a - b||^2` for four rows at once; per row identical to [`l2_sq`].
#[inline]
pub fn l2_sq_tile4(query: &[f32], rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = query.len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        let q = chunk4(query, b);
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                let d = q[lane] - x[lane];
                acc[t][lane] += d * d;
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            let d = query[i] - row[i];
            sum += d * d;
        }
        out[t] = sum;
    }
}

/// `||b||^2` for four rows at once; per row identical to
/// `inner_product(b, b)` (the squared-norm half of [`cosine`]).
#[inline]
pub fn sq_norm_tile4(rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = rows[0].len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                acc[t][lane] += x[lane] * x[lane];
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            sum += row[i] * row[i];
        }
        out[t] = sum;
    }
}

#[inline(always)]
fn tile_rows(rows: &[f32], dim: usize, r: usize) -> [&[f32]; TILE] {
    let b = r * dim;
    [
        &rows[b..b + dim],
        &rows[b + dim..b + 2 * dim],
        &rows[b + 2 * dim..b + 3 * dim],
        &rows[b + 3 * dim..b + 4 * dim],
    ]
}

/// Dot product of `query` against each row of a contiguous row-major
/// block; `out[i]` is bit-identical to `inner_product(query, row_i)`.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn inner_product_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    validate_block(query, rows, dim, out.len());
    let n = out.len();
    let mut t4 = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        inner_product_tile4(query, tile_rows(rows, dim, r), &mut t4);
        out[r..r + TILE].copy_from_slice(&t4);
        r += TILE;
    }
    while r < n {
        out[r] = inner_product(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Squared Euclidean distance of `query` to each row of a contiguous
/// block; `out[i]` is bit-identical to `l2_sq(query, row_i)`.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn l2_sq_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    validate_block(query, rows, dim, out.len());
    let n = out.len();
    let mut t4 = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        l2_sq_tile4(query, tile_rows(rows, dim, r), &mut t4);
        out[r..r + TILE].copy_from_slice(&t4);
        r += TILE;
    }
    while r < n {
        out[r] = l2_sq(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Cosine similarity of `query` to each row of a contiguous block;
/// `out[i]` is bit-identical to `cosine(query, row_i)` (including the
/// zero-vector → `0.0` convention). The query norm is computed once per
/// block instead of once per row.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn cosine_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    validate_block(query, rows, dim, out.len());
    let na = norm(query);
    let n = out.len();
    let mut ips = [0.0f32; TILE];
    let mut sqs = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        let tile = tile_rows(rows, dim, r);
        inner_product_tile4(query, tile, &mut ips);
        sq_norm_tile4(tile, &mut sqs);
        for t in 0..TILE {
            let nb = sqs[t].sqrt();
            out[r + t] = if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                ips[t] / (na * nb)
            };
        }
        r += TILE;
    }
    while r < n {
        out[r] = cosine(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Index and squared distance of the row of `rows` nearest to `query`
/// under L2 — the blocked argmin behind K-means assignment, IVF coarse
/// probing and PQ subspace encoding. First index wins ties, matching
/// the scalar `d < best` loop it replaces. Returns `(0, +inf)` for an
/// empty matrix.
///
/// # Panics
///
/// Panics if `query.len() != rows.cols()`.
pub fn nearest_row_l2(query: &[f32], rows: &Mat) -> (usize, f32) {
    let dim = rows.cols();
    let data = rows.as_slice();
    let n = rows.rows();
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    let mut buf = [0.0f32; BLOCK];
    let mut base = 0;
    while base < n {
        let bn = BLOCK.min(n - base);
        l2_sq_block(query, &data[base * dim..(base + bn) * dim], dim, &mut buf[..bn]);
        for (j, &d) in buf[..bn].iter().enumerate() {
            if d < best_d {
                best_d = d;
                best = base + j;
            }
        }
        base += bn;
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn random_block(n: usize, dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = seeded_rng(seed);
        let query: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        (query, rows)
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_scalar() {
        for dim in [1usize, 3, 4, 7, 8, 17, 33, 64] {
            // 11 rows: two full tiles plus a 3-row remainder.
            let (query, rows) = random_block(11, dim, dim as u64);
            let mut out = vec![0.0f32; 11];
            inner_product_block(&query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = inner_product(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "ip dim {dim} row {i}");
            }
            l2_sq_block(&query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = l2_sq(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "l2 dim {dim} row {i}");
            }
            cosine_block(&query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = cosine(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "cos dim {dim} row {i}");
            }
        }
    }

    #[test]
    fn cosine_block_preserves_zero_vector_convention() {
        let query = vec![0.0f32; 4];
        let rows = vec![1.0f32; 8];
        let mut out = [7.0f32; 2];
        cosine_block(&query, &rows, 4, &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn nearest_row_matches_scalar_argmin() {
        let (query, rows) = random_block(37, 6, 9);
        let mat = Mat::from_flat(37, 6, rows);
        let (best, best_d) = nearest_row_l2(&query, &mat);
        let want = mat
            .iter_rows()
            .enumerate()
            .min_by(|a, b| l2_sq(a.1, &query).partial_cmp(&l2_sq(b.1, &query)).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, want);
        assert_eq!(best_d.to_bits(), l2_sq(&query, mat.row(best)).to_bits());
    }

    #[test]
    fn nearest_row_of_empty_matrix_is_sentinel() {
        let m = Mat::zeros(0, 4);
        assert_eq!(nearest_row_l2(&[0.0; 4], &m), (0, f32::INFINITY));
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn blocked_entry_rejects_bad_query_len_in_release_too() {
        let mut out = [0.0f32; 1];
        inner_product_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 3, &mut out);
    }

    #[test]
    #[should_panic(expected = "row block size mismatch")]
    fn blocked_entry_rejects_ragged_row_block() {
        let mut out = [0.0f32; 2];
        l2_sq_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }
}
