//! Blocked scoring kernels: one query against a contiguous block of rows.
//!
//! The serial inner loop of every scan path used to be one
//! [`Metric::similarity`](crate::Metric::similarity) call per stored
//! vector. These kernels score a whole row block per call with register
//! tiling ([`TILE`] rows share each loaded query chunk), which is what
//! the flat scan, the IVF inverted-list probe and the HNSW neighbour
//! expansion now consume in chunks of [`BLOCK`].
//!
//! Every kernel exists at each runtime dispatch level
//! ([`SimdLevel`](crate::simd::SimdLevel)): the portable scalar
//! reference, AVX2+FMA on x86_64, NEON on aarch64. The plain entry
//! points (`inner_product_block`, …) run at the process-wide
//! [`simd_level`](crate::simd::simd_level); the `*_at` forms take an
//! explicit level so equivalence suites can pin every runnable kernel
//! in one process. An unsupported level scores via the scalar
//! reference.
//!
//! # Determinism contract (two tiers)
//!
//! * **Tier A — bit-identical at every level.** The SQ8
//!   ([`sq8_ip_block_at`], [`sq8_l2_block_at`]) and PQ/ADC
//!   ([`adc_block_at`]) kernels vectorize *across codes* — one SIMD
//!   lane per code, each code's accumulator folded sequentially over
//!   dimensions with mul and add kept separate — so every level
//!   performs, per code, the exact scalar operation sequence and
//!   returns the exact scalar bits.
//! * **Tier B — pinned reduction order per level.** The f32 kernels
//!   vectorize *within a row*, so each level reassociates the
//!   reduction differently. Per row, each level is bit-identical to
//!   the deterministic lane-ordered reference
//!   (`hermes_testkit::lane_ordered_fold`) at that level's lane
//!   count/fusion mode — scalar: 4 unfused lanes; AVX2: 8 fused; NEON:
//!   4 fused — and levels agree with each other within the pinned ULP
//!   bound recorded in EXPERIMENTS.md. Tiling only interleaves
//!   *independent* per-row accumulations, so blocked results at a
//!   level are bit-identical to that level's single-row kernel, and
//!   every within-process equivalence pin (engine vs legacy, blocked
//!   vs fused scans) holds bit-for-bit at whatever level is selected.
//!
//! `tests/properties.rs` asserts both tiers across dims 1..=80, all
//! metrics and every available level; `tests/simd_differential.rs`
//! fuzzes the cross-level ULP bound with adversarial values.
//!
//! Unlike the scalar kernels (which only `debug_assert!` shapes), the
//! blocked entry points validate dimensions with hard asserts — once
//! per block instead of once per vector, so the checks are off the hot
//! path *and* release builds can no longer silently truncate.

use crate::distance::{inner_product, l2_sq, norm};
use crate::matrix::Mat;
use crate::simd::{simd_level, SimdLevel};

/// Rows per scan chunk: scan loops score `BLOCK` rows into a stack
/// buffer, then offer the whole buffer to the top-k selector at once.
/// 64 rows amortize the per-block dispatch and length checks and give
/// the 8-wide AVX2 code-gather tiles long full-speed runs; admission
/// into the top-k heap stays per-element and in row order, so the
/// block size never changes results.
pub const BLOCK: usize = 64;

/// Rows per register tile inside a kernel: `TILE` independent
/// accumulator sets stay live so one loaded query chunk is reused
/// `TILE` times.
pub const TILE: usize = 4;

#[inline(always)]
fn chunk4(s: &[f32], b: usize) -> &[f32; 4] {
    s[b..b + 4].try_into().expect("4-wide chunk")
}

#[track_caller]
fn validate_block(query: &[f32], rows: &[f32], dim: usize, n: usize) {
    assert_eq!(
        query.len(),
        dim,
        "query dimension mismatch: query has {} dims, rows have {dim}",
        query.len()
    );
    assert_eq!(
        rows.len(),
        n * dim,
        "row block size mismatch: {} floats is not {n} rows x {dim} dims",
        rows.len()
    );
}

// ---------------------------------------------------------------------------
// Scalar reference tiles (4 unfused lanes — the portable tier-B semantics).
// ---------------------------------------------------------------------------

/// `a · b` for four rows at once at the scalar level; per row identical
/// to [`inner_product`].
#[inline]
pub fn inner_product_tile4(query: &[f32], rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = query.len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        let q = chunk4(query, b);
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                acc[t][lane] += q[lane] * x[lane];
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            sum += query[i] * row[i];
        }
        out[t] = sum;
    }
}

/// `||a - b||^2` for four rows at once at the scalar level; per row
/// identical to [`l2_sq`].
#[inline]
pub fn l2_sq_tile4(query: &[f32], rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = query.len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        let q = chunk4(query, b);
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                let d = q[lane] - x[lane];
                acc[t][lane] += d * d;
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            let d = query[i] - row[i];
            sum += d * d;
        }
        out[t] = sum;
    }
}

/// `||b||^2` for four rows at once at the scalar level; per row
/// identical to `inner_product(b, b)` (the squared-norm half of
/// [`cosine`](crate::distance::cosine)).
#[inline]
pub fn sq_norm_tile4(rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    let dim = rows[0].len();
    let chunks = dim / 4;
    let mut acc = [[0.0f32; 4]; TILE];
    for c in 0..chunks {
        let b = c * 4;
        for (t, row) in rows.iter().enumerate() {
            let x = chunk4(row, b);
            for lane in 0..4 {
                acc[t][lane] += x[lane] * x[lane];
            }
        }
    }
    for (t, row) in rows.iter().enumerate() {
        let mut sum = acc[t][0] + acc[t][1] + acc[t][2] + acc[t][3];
        for i in chunks * 4..dim {
            sum += row[i] * row[i];
        }
        out[t] = sum;
    }
}

// ---------------------------------------------------------------------------
// Level-dispatched rows and tiles.
// ---------------------------------------------------------------------------

#[inline]
fn ip_row_at(level: SimdLevel, q: &[f32], x: &[f32]) -> f32 {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe { crate::simd::avx2::ip_row(q, x) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::ip_row(q, x) },
        _ => inner_product(q, x),
    }
}

#[inline]
fn l2_row_at(level: SimdLevel, q: &[f32], x: &[f32]) -> f32 {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe { crate::simd::avx2::l2_row(q, x) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::l2_row(q, x) },
        _ => l2_sq(q, x),
    }
}

#[inline]
fn sq_norm_row_at(level: SimdLevel, x: &[f32]) -> f32 {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe { crate::simd::avx2::sq_norm_row(x) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::sq_norm_row(x) },
        _ => inner_product(x, x),
    }
}

/// [`inner_product_tile4`] at an explicit dispatch level — the form the
/// HNSW neighbour expansion feeds with gathered (non-contiguous) rows.
#[inline]
pub fn inner_product_tile4_at(
    level: SimdLevel,
    query: &[f32],
    rows: [&[f32]; TILE],
    out: &mut [f32; TILE],
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe {
            crate::simd::avx2::ip_tile4(query, rows, out)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::ip_tile4(query, rows, out) },
        _ => inner_product_tile4(query, rows, out),
    }
}

/// [`l2_sq_tile4`] at an explicit dispatch level.
#[inline]
pub fn l2_sq_tile4_at(
    level: SimdLevel,
    query: &[f32],
    rows: [&[f32]; TILE],
    out: &mut [f32; TILE],
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe {
            crate::simd::avx2::l2_tile4(query, rows, out)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::l2_tile4(query, rows, out) },
        _ => l2_sq_tile4(query, rows, out),
    }
}

/// [`sq_norm_tile4`] at an explicit dispatch level.
#[inline]
pub fn sq_norm_tile4_at(level: SimdLevel, rows: [&[f32]; TILE], out: &mut [f32; TILE]) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => unsafe {
            crate::simd::avx2::sq_norm_tile4(rows, out)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { crate::simd::neon::sq_norm_tile4(rows, out) },
        _ => sq_norm_tile4(rows, out),
    }
}

#[inline(always)]
fn tile_rows(rows: &[f32], dim: usize, r: usize) -> [&[f32]; TILE] {
    let b = r * dim;
    [
        &rows[b..b + dim],
        &rows[b + dim..b + 2 * dim],
        &rows[b + 2 * dim..b + 3 * dim],
        &rows[b + 3 * dim..b + 4 * dim],
    ]
}

// ---------------------------------------------------------------------------
// Blocked f32 entry points (tier B).
// ---------------------------------------------------------------------------

/// Dot product of `query` against each row of a contiguous row-major
/// block at an explicit dispatch level; `out[i]` is bit-identical to
/// that level's single-row kernel (at [`SimdLevel::Scalar`], to
/// [`inner_product`]).
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn inner_product_block_at(
    level: SimdLevel,
    query: &[f32],
    rows: &[f32],
    dim: usize,
    out: &mut [f32],
) {
    validate_block(query, rows, dim, out.len());
    let n = out.len();
    let mut t4 = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        inner_product_tile4_at(level, query, tile_rows(rows, dim, r), &mut t4);
        out[r..r + TILE].copy_from_slice(&t4);
        r += TILE;
    }
    while r < n {
        out[r] = ip_row_at(level, query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// [`inner_product_block_at`] at the process-wide dispatch level.
pub fn inner_product_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    inner_product_block_at(simd_level(), query, rows, dim, out);
}

/// Squared Euclidean distance of `query` to each row of a contiguous
/// block at an explicit dispatch level; `out[i]` is bit-identical to
/// that level's single-row kernel (at [`SimdLevel::Scalar`], to
/// [`l2_sq`]).
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn l2_sq_block_at(level: SimdLevel, query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    validate_block(query, rows, dim, out.len());
    let n = out.len();
    let mut t4 = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        l2_sq_tile4_at(level, query, tile_rows(rows, dim, r), &mut t4);
        out[r..r + TILE].copy_from_slice(&t4);
        r += TILE;
    }
    while r < n {
        out[r] = l2_row_at(level, query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// [`l2_sq_block_at`] at the process-wide dispatch level.
pub fn l2_sq_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    l2_sq_block_at(simd_level(), query, rows, dim, out);
}

/// Cosine similarity of `query` to each row of a contiguous block at an
/// explicit dispatch level (including the zero-vector → `0.0`
/// convention). The query norm is computed once per block by the
/// *scalar* kernel at every level, so `na` is bit-identical across
/// levels and only the per-row dot product and squared norm carry the
/// level's reduction order.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `rows.len() != out.len() * dim`.
pub fn cosine_block_at(level: SimdLevel, query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    validate_block(query, rows, dim, out.len());
    let na = norm(query);
    let n = out.len();
    let mut ips = [0.0f32; TILE];
    let mut sqs = [0.0f32; TILE];
    let mut r = 0;
    while r + TILE <= n {
        let tile = tile_rows(rows, dim, r);
        inner_product_tile4_at(level, query, tile, &mut ips);
        sq_norm_tile4_at(level, tile, &mut sqs);
        for t in 0..TILE {
            let nb = sqs[t].sqrt();
            out[r + t] = if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                ips[t] / (na * nb)
            };
        }
        r += TILE;
    }
    while r < n {
        let row = &rows[r * dim..(r + 1) * dim];
        let nb = sq_norm_row_at(level, row).sqrt();
        out[r] = if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            ip_row_at(level, query, row) / (na * nb)
        };
        r += 1;
    }
}

/// [`cosine_block_at`] at the process-wide dispatch level.
pub fn cosine_block(query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    cosine_block_at(simd_level(), query, rows, dim, out);
}

/// Index and squared distance of the row of `rows` nearest to `query`
/// under L2 at an explicit dispatch level — the blocked argmin behind
/// K-means assignment, IVF coarse probing and PQ subspace encoding.
/// First index wins ties, matching the scalar `d < best` loop it
/// replaces. Returns `(0, +inf)` for an empty matrix.
///
/// # Panics
///
/// Panics if `query.len() != rows.cols()`.
pub fn nearest_row_l2_at(level: SimdLevel, query: &[f32], rows: &Mat) -> (usize, f32) {
    let dim = rows.cols();
    let data = rows.as_slice();
    let n = rows.rows();
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    let mut buf = [0.0f32; BLOCK];
    let mut base = 0;
    while base < n {
        let bn = BLOCK.min(n - base);
        l2_sq_block_at(
            level,
            query,
            &data[base * dim..(base + bn) * dim],
            dim,
            &mut buf[..bn],
        );
        for (j, &d) in buf[..bn].iter().enumerate() {
            if d < best_d {
                best_d = d;
                best = base + j;
            }
        }
        base += bn;
    }
    (best, best_d)
}

/// [`nearest_row_l2_at`] at the process-wide dispatch level.
pub fn nearest_row_l2(query: &[f32], rows: &Mat) -> (usize, f32) {
    nearest_row_l2_at(simd_level(), query, rows)
}

// ---------------------------------------------------------------------------
// Blocked code-scoring kernels (tier A — bit-identical at every level).
// ---------------------------------------------------------------------------

#[track_caller]
fn validate_codes(dim: usize, codes: &[u8], n: usize, what: &str) {
    assert_eq!(
        codes.len(),
        n * dim,
        "{what} block size mismatch: {} bytes is not {n} codes x {dim} bytes",
        codes.len()
    );
}

/// SQ8 asymmetric inner product of `query` against a contiguous block
/// of one-byte-per-dimension codes: `out[i] = Σ_d q[d] * (mins[d] +
/// code_i[d] as f32 * scales[d])`, accumulated sequentially over `d`
/// per code. **Bit-identical at every dispatch level** (tier A): the
/// SIMD forms vectorize across codes, one lane per code, mul and add
/// kept separate.
///
/// # Panics
///
/// Panics if `mins`/`scales` don't match `query.len()` or
/// `codes.len() != out.len() * query.len()`.
pub fn sq8_ip_block_at(
    level: SimdLevel,
    query: &[f32],
    mins: &[f32],
    scales: &[f32],
    codes: &[u8],
    out: &mut [f32],
) {
    let dim = query.len();
    assert_eq!(mins.len(), dim, "SQ8 mins length mismatch");
    assert_eq!(scales.len(), dim, "SQ8 scales length mismatch");
    validate_codes(dim, codes, out.len(), "SQ8 code");
    let mut r = 0;
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => {
            r = unsafe { crate::simd::avx2::sq8_ip_tiles(query, mins, scales, codes, out) };
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            r = unsafe { crate::simd::neon::sq8_ip_tiles(query, mins, scales, codes, out) };
        }
        _ => {}
    }
    sq8_ip_scalar(query, mins, scales, codes, out, r);
}

/// Scalar tier-A SQ8 inner product from code `start` on: 4-code
/// register tiles sharing each `(q, min, scale)` triple, then single
/// codes — every shape folds dimensions in the same order, so the
/// tiling never changes bits.
fn sq8_ip_scalar(
    query: &[f32],
    mins: &[f32],
    scales: &[f32],
    codes: &[u8],
    out: &mut [f32],
    start: usize,
) {
    let dim = query.len();
    let n = out.len();
    let mut r = start;
    while r + 4 <= n {
        let c0 = &codes[r * dim..(r + 1) * dim];
        let c1 = &codes[(r + 1) * dim..(r + 2) * dim];
        let c2 = &codes[(r + 2) * dim..(r + 3) * dim];
        let c3 = &codes[(r + 3) * dim..(r + 4) * dim];
        let mut acc = [0.0f32; 4];
        for d in 0..dim {
            let q = query[d];
            let min = mins[d];
            let scale = scales[d];
            acc[0] += q * (min + c0[d] as f32 * scale);
            acc[1] += q * (min + c1[d] as f32 * scale);
            acc[2] += q * (min + c2[d] as f32 * scale);
            acc[3] += q * (min + c3[d] as f32 * scale);
        }
        out[r..r + 4].copy_from_slice(&acc);
        r += 4;
    }
    while r < n {
        let code = &codes[r * dim..(r + 1) * dim];
        let mut acc = 0.0f32;
        for d in 0..dim {
            acc += query[d] * (mins[d] + code[d] as f32 * scales[d]);
        }
        out[r] = acc;
        r += 1;
    }
}

/// SQ8 asymmetric **negated** squared L2 distance (similarity
/// orientation): `out[i] = -Σ_d (q[d] - dequant_i[d])²`. Bit-identical
/// at every dispatch level (tier A); the sign flip matches scalar
/// unary negation bit-for-bit, `-0.0` included.
///
/// # Panics
///
/// Same shape panics as [`sq8_ip_block_at`].
pub fn sq8_l2_block_at(
    level: SimdLevel,
    query: &[f32],
    mins: &[f32],
    scales: &[f32],
    codes: &[u8],
    out: &mut [f32],
) {
    let dim = query.len();
    assert_eq!(mins.len(), dim, "SQ8 mins length mismatch");
    assert_eq!(scales.len(), dim, "SQ8 scales length mismatch");
    validate_codes(dim, codes, out.len(), "SQ8 code");
    let mut r = 0;
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => {
            r = unsafe { crate::simd::avx2::sq8_l2_tiles(query, mins, scales, codes, out) };
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            r = unsafe { crate::simd::neon::sq8_l2_tiles(query, mins, scales, codes, out) };
        }
        _ => {}
    }
    sq8_l2_scalar(query, mins, scales, codes, out, r);
}

/// Scalar tier-A SQ8 negated-L2 from code `start` on; see
/// [`sq8_ip_scalar`].
fn sq8_l2_scalar(
    query: &[f32],
    mins: &[f32],
    scales: &[f32],
    codes: &[u8],
    out: &mut [f32],
    start: usize,
) {
    let dim = query.len();
    let n = out.len();
    let mut r = start;
    while r + 4 <= n {
        let c0 = &codes[r * dim..(r + 1) * dim];
        let c1 = &codes[(r + 1) * dim..(r + 2) * dim];
        let c2 = &codes[(r + 2) * dim..(r + 3) * dim];
        let c3 = &codes[(r + 3) * dim..(r + 4) * dim];
        let mut acc = [0.0f32; 4];
        for d in 0..dim {
            let q = query[d];
            let min = mins[d];
            let scale = scales[d];
            let d0 = q - (min + c0[d] as f32 * scale);
            let d1 = q - (min + c1[d] as f32 * scale);
            let d2 = q - (min + c2[d] as f32 * scale);
            let d3 = q - (min + c3[d] as f32 * scale);
            acc[0] += d0 * d0;
            acc[1] += d1 * d1;
            acc[2] += d2 * d2;
            acc[3] += d3 * d3;
        }
        for (o, a) in out[r..r + 4].iter_mut().zip(&acc) {
            *o = -a;
        }
        r += 4;
    }
    while r < n {
        let code = &codes[r * dim..(r + 1) * dim];
        let mut acc = 0.0f32;
        for d in 0..dim {
            let diff = query[d] - (mins[d] + code[d] as f32 * scales[d]);
            acc += diff * diff;
        }
        out[r] = -acc;
        r += 1;
    }
}

/// PQ/ADC table walk over a contiguous block of `m`-byte codes:
/// `out[i] = Σ_sub tables[sub * 256 + code_i[sub]]`, added in subspace
/// order per code. **Bit-identical at every dispatch level** (tier A):
/// pure table loads and in-order adds at any width.
///
/// # Panics
///
/// Panics if `tables.len() != m * 256` or
/// `codes.len() != out.len() * m`.
pub fn adc_block_at(level: SimdLevel, tables: &[f32], m: usize, codes: &[u8], out: &mut [f32]) {
    assert_eq!(tables.len(), m * 256, "ADC table size mismatch");
    validate_codes(m, codes, out.len(), "ADC code");
    let mut r = 0;
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if level.is_supported() => {
            r = unsafe { crate::simd::avx2::adc_tiles(tables, m, codes, out) };
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            r = unsafe { crate::simd::neon::adc_tiles(tables, m, codes, out) };
        }
        _ => {}
    }
    adc_scalar(tables, m, codes, out, r);
}

/// Scalar tier-A ADC walk from code `start` on: four walks share each
/// hot `tables` row, then single codes.
fn adc_scalar(tables: &[f32], m: usize, codes: &[u8], out: &mut [f32], start: usize) {
    let n = out.len();
    let mut r = start;
    while r + 4 <= n {
        let c0 = &codes[r * m..(r + 1) * m];
        let c1 = &codes[(r + 1) * m..(r + 2) * m];
        let c2 = &codes[(r + 2) * m..(r + 3) * m];
        let c3 = &codes[(r + 3) * m..(r + 4) * m];
        let mut acc = [0.0f32; 4];
        for sub in 0..m {
            let base = sub * 256;
            acc[0] += tables[base + c0[sub] as usize];
            acc[1] += tables[base + c1[sub] as usize];
            acc[2] += tables[base + c2[sub] as usize];
            acc[3] += tables[base + c3[sub] as usize];
        }
        out[r..r + 4].copy_from_slice(&acc);
        r += 4;
    }
    while r < n {
        let code = &codes[r * m..(r + 1) * m];
        let mut acc = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            acc += tables[sub * 256 + c as usize];
        }
        out[r] = acc;
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use hermes_testkit::lane_ordered_fold;

    fn random_block(n: usize, dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = seeded_rng(seed);
        let query: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        let rows: Vec<f32> = (0..n * dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        (query, rows)
    }

    #[test]
    fn scalar_level_blocked_kernels_are_bit_identical_to_scalar() {
        for dim in [1usize, 3, 4, 7, 8, 17, 33, 64] {
            // 11 rows: two full tiles plus a 3-row remainder.
            let (query, rows) = random_block(11, dim, dim as u64);
            let mut out = vec![0.0f32; 11];
            inner_product_block_at(SimdLevel::Scalar, &query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = inner_product(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "ip dim {dim} row {i}");
            }
            l2_sq_block_at(SimdLevel::Scalar, &query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = l2_sq(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "l2 dim {dim} row {i}");
            }
            cosine_block_at(SimdLevel::Scalar, &query, &rows, dim, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = crate::distance::cosine(&query, &rows[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "cos dim {dim} row {i}");
            }
        }
    }

    /// The tier-B reference: what each level must return per row, bit
    /// for bit, as a lane-ordered fold at the level's lane count and
    /// fusion mode.
    fn reference_ip(level: SimdLevel, q: &[f32], x: &[f32]) -> f32 {
        let lanes = level.lanes();
        if level.fused() {
            lane_ordered_fold(q.len(), lanes, |acc, i| x[i].mul_add(q[i], acc))
        } else {
            lane_ordered_fold(q.len(), lanes, |acc, i| acc + q[i] * x[i])
        }
    }

    fn reference_l2(level: SimdLevel, q: &[f32], x: &[f32]) -> f32 {
        let lanes = level.lanes();
        if level.fused() {
            lane_ordered_fold(q.len(), lanes, |acc, i| {
                let d = q[i] - x[i];
                d.mul_add(d, acc)
            })
        } else {
            lane_ordered_fold(q.len(), lanes, |acc, i| {
                let d = q[i] - x[i];
                acc + d * d
            })
        }
    }

    fn reference_cosine(level: SimdLevel, q: &[f32], x: &[f32]) -> f32 {
        let na = norm(q);
        let nb = reference_ip(level, x, x).sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            reference_ip(level, q, x) / (na * nb)
        }
    }

    #[test]
    fn every_available_level_is_bit_identical_to_its_lane_ordered_reference() {
        for level in SimdLevel::available() {
            for dim in [1usize, 3, 7, 8, 9, 16, 17, 31, 64, 80] {
                let (query, rows) = random_block(11, dim, 0x51AD + dim as u64);
                let mut out = vec![0.0f32; 11];
                inner_product_block_at(level, &query, &rows, dim, &mut out);
                for (i, o) in out.iter().enumerate() {
                    let want = reference_ip(level, &query, &rows[i * dim..(i + 1) * dim]);
                    assert_eq!(o.to_bits(), want.to_bits(), "{level} ip dim {dim} row {i}");
                }
                l2_sq_block_at(level, &query, &rows, dim, &mut out);
                for (i, o) in out.iter().enumerate() {
                    let want = reference_l2(level, &query, &rows[i * dim..(i + 1) * dim]);
                    assert_eq!(o.to_bits(), want.to_bits(), "{level} l2 dim {dim} row {i}");
                }
                cosine_block_at(level, &query, &rows, dim, &mut out);
                for (i, o) in out.iter().enumerate() {
                    let want = reference_cosine(level, &query, &rows[i * dim..(i + 1) * dim]);
                    assert_eq!(o.to_bits(), want.to_bits(), "{level} cos dim {dim} row {i}");
                }
            }
        }
    }

    #[test]
    fn levels_agree_within_the_pinned_ulp_bound() {
        use hermes_testkit::ulp_within_scaled;
        for level in SimdLevel::available() {
            for dim in [1usize, 8, 33, 80, 768] {
                let (query, rows) = random_block(9, dim, 0xB0DE + dim as u64);
                let mut got = vec![0.0f32; 9];
                let mut want = vec![0.0f32; 9];
                inner_product_block_at(level, &query, &rows, dim, &mut got);
                inner_product_block_at(SimdLevel::Scalar, &query, &rows, dim, &mut want);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    let row = &rows[i * dim..(i + 1) * dim];
                    let scale: f64 = query
                        .iter()
                        .zip(row)
                        .map(|(a, b)| (a * b).abs() as f64)
                        .sum();
                    assert!(
                        ulp_within_scaled(*g, *w, 256, scale as f32),
                        "{level} ip dim {dim} row {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_block_preserves_zero_vector_convention_at_every_level() {
        for level in SimdLevel::available() {
            let query = vec![0.0f32; 4];
            let rows = vec![1.0f32; 8];
            let mut out = [7.0f32; 2];
            cosine_block_at(level, &query, &rows, 4, &mut out);
            assert_eq!(out, [0.0, 0.0], "{level}");
            // Zero rows against a non-zero query, crossing the tile
            // remainder (5 rows).
            let query = vec![1.0f32; 4];
            let rows = vec![0.0f32; 20];
            let mut out = [7.0f32; 5];
            cosine_block_at(level, &query, &rows, 4, &mut out);
            assert_eq!(out, [0.0; 5], "{level}");
        }
    }

    #[test]
    fn nearest_row_matches_scalar_argmin() {
        let (query, rows) = random_block(37, 6, 9);
        let mat = Mat::from_flat(37, 6, rows);
        let (best, best_d) = nearest_row_l2_at(SimdLevel::Scalar, &query, &mat);
        let want = mat
            .iter_rows()
            .enumerate()
            .min_by(|a, b| l2_sq(a.1, &query).partial_cmp(&l2_sq(b.1, &query)).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, want);
        assert_eq!(best_d.to_bits(), l2_sq(&query, mat.row(best)).to_bits());
        // On non-degenerate random data every level agrees on the argmin
        // (distances differ only in the last ULPs); this is deterministic
        // per seed, so it can never flake.
        for level in SimdLevel::available() {
            assert_eq!(nearest_row_l2_at(level, &query, &mat).0, want, "{level}");
        }
    }

    #[test]
    fn nearest_row_of_empty_matrix_is_sentinel() {
        let m = Mat::zeros(0, 4);
        assert_eq!(nearest_row_l2(&[0.0; 4], &m), (0, f32::INFINITY));
    }

    #[test]
    fn sq8_and_adc_blocks_are_bit_identical_across_levels() {
        let mut rng = seeded_rng(0xADC);
        // Dims crossing the 8-wide gather width and its remainders; code
        // counts crossing the 8-tile, its slack guard and the 4-tile.
        for dim in [1usize, 3, 8, 11, 16, 29] {
            for n in [1usize, 4, 7, 8, 9, 16, 17, 31] {
                let query: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
                let mins: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 1.0).collect();
                let scales: Vec<f32> = (0..dim).map(|_| rng.next_f32() / 127.0).collect();
                let codes: Vec<u8> = (0..n * dim).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
                let mut want = vec![0.0f32; n];
                sq8_ip_block_at(SimdLevel::Scalar, &query, &mins, &scales, &codes, &mut want);
                let mut want_l2 = vec![0.0f32; n];
                sq8_l2_block_at(SimdLevel::Scalar, &query, &mins, &scales, &codes, &mut want_l2);
                let m = dim;
                let tables: Vec<f32> = (0..m * 256).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
                let mut want_adc = vec![0.0f32; n];
                adc_block_at(SimdLevel::Scalar, &tables, m, &codes, &mut want_adc);
                for level in SimdLevel::available() {
                    let mut got = vec![0.0f32; n];
                    sq8_ip_block_at(level, &query, &mins, &scales, &codes, &mut got);
                    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(g.to_bits(), w.to_bits(), "{level} sq8-ip d{dim} n{n} #{i}");
                    }
                    sq8_l2_block_at(level, &query, &mins, &scales, &codes, &mut got);
                    for (i, (g, w)) in got.iter().zip(&want_l2).enumerate() {
                        assert_eq!(g.to_bits(), w.to_bits(), "{level} sq8-l2 d{dim} n{n} #{i}");
                    }
                    adc_block_at(level, &tables, m, &codes, &mut got);
                    for (i, (g, w)) in got.iter().zip(&want_adc).enumerate() {
                        assert_eq!(g.to_bits(), w.to_bits(), "{level} adc d{dim} n{n} #{i}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn blocked_entry_rejects_bad_query_len_in_release_too() {
        let mut out = [0.0f32; 1];
        inner_product_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 3, &mut out);
    }

    #[test]
    #[should_panic(expected = "row block size mismatch")]
    fn blocked_entry_rejects_ragged_row_block() {
        let mut out = [0.0f32; 2];
        l2_sq_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "code block size mismatch")]
    fn sq8_block_rejects_ragged_code_block() {
        let mut out = [0.0f32; 2];
        sq8_ip_block_at(
            SimdLevel::Scalar,
            &[1.0, 2.0],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0u8; 3],
            &mut out,
        );
    }

    #[test]
    #[should_panic(expected = "ADC table size mismatch")]
    fn adc_block_rejects_short_tables() {
        let mut out = [0.0f32; 1];
        adc_block_at(SimdLevel::Scalar, &[0.0f32; 16], 2, &[0u8; 2], &mut out);
    }
}
