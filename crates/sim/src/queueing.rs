//! Open-loop load simulation: Poisson batch arrivals against the
//! retrieval service time, yielding tail latencies.
//!
//! The paper's Takeaway 2 motivates Hermes with TTFT *quality of
//! service*: "variations and imbalances in the TTFT can adversely affect
//! the quality of service". A fixed service time only shows the mean;
//! under load, queueing inflates the tail. This module runs a
//! deterministic single-server queue (arrivals seeded, service time from
//! the retrieval cost model) and reports waiting + service percentiles.

use hermes_math::rng::seeded_rng;
use hermes_math::stats::{percentiles, Percentiles};

/// Result of a queueing run.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Offered load: arrival rate × service time (ρ). Stable only < 1.
    pub utilization: f64,
    /// Sojourn-time percentiles (wait + service), seconds.
    pub sojourn: Percentiles,
    /// Fraction of batches that waited at all.
    pub delayed_fraction: f64,
}

/// Simulates `num_batches` Poisson batch arrivals at `rate_per_s` against
/// a deterministic `service_s` per batch (M/D/1), seeded for
/// reproducibility.
///
/// # Panics
///
/// Panics if `service_s` or `rate_per_s` is not positive or
/// `num_batches` is zero.
///
/// # Examples
///
/// ```
/// use hermes_sim::queueing::simulate_md1;
/// // Light load: hardly any queueing above the service time.
/// let light = simulate_md1(0.1, 1.0, 2_000, 7);
/// assert!(light.sojourn.p50 < 1.5);
/// // Heavy load: the tail inflates.
/// let heavy = simulate_md1(0.9, 1.0, 2_000, 7);
/// assert!(heavy.sojourn.p99 > light.sojourn.p99);
/// ```
pub fn simulate_md1(
    rate_per_s: f64,
    service_s: f64,
    num_batches: usize,
    seed: u64,
) -> QueueReport {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    assert!(service_s > 0.0, "service time must be positive");
    assert!(num_batches > 0, "need at least one batch");

    let mut rng = seeded_rng(seed);
    let mut clock = 0.0f64;
    let mut server_free_at = 0.0f64;
    let mut sojourns = Vec::with_capacity(num_batches);
    let mut delayed = 0usize;
    for _ in 0..num_batches {
        // Exponential inter-arrival times.
        let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        clock += -u.ln() / rate_per_s;
        let start = clock.max(server_free_at);
        if start > clock {
            delayed += 1;
        }
        let done = start + service_s;
        server_free_at = done;
        sojourns.push(done - clock);
    }
    QueueReport {
        utilization: rate_per_s * service_s,
        sojourn: percentiles(&sojourns).expect("non-empty"),
        delayed_fraction: delayed as f64 / num_batches as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sojourn_never_below_service_time() {
        let r = simulate_md1(0.5, 2.0, 1_000, 1);
        assert!(r.sojourn.p50 >= 2.0 - 1e-9);
    }

    #[test]
    fn tail_grows_with_utilization() {
        let lo = simulate_md1(0.2, 1.0, 5_000, 2);
        let mid = simulate_md1(0.6, 1.0, 5_000, 2);
        let hi = simulate_md1(0.9, 1.0, 5_000, 2);
        assert!(lo.sojourn.p99 <= mid.sojourn.p99);
        assert!(mid.sojourn.p99 < hi.sojourn.p99);
        assert!(lo.delayed_fraction < hi.delayed_fraction);
    }

    #[test]
    fn md1_mean_wait_tracks_pollaczek_khinchine() {
        // M/D/1 mean wait = ρ·s / (2(1-ρ)); check within sampling noise.
        let rho = 0.7;
        let s = 1.0;
        let r = simulate_md1(rho / s, s, 200_000, 3);
        let expected_sojourn = s + rho * s / (2.0 * (1.0 - rho));
        // Percentiles give p50; compare p50 of an M/D/1 loosely via the
        // mean bound: p50 <= mean*2 and >= service.
        assert!(r.sojourn.p50 >= s);
        assert!(
            r.sojourn.p50 < expected_sojourn * 2.0,
            "p50 {} vs bound {}",
            r.sojourn.p50,
            expected_sojourn * 2.0
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate_md1(0.5, 1.0, 100, 9);
        let b = simulate_md1(0.5, 1.0, 100, 9);
        assert_eq!(a.sojourn, b.sojourn);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = simulate_md1(0.0, 1.0, 10, 1);
    }
}
