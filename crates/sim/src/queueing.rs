//! Open-loop load simulation: Poisson batch arrivals against the
//! retrieval service time, yielding tail latencies.
//!
//! The paper's Takeaway 2 motivates Hermes with TTFT *quality of
//! service*: "variations and imbalances in the TTFT can adversely affect
//! the quality of service". A fixed service time only shows the mean;
//! under load, queueing inflates the tail. This module runs a
//! deterministic single-server queue (arrivals seeded, service time from
//! the retrieval cost model) and reports waiting + service percentiles.
//!
//! Arrival streams come from [`hermes_datagen::arrivals`], the same
//! generator the serving layer's load generator uses — so
//! `tests/serving_oracle.rs` can drive `hermes-serve` and this model
//! with bit-identical traces and compare the results directly. The
//! trace-level entry point is [`simulate_queue_on_arrivals`]; the
//! seeded Poisson wrappers [`simulate_md1`] / [`simulate_md1_trace`]
//! build on it.

use hermes_datagen::arrivals::poisson_arrival_times_s;
use hermes_math::stats::{percentiles, Percentiles};

/// Result of a queueing run.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Offered load: arrival rate × service time (ρ). Stable only < 1.
    pub utilization: f64,
    /// Sojourn-time percentiles (wait + service), seconds.
    pub sojourn: Percentiles,
    /// Fraction of batches that waited at all.
    pub delayed_fraction: f64,
}

/// Per-request output of a queueing run — everything [`QueueReport`]
/// aggregates, before aggregation. The serving-oracle test compares the
/// server's measured behaviour against these exact values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueTrace {
    /// Sojourn time (wait + service) of each request, in arrival order,
    /// seconds.
    pub sojourns: Vec<f64>,
    /// Measured busy fraction: total service time over the span from
    /// time 0 to the last departure. Approaches offered ρ as the run
    /// lengthens (when ρ < 1).
    pub busy_fraction: f64,
    /// Fraction of requests that waited at all.
    pub delayed_fraction: f64,
    /// Departure time of the last request, seconds.
    pub makespan_s: f64,
}

impl QueueTrace {
    /// Sojourn percentiles over the whole trace.
    pub fn sojourn_percentiles(&self) -> Percentiles {
        percentiles(&self.sojourns).expect("trace is non-empty")
    }
}

/// Runs a single FIFO server with deterministic `service_s` per request
/// over an explicit, non-decreasing arrival-time trace (seconds).
///
/// This is the D/1 half of M/D/1 with the arrival process factored out:
/// feed it [`poisson_arrival_times_s`] and it *is* `simulate_md1`; feed
/// it the trace a server was driven with and it predicts what that
/// server should have measured.
///
/// # Panics
///
/// Panics if `service_s` is not positive or `arrivals_s` is empty.
pub fn simulate_queue_on_arrivals(arrivals_s: &[f64], service_s: f64) -> QueueTrace {
    assert!(service_s > 0.0, "service time must be positive");
    assert!(!arrivals_s.is_empty(), "need at least one arrival");

    let mut server_free_at = 0.0f64;
    let mut sojourns = Vec::with_capacity(arrivals_s.len());
    let mut delayed = 0usize;
    for &arrival in arrivals_s {
        let start = arrival.max(server_free_at);
        if start > arrival {
            delayed += 1;
        }
        let done = start + service_s;
        server_free_at = done;
        sojourns.push(done - arrival);
    }
    let busy = arrivals_s.len() as f64 * service_s;
    QueueTrace {
        sojourns,
        busy_fraction: busy / server_free_at,
        delayed_fraction: delayed as f64 / arrivals_s.len() as f64,
        makespan_s: server_free_at,
    }
}

/// [`simulate_md1`] with per-request resolution: seeded Poisson arrivals
/// at `rate_per_s` through [`simulate_queue_on_arrivals`].
///
/// # Panics
///
/// Panics if `service_s` or `rate_per_s` is not positive or
/// `num_batches` is zero.
pub fn simulate_md1_trace(
    rate_per_s: f64,
    service_s: f64,
    num_batches: usize,
    seed: u64,
) -> QueueTrace {
    let arrivals = poisson_arrival_times_s(rate_per_s, num_batches, seed);
    simulate_queue_on_arrivals(&arrivals, service_s)
}

/// Simulates `num_batches` Poisson batch arrivals at `rate_per_s` against
/// a deterministic `service_s` per batch (M/D/1), seeded for
/// reproducibility.
///
/// # Panics
///
/// Panics if `service_s` or `rate_per_s` is not positive or
/// `num_batches` is zero.
///
/// # Examples
///
/// ```
/// use hermes_sim::queueing::simulate_md1;
/// // Light load: hardly any queueing above the service time.
/// let light = simulate_md1(0.1, 1.0, 2_000, 7);
/// assert!(light.sojourn.p50 < 1.5);
/// // Heavy load: the tail inflates.
/// let heavy = simulate_md1(0.9, 1.0, 2_000, 7);
/// assert!(heavy.sojourn.p99 > light.sojourn.p99);
/// ```
pub fn simulate_md1(
    rate_per_s: f64,
    service_s: f64,
    num_batches: usize,
    seed: u64,
) -> QueueReport {
    let trace = simulate_md1_trace(rate_per_s, service_s, num_batches, seed);
    QueueReport {
        utilization: rate_per_s * service_s,
        sojourn: trace.sojourn_percentiles(),
        delayed_fraction: trace.delayed_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sojourn_never_below_service_time() {
        let r = simulate_md1(0.5, 2.0, 1_000, 1);
        assert!(r.sojourn.p50 >= 2.0 - 1e-9);
    }

    #[test]
    fn tail_grows_with_utilization() {
        let lo = simulate_md1(0.2, 1.0, 5_000, 2);
        let mid = simulate_md1(0.6, 1.0, 5_000, 2);
        let hi = simulate_md1(0.9, 1.0, 5_000, 2);
        assert!(lo.sojourn.p99 <= mid.sojourn.p99);
        assert!(mid.sojourn.p99 < hi.sojourn.p99);
        assert!(lo.delayed_fraction < hi.delayed_fraction);
    }

    #[test]
    fn md1_mean_wait_tracks_pollaczek_khinchine() {
        // M/D/1 mean wait = ρ·s / (2(1-ρ)); check within sampling noise.
        let rho = 0.7;
        let s = 1.0;
        let r = simulate_md1(rho / s, s, 200_000, 3);
        let expected_sojourn = s + rho * s / (2.0 * (1.0 - rho));
        // Percentiles give p50; compare p50 of an M/D/1 loosely via the
        // mean bound: p50 <= mean*2 and >= service.
        assert!(r.sojourn.p50 >= s);
        assert!(
            r.sojourn.p50 < expected_sojourn * 2.0,
            "p50 {} vs bound {}",
            r.sojourn.p50,
            expected_sojourn * 2.0
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate_md1(0.5, 1.0, 100, 9);
        let b = simulate_md1(0.5, 1.0, 100, 9);
        assert_eq!(a.sojourn, b.sojourn);
    }

    #[test]
    fn trace_aggregates_match_report() {
        let trace = simulate_md1_trace(0.6, 1.0, 2_000, 5);
        let report = simulate_md1(0.6, 1.0, 2_000, 5);
        assert_eq!(trace.sojourn_percentiles(), report.sojourn);
        assert_eq!(trace.delayed_fraction, report.delayed_fraction);
        assert_eq!(trace.sojourns.len(), 2_000);
    }

    #[test]
    fn busy_fraction_approaches_offered_load() {
        let trace = simulate_md1_trace(0.5, 1.0, 50_000, 8);
        assert!(
            (trace.busy_fraction - 0.5).abs() < 0.02,
            "busy fraction {} vs offered 0.5",
            trace.busy_fraction
        );
    }

    #[test]
    fn explicit_arrivals_idle_server_has_pure_service_sojourns() {
        // Arrivals spaced wider than the service time never queue.
        let arrivals = [1.0, 3.0, 5.0, 7.0];
        let trace = simulate_queue_on_arrivals(&arrivals, 1.5);
        assert!(trace.sojourns.iter().all(|&s| (s - 1.5).abs() < 1e-12));
        assert_eq!(trace.delayed_fraction, 0.0);
        assert!((trace.makespan_s - 8.5).abs() < 1e-12);
    }

    #[test]
    fn explicit_arrivals_back_to_back_queueing_is_exact() {
        // All arrive at t=0.1: sojourns are 0.9, 1.9, 2.9 (service 1.0).
        let arrivals = [0.1, 0.1, 0.1];
        let trace = simulate_queue_on_arrivals(&arrivals, 1.0);
        let expect = [1.0, 2.0, 3.0];
        for (s, e) in trace.sojourns.iter().zip(&expect) {
            assert!((s - e).abs() < 1e-12, "{s} vs {e}");
        }
        assert!((trace.delayed_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = simulate_md1(0.0, 1.0, 10, 1);
    }
}
