//! Multi-node RAG serving simulator — the reproduction of the paper's
//! multi-node analysis tool (Figure 15).
//!
//! The tool aggregates per-node device-model latencies and powers
//! ([`hermes_perfmodel`]) into end-to-end serving metrics for a chosen
//! deployment, retrieval scheme and pipeline policy. It regenerates the
//! paper's Figures 8, 14, 16, 17, 18, 20 and 21.
//!
//! * [`deployment`] — node topology: which clusters live on which CPU
//!   platform, their token counts and deep-search access frequencies.
//! * [`engine`] — the aggregation itself: per-stride stage latencies,
//!   pipeline overlap (PipeRAG), prefix-cache reuse (RAGCache), DVFS
//!   energy policies, and steady-state throughput.
//! * [`report`] — the structured result (TTFT, E2E, stage breakdown,
//!   energy meter, timeline spans).

pub mod deployment;
pub mod engine;
pub mod queueing;
pub mod report;

pub use deployment::{ClusterNode, Deployment};
pub use engine::{DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig};
pub use queueing::{
    simulate_md1, simulate_md1_trace, simulate_queue_on_arrivals, QueueReport, QueueTrace,
};
pub use report::{SimReport, StageSpan};
