//! Node topology for a simulated deployment.

use hermes_datagen::ZipfSampler;
use hermes_perfmodel::{CpuPlatform, EncoderModel, InferenceModel, RetrievalModel};

/// One retrieval node hosting one cluster shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterNode {
    /// Tokens stored in this node's index.
    pub tokens: u64,
    /// Probability that a deep search lands on this cluster (Figure 13's
    /// access frequencies). Must sum to ~1 across nodes.
    pub access_freq: f64,
    /// Platform override for heterogeneous fleets; `None` uses the
    /// deployment-wide platform.
    pub platform: Option<CpuPlatform>,
}

/// A full serving deployment: retrieval nodes plus the GPU inference and
/// encoder models.
///
/// # Examples
///
/// ```
/// use hermes_sim::Deployment;
/// let d = Deployment::uniform(100_000_000_000, 10);
/// assert_eq!(d.nodes.len(), 10);
/// assert_eq!(d.total_tokens(), 100_000_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Retrieval nodes, one cluster each.
    pub nodes: Vec<ClusterNode>,
    /// Latency/power model of the CPU platform every node runs.
    pub retrieval: RetrievalModel,
    /// LLM inference model (GPU side).
    pub inference: InferenceModel,
    /// Query encoder model.
    pub encoder: EncoderModel,
}

impl Deployment {
    /// `num_nodes` equal clusters with uniform access frequencies on the
    /// default platform/models.
    pub fn uniform(total_tokens: u64, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "deployment needs nodes");
        let base = total_tokens / num_nodes as u64;
        let nodes = (0..num_nodes)
            .map(|i| ClusterNode {
                tokens: if i == num_nodes - 1 {
                    base + total_tokens % num_nodes as u64
                } else {
                    base
                },
                access_freq: 1.0 / num_nodes as f64,
                platform: None,
            })
            .collect();
        Deployment {
            nodes,
            retrieval: RetrievalModel::default(),
            inference: InferenceModel::default(),
            encoder: EncoderModel::default(),
        }
    }

    /// A skewed deployment reproducing Figure 13: cluster sizes vary up to
    /// `size_imbalance` (max/min ratio) and access frequencies follow a
    /// Zipf law with exponent `access_skew`, permuted so size and
    /// popularity are not aligned.
    pub fn skewed(
        total_tokens: u64,
        num_nodes: usize,
        size_imbalance: f64,
        access_skew: f64,
        seed: u64,
    ) -> Self {
        assert!(num_nodes > 0, "deployment needs nodes");
        assert!(size_imbalance >= 1.0, "imbalance ratio below 1");
        // Sizes interpolate linearly between min and max, then normalize.
        let min_w = 1.0;
        let max_w = size_imbalance;
        let weights: Vec<f64> = (0..num_nodes)
            .map(|i| {
                if num_nodes == 1 {
                    1.0
                } else {
                    min_w + (max_w - min_w) * i as f64 / (num_nodes - 1) as f64
                }
            })
            .collect();
        let wsum: f64 = weights.iter().sum();

        let zipf = ZipfSampler::new(num_nodes, access_skew);
        let mut freq: Vec<f64> = (0..num_nodes).map(|r| zipf.mass(r)).collect();
        // Permute popularity ranks deterministically so the largest
        // cluster is not automatically the hottest.
        {
            let mut rng = hermes_math::rng::seeded_rng(seed);
            rng.shuffle(&mut freq);
        }

        let nodes = (0..num_nodes)
            .map(|i| ClusterNode {
                tokens: (total_tokens as f64 * weights[i] / wsum) as u64,
                access_freq: freq[i],
                platform: None,
            })
            .collect();
        Deployment {
            nodes,
            retrieval: RetrievalModel::default(),
            inference: InferenceModel::default(),
            encoder: EncoderModel::default(),
        }
    }

    /// Replaces the retrieval platform on every node.
    pub fn with_platform(mut self, platform: CpuPlatform) -> Self {
        self.retrieval = RetrievalModel::new(platform);
        self
    }

    /// Replaces the inference model.
    pub fn with_inference(mut self, inference: InferenceModel) -> Self {
        self.inference = inference;
        self
    }

    /// Sets per-node access frequencies from measured deep-search traces
    /// (values are normalized to sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != nodes.len()` or the frequencies sum to 0.
    pub fn with_access_freqs(mut self, freqs: &[f64]) -> Self {
        assert_eq!(freqs.len(), self.nodes.len(), "one frequency per node");
        let sum: f64 = freqs.iter().sum();
        assert!(sum > 0.0, "frequencies sum to zero");
        for (node, &f) in self.nodes.iter_mut().zip(freqs) {
            node.access_freq = f / sum;
        }
        self
    }

    /// Sets per-node access frequencies from a raw deep-search access
    /// histogram, e.g. the output of
    /// `ClusteredStore::access_histogram(queries, threads)` — the counts
    /// are normalized to frequencies summing to 1.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != nodes.len()` or the counts sum to 0.
    pub fn with_access_counts(self, counts: &[usize]) -> Self {
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        self.with_access_freqs(&freqs)
    }

    /// Builds a heterogeneous fleet: each cluster gets its own platform.
    /// Clusters are matched to platforms largest-to-fastest (greedy
    /// longest-processing-time placement), so the biggest shard lands on
    /// the quickest CPU and the deep-phase straggler is minimized.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_tokens` and `platforms` differ in length or are
    /// empty.
    pub fn heterogeneous(cluster_tokens: &[u64], platforms: &[CpuPlatform]) -> Self {
        assert!(!cluster_tokens.is_empty(), "deployment needs nodes");
        assert_eq!(
            cluster_tokens.len(),
            platforms.len(),
            "one platform per cluster"
        );
        let n = cluster_tokens.len();
        // Order clusters by size (desc) and platforms by speed (asc
        // latency factor = fastest first), then zip.
        let mut cluster_order: Vec<usize> = (0..n).collect();
        cluster_order.sort_by_key(|&i| std::cmp::Reverse(cluster_tokens[i]));
        let mut platform_order: Vec<usize> = (0..n).collect();
        platform_order.sort_by(|&a, &b| {
            platforms[a]
                .latency_factor
                .partial_cmp(&platforms[b].latency_factor)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut nodes = vec![
            ClusterNode {
                tokens: 0,
                access_freq: 1.0 / n as f64,
                platform: None,
            };
            n
        ];
        for (&ci, &pi) in cluster_order.iter().zip(&platform_order) {
            nodes[ci] = ClusterNode {
                tokens: cluster_tokens[ci],
                access_freq: 1.0 / n as f64,
                platform: Some(platforms[pi].clone()),
            };
        }
        Deployment {
            nodes,
            retrieval: RetrievalModel::default(),
            inference: InferenceModel::default(),
            encoder: EncoderModel::default(),
        }
    }

    /// The retrieval model governing `node` (its override or the
    /// deployment default).
    pub fn node_model(&self, node: usize) -> RetrievalModel {
        match &self.nodes[node].platform {
            Some(p) => RetrievalModel::new(p.clone()),
            None => self.retrieval.clone(),
        }
    }

    /// Total tokens across nodes.
    pub fn total_tokens(&self) -> u64 {
        self.nodes.iter().map(|n| n.tokens).sum()
    }

    /// Number of retrieval nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_split_preserves_tokens() {
        let d = Deployment::uniform(1_000_000_007, 3);
        assert_eq!(d.total_tokens(), 1_000_000_007);
        assert_eq!(d.num_nodes(), 3);
    }

    #[test]
    fn uniform_frequencies_sum_to_one() {
        let d = Deployment::uniform(1_000, 8);
        let sum: f64 = d.nodes.iter().map(|n| n.access_freq).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_deployment_matches_figure_13_shape() {
        // Figure 13: largest cluster ~2x the smallest; hottest cluster
        // accessed >2x more than the coldest.
        let d = Deployment::skewed(100_000_000_000, 10, 2.0, 0.8, 42);
        let sizes: Vec<u64> = d.nodes.iter().map(|n| n.tokens).collect();
        let ratio = *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64;
        assert!((1.8..2.2).contains(&ratio), "size ratio {ratio}");
        let freqs: Vec<f64> = d.nodes.iter().map(|n| n.access_freq).collect();
        let fr = freqs.iter().cloned().fold(0.0, f64::max)
            / freqs.iter().cloned().fold(1.0, f64::min);
        assert!(fr > 2.0, "freq ratio {fr}");
    }

    #[test]
    fn with_access_freqs_normalizes() {
        let d = Deployment::uniform(100, 2).with_access_freqs(&[3.0, 1.0]);
        assert!((d.nodes[0].access_freq - 0.75).abs() < 1e-9);
        assert!((d.nodes[1].access_freq - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one frequency per node")]
    fn mismatched_freqs_rejected() {
        let _ = Deployment::uniform(100, 2).with_access_freqs(&[1.0]);
    }

    #[test]
    fn with_access_counts_matches_freqs() {
        let from_counts = Deployment::uniform(100, 3).with_access_counts(&[6, 2, 0]);
        let from_freqs = Deployment::uniform(100, 3).with_access_freqs(&[6.0, 2.0, 0.0]);
        for (a, b) in from_counts.nodes.iter().zip(&from_freqs.nodes) {
            assert_eq!(a.access_freq, b.access_freq);
        }
        assert!((from_counts.nodes[0].access_freq - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequencies sum to zero")]
    fn all_zero_counts_rejected() {
        let _ = Deployment::uniform(100, 2).with_access_counts(&[0, 0]);
    }

    #[test]
    fn heterogeneous_puts_biggest_cluster_on_fastest_platform() {
        let tokens = [5_000_000_000u64, 20_000_000_000, 10_000_000_000];
        let platforms = vec![
            CpuPlatform::xeon_silver_4316(),   // slowest of the three
            CpuPlatform::xeon_gold_6448y(),
            CpuPlatform::xeon_platinum_8380(), // fastest
        ];
        let d = Deployment::heterogeneous(&tokens, &platforms);
        // Cluster 1 (20B, biggest) must run on the Platinum part.
        let p1 = d.nodes[1].platform.as_ref().unwrap();
        assert_eq!(p1.name, "Xeon Platinum 8380");
        // Cluster 0 (5B, smallest) gets the slowest part.
        let p0 = d.nodes[0].platform.as_ref().unwrap();
        assert_eq!(p0.name, "Xeon Silver 4316");
        assert_eq!(d.total_tokens(), 35_000_000_000);
    }

    #[test]
    fn lpt_placement_beats_worst_case_placement() {
        // Wall latency of a full fan-out is the max per-node latency;
        // size-aware placement must not be worse than the anti-placement.
        let tokens = [30_000_000_000u64, 5_000_000_000];
        let fast = CpuPlatform::xeon_platinum_8380();
        let slow = CpuPlatform::xeon_silver_4316();
        let good = Deployment::heterogeneous(&tokens, &[fast.clone(), slow.clone()]);
        let wall = |d: &Deployment| {
            (0..d.num_nodes())
                .map(|i| d.node_model(i).batch_latency(d.nodes[i].tokens, 128, 128))
                .fold(0.0f64, f64::max)
        };
        // Anti-placement: biggest cluster on the slow node.
        let mut bad = good.clone();
        bad.nodes[0].platform = Some(slow);
        bad.nodes[1].platform = Some(fast);
        assert!(wall(&good) < wall(&bad));
    }

    #[test]
    fn node_model_falls_back_to_deployment_default() {
        let d = Deployment::uniform(1_000, 2).with_platform(CpuPlatform::neoverse_n1());
        assert_eq!(d.node_model(0).platform().name, "Neoverse-N1");
    }

    #[test]
    #[should_panic(expected = "one platform per cluster")]
    fn heterogeneous_checks_lengths() {
        let _ = Deployment::heterogeneous(&[1, 2], &[CpuPlatform::xeon_gold_6448y()]);
    }
}
