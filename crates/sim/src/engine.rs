//! The multi-node aggregation engine.
//!
//! Computes per-stride stage latencies from the device models, composes
//! them under the chosen pipeline policy, and charges energy with the
//! work-based CPU model plus the DVFS policy under study.

use hermes_metrics::EnergyMeter;
use hermes_perfmodel::DvfsModel;

use crate::deployment::Deployment;
use crate::report::{SimReport, StageSpan};

/// How retrieval is organized across nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrievalScheme {
    /// One node holds the whole datastore (the paper's baseline).
    Monolithic,
    /// The datastore is sharded over all nodes; every query searches every
    /// node and results are aggregated (naive distribution).
    NaiveDistributed,
    /// Hermes: cheap sampling on all nodes ranks clusters; each query
    /// deep-searches only the top `clusters_to_search`.
    Hermes {
        /// Deep-searched clusters per query.
        clusters_to_search: usize,
        /// Sampling-phase `nProbe`.
        sample_nprobe: usize,
    },
}

/// Prior-work optimizations layered on the pipeline (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelinePolicy {
    /// PipeRAG: overlap each stride's retrieval (plus re-encode/re-prefill)
    /// with the previous stride's decode.
    pub pipelined: bool,
    /// RAGCache: cache document KV tensors so re-prefill after the first
    /// stride is free (the paper assumes an ideal 100% hit rate).
    pub prefix_cache: bool,
}

impl PipelinePolicy {
    /// Unoptimized baseline.
    pub fn baseline() -> Self {
        PipelinePolicy::default()
    }

    /// PipeRAG only.
    pub fn piperag() -> Self {
        PipelinePolicy {
            pipelined: true,
            prefix_cache: false,
        }
    }

    /// RAGCache only.
    pub fn ragcache() -> Self {
        PipelinePolicy {
            pipelined: false,
            prefix_cache: true,
        }
    }

    /// Both optimizations (the "Hermes/PipeRAG/RAGCache" bars).
    pub fn combined() -> Self {
        PipelinePolicy {
            pipelined: true,
            prefix_cache: true,
        }
    }
}

/// DVFS policy applied to retrieval nodes (Figure 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsMode {
    /// All nodes at maximum frequency; early finishers idle at static
    /// power.
    #[default]
    Off,
    /// Baseline DVFS: each node stretches its deep search to the latency
    /// of the slowest node in the batch.
    SlowestCluster,
    /// Enhanced DVFS: nodes stretch to the pipelined inference latency,
    /// since retrieval finishing before the GPU buys nothing.
    InferenceBound,
}

/// Serving configuration shared by all schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Queries per batch (paper default 128; characterization uses 32).
    pub batch: usize,
    /// Input prompt tokens (paper default 512).
    pub input_tokens: u32,
    /// Generated output tokens (paper default 256).
    pub output_tokens: u32,
    /// Retrieval stride in tokens (paper default 16).
    pub stride: u32,
    /// Deep-search / monolithic `nProbe` (paper default 128).
    pub nprobe: usize,
}

impl ServingConfig {
    /// Paper defaults: batch 128, 512 in, 256 out, stride 16, `nProbe` 128.
    pub fn paper_default() -> Self {
        ServingConfig {
            batch: 128,
            input_tokens: 512,
            output_tokens: 256,
            stride: 16,
            nprobe: 128,
        }
    }

    /// Sets the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the stride length.
    pub fn with_stride(mut self, stride: u32) -> Self {
        self.stride = stride;
        self
    }

    /// Number of retrieval strides for a full generation (at least 1).
    pub fn strides(&self) -> u32 {
        (self.output_tokens / self.stride.max(1)).max(1)
    }
}

/// Per-stride retrieval cost for one scheme on one deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalCost {
    /// Wall latency of the retrieval phase(s), seconds.
    pub latency_s: f64,
    /// Joules per batch across all nodes (including idle static power).
    pub joules: f64,
    /// Steady-state throughput bound, queries/second (bottleneck stage).
    pub qps: f64,
}

/// The multi-node analysis tool.
///
/// # Examples
///
/// ```
/// use hermes_sim::{Deployment, DvfsMode, MultiNodeSim, PipelinePolicy, RetrievalScheme, ServingConfig};
///
/// let sim = MultiNodeSim::new(Deployment::uniform(1_000_000_000_000, 10));
/// let serving = ServingConfig::paper_default();
/// let base = sim.run(&serving, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
/// let hermes = sim.run(
///     &serving,
///     RetrievalScheme::Hermes { clusters_to_search: 3, sample_nprobe: 8 },
///     PipelinePolicy::combined(),
///     DvfsMode::Off,
/// );
/// assert!(base.e2e_s / hermes.e2e_s > 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiNodeSim {
    deployment: Deployment,
    dvfs: DvfsModel,
}

impl MultiNodeSim {
    /// Builds the tool over a deployment.
    pub fn new(deployment: Deployment) -> Self {
        MultiNodeSim {
            deployment,
            dvfs: DvfsModel::default(),
        }
    }

    /// The deployment under analysis.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Retrieval-only cost of one batch under `scheme` (Figures 18/20).
    ///
    /// `budget_s` is the DVFS stretch budget; pass `None` for
    /// [`DvfsMode::Off`]-style full-speed operation.
    pub fn retrieval_cost(
        &self,
        serving: &ServingConfig,
        scheme: RetrievalScheme,
        dvfs_mode: DvfsMode,
        inference_budget_s: f64,
    ) -> RetrievalCost {
        let d = &self.deployment;
        let retr = &d.retrieval;
        let b = serving.batch;
        match scheme {
            RetrievalScheme::Monolithic => {
                let tokens = d.total_tokens();
                let latency = retr.batch_latency(tokens, b, serving.nprobe);
                let joules = retr.work_energy(tokens, b, serving.nprobe, latency);
                RetrievalCost {
                    latency_s: latency,
                    joules,
                    qps: b as f64 / latency,
                }
            }
            RetrievalScheme::NaiveDistributed => {
                // Every node searches the full batch in parallel.
                let lats: Vec<f64> = d
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, n)| d.node_model(i).batch_latency(n.tokens, b, serving.nprobe))
                    .collect();
                let wall = lats.iter().cloned().fold(0.0, f64::max);
                let joules = self.deep_phase_energy(
                    &lats,
                    &vec![b; d.nodes.len()],
                    serving.nprobe,
                    wall,
                    dvfs_mode,
                    inference_budget_s,
                );
                RetrievalCost {
                    latency_s: wall,
                    joules,
                    qps: b as f64 / wall,
                }
            }
            RetrievalScheme::Hermes {
                clusters_to_search,
                sample_nprobe,
            } => {
                let m = clusters_to_search.clamp(1, d.nodes.len());
                // Phase 1: sampling on every node (k=1, low nProbe), full
                // batch fan-out.
                let sample_lats: Vec<f64> = d
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, n)| d.node_model(i).batch_latency(n.tokens, b, sample_nprobe))
                    .collect();
                let sample_wall = sample_lats.iter().cloned().fold(0.0, f64::max);
                let mut sample_joules = 0.0;
                for (i, (n, lat)) in d.nodes.iter().zip(&sample_lats).enumerate() {
                    let node_model = d.node_model(i);
                    sample_joules += node_model.work_energy(n.tokens, b, sample_nprobe, *lat)
                        + node_model.static_power_w() * (sample_wall - lat);
                }

                // Phase 2: each query deep-searches its top-m clusters;
                // node load follows the access frequencies.
                let loads: Vec<usize> = spread_deep_load(d, b, m);
                let deep_lats: Vec<f64> = d
                    .nodes
                    .iter()
                    .enumerate()
                    .zip(&loads)
                    .map(|((i, n), &q)| {
                        if q == 0 {
                            0.0
                        } else {
                            d.node_model(i).batch_latency(n.tokens, q, serving.nprobe)
                        }
                    })
                    .collect();
                let deep_wall = deep_lats.iter().cloned().fold(0.0, f64::max);
                let deep_joules = self.deep_phase_energy(
                    &deep_lats,
                    &loads,
                    serving.nprobe,
                    deep_wall,
                    dvfs_mode,
                    inference_budget_s,
                );
                let latency = sample_wall + deep_wall;
                RetrievalCost {
                    latency_s: latency,
                    joules: sample_joules + deep_joules,
                    // Sampling and deep phases pipeline across batches in
                    // steady state; the slower phase bounds throughput.
                    qps: b as f64 / sample_wall.max(deep_wall),
                }
            }
        }
    }

    fn deep_phase_energy(
        &self,
        lats: &[f64],
        loads: &[usize],
        nprobe: usize,
        wall: f64,
        dvfs_mode: DvfsMode,
        inference_budget_s: f64,
    ) -> f64 {
        let d = &self.deployment;
        let mut joules = 0.0;
        for (i, ((node, &lat), &q)) in d.nodes.iter().zip(lats).zip(loads).enumerate() {
            let retr = d.node_model(i);
            if q == 0 {
                joules += retr.static_power_w() * wall;
                continue;
            }
            let budget = match dvfs_mode {
                DvfsMode::Off => lat,
                DvfsMode::SlowestCluster => wall,
                DvfsMode::InferenceBound => wall.max(inference_budget_s),
            };
            // Work-based busy energy, scaled by the DVFS stretch factor.
            let full_speed = retr.work_energy(node.tokens, q, nprobe, lat);
            let busy = full_speed * self.dvfs.energy(1.0, lat, budget) / lat.max(1e-12);
            // Idle static power is charged only within the retrieval
            // phase itself; a node stretched past the phase wall by DVFS
            // is busy (at reduced power) instead of idling.
            let elapsed = lat / self.dvfs.frequency_for_budget(lat, budget);
            let idle = retr.static_power_w() * (wall - elapsed).max(0.0);
            joules += busy + idle;
        }
        joules
    }

    /// Full pipeline simulation of one batch.
    pub fn run(
        &self,
        serving: &ServingConfig,
        scheme: RetrievalScheme,
        policy: PipelinePolicy,
        dvfs_mode: DvfsMode,
    ) -> SimReport {
        let d = &self.deployment;
        let b = serving.batch;
        let strides = serving.strides();

        let encode_s = d.encoder.latency(b);
        let prefill_s = d.inference.prefill_latency(b, serving.input_tokens);
        let decode_s = d.inference.decode_latency(b, serving.stride);
        let inference_budget = decode_s + if policy.prefix_cache { 0.0 } else { prefill_s };
        let rc = self.retrieval_cost(serving, scheme, dvfs_mode, inference_budget);

        // Re-prefill cost on strides 2..: free with an ideal prefix cache.
        let reprefill_s = if policy.prefix_cache { 0.0 } else { prefill_s };

        let ttft = encode_s + rc.latency_s + prefill_s;
        let per_stride_work = encode_s + rc.latency_s + reprefill_s;
        // Steady state: with batches pipelined back to back, throughput is
        // bound by the slowest stage of a stride (CPU retrieval chain vs
        // GPU decode); without pipelining, stages serialize.
        let bottleneck = if policy.pipelined {
            per_stride_work.max(decode_s)
        } else {
            per_stride_work + decode_s
        };
        let sustained_qps = b as f64 / bottleneck;
        let e2e = if policy.pipelined {
            // Strides 2.. overlap their retrieval work with the previous
            // stride's decode.
            ttft + decode_s
                + (strides as f64 - 1.0) * per_stride_work.max(decode_s)
        } else {
            ttft + decode_s + (strides as f64 - 1.0) * (per_stride_work + decode_s)
        };

        // Energy: every stride encodes, retrieves and decodes; prefill is
        // paid per stride unless cached (then once).
        let mut energy = EnergyMeter::new();
        energy.record_joules("encode", d.encoder.energy(b) * strides as f64);
        energy.record_joules("retrieval", rc.joules * strides as f64);
        let prefill_count = if policy.prefix_cache { 1.0 } else { strides as f64 };
        energy.record_joules(
            "prefill",
            d.inference.prefill_energy(b, serving.input_tokens) * prefill_count,
        );
        energy.record_joules(
            "decode",
            d.inference.decode_energy(b, serving.stride) * strides as f64,
        );

        // Timeline of the first two strides for Figure 8.
        let mut timeline = Vec::new();
        let mut t = 0.0;
        timeline.push(StageSpan::new("encode", t, t + encode_s));
        t += encode_s;
        timeline.push(StageSpan::new("retrieval", t, t + rc.latency_s));
        t += rc.latency_s;
        timeline.push(StageSpan::new("prefill", t, t + prefill_s));
        t += prefill_s;
        timeline.push(StageSpan::new("decode", t, t + decode_s));
        if strides > 1 {
            if policy.pipelined {
                // Next stride's retrieval work starts alongside decode.
                timeline.push(StageSpan::new("retrieval", t, t + per_stride_work));
                let next = t + per_stride_work.max(decode_s);
                timeline.push(StageSpan::new("decode", next, next + decode_s));
            } else {
                let mut u = t + decode_s;
                timeline.push(StageSpan::new("encode", u, u + encode_s));
                u += encode_s;
                timeline.push(StageSpan::new("retrieval", u, u + rc.latency_s));
                u += rc.latency_s;
                if reprefill_s > 0.0 {
                    timeline.push(StageSpan::new("prefill", u, u + reprefill_s));
                    u += reprefill_s;
                }
                timeline.push(StageSpan::new("decode", u, u + decode_s));
            }
        }

        SimReport {
            ttft_s: ttft,
            e2e_s: e2e,
            retrieval_per_stride_s: rc.latency_s,
            encode_s,
            prefill_s,
            decode_per_stride_s: decode_s,
            strides,
            energy,
            retrieval_qps: rc.qps,
            sustained_qps,
            timeline,
        }
    }
}

/// Distributes `batch * m` deep searches over nodes by access frequency,
/// capping per-node load at the batch size (a query never searches the
/// same cluster twice).
fn spread_deep_load(d: &Deployment, batch: usize, m: usize) -> Vec<usize> {
    let total = batch * m;
    let mut loads: Vec<usize> = d
        .nodes
        .iter()
        .map(|n| ((total as f64 * n.access_freq).round() as usize).min(batch))
        .collect();
    // Repair rounding drift while respecting the per-node cap.
    let mut assigned: usize = loads.iter().sum();
    let mut i = 0;
    while assigned < total && i < 10 * loads.len() {
        let idx = i % loads.len();
        if loads[idx] < batch {
            loads[idx] += 1;
            assigned += 1;
        }
        i += 1;
    }
    while assigned > total {
        let idx = loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .expect("non-empty");
        if loads[idx] == 0 {
            break;
        }
        loads[idx] -= 1;
        assigned -= 1;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: u64 = 1_000_000_000_000;
    const B100: u64 = 100_000_000_000;
    const B1: u64 = 1_000_000_000;

    fn hermes3() -> RetrievalScheme {
        RetrievalScheme::Hermes {
            clusters_to_search: 3,
            sample_nprobe: 8,
        }
    }

    #[test]
    fn hermes_e2e_speedup_at_1t_is_near_9x() {
        let sim = MultiNodeSim::new(Deployment::uniform(T1, 10));
        let s = ServingConfig::paper_default();
        let base = sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
        let hermes = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
        let speedup = base.e2e_s / hermes.e2e_s;
        assert!((6.0..15.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn hermes_energy_saving_at_1t_near_2x() {
        let sim = MultiNodeSim::new(Deployment::uniform(T1, 10));
        let s = ServingConfig::paper_default();
        let base = sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
        let hermes = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
        let saving = base.total_joules() / hermes.total_joules();
        assert!((1.5..3.0).contains(&saving), "saving {saving}");
    }

    #[test]
    fn ttft_improvement_at_1t_near_9x() {
        let sim = MultiNodeSim::new(Deployment::uniform(T1, 10));
        let s = ServingConfig::paper_default();
        let base = sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
        let hermes = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
        let speedup = base.ttft_s / hermes.ttft_s;
        assert!((5.0..14.0).contains(&speedup), "TTFT speedup {speedup}");
    }

    #[test]
    fn small_datastores_see_smaller_gains() {
        let s = ServingConfig::paper_default();
        let gain_at = |tokens: u64| {
            let sim = MultiNodeSim::new(Deployment::uniform(tokens, 10));
            let base =
                sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
            let hermes = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
            base.e2e_s / hermes.e2e_s
        };
        assert!(gain_at(B1) < gain_at(B100));
        assert!(gain_at(B100) < gain_at(T1) * 1.2);
    }

    #[test]
    fn shorter_strides_amplify_hermes_gains() {
        let sim = MultiNodeSim::new(Deployment::uniform(T1, 10));
        let gain_at = |stride: u32| {
            let s = ServingConfig::paper_default().with_stride(stride);
            let base =
                sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
            let hermes = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
            base.e2e_s / hermes.e2e_s
        };
        assert!(gain_at(4) >= gain_at(64));
    }

    #[test]
    fn piperag_hides_retrieval_only_when_small() {
        let s = ServingConfig::paper_default().with_batch(32);
        // Small store: pipelining hides retrieval almost fully.
        let small = MultiNodeSim::new(Deployment::uniform(100_000_000, 1));
        let seq = small.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
        let pipe = small.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::piperag(), DvfsMode::Off);
        let small_gain = seq.e2e_s / pipe.e2e_s;
        assert!(small_gain > 1.3, "{small_gain}");
        // Large store: retrieval dwarfs decode; pipelining gains fade.
        let large = MultiNodeSim::new(Deployment::uniform(B100, 1));
        let seq_l =
            large.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
        let pipe_l =
            large.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::piperag(), DvfsMode::Off);
        let large_gain = seq_l.e2e_s / pipe_l.e2e_s;
        assert!(large_gain < small_gain, "{large_gain} vs {small_gain}");
        assert!(large_gain < 1.25, "{large_gain}");
    }

    #[test]
    fn ragcache_gain_shrinks_with_datastore_size() {
        let s = ServingConfig::paper_default().with_batch(32);
        let gain_at = |tokens: u64| {
            let sim = MultiNodeSim::new(Deployment::uniform(tokens, 1));
            let seq =
                sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off);
            let cache =
                sim.run(&s, RetrievalScheme::Monolithic, PipelinePolicy::ragcache(), DvfsMode::Off);
            seq.e2e_s / cache.e2e_s
        };
        assert!(gain_at(100_000_000) > gain_at(B100));
    }

    #[test]
    fn e2e_matches_figure_6_anchors_at_batch_32() {
        // Baseline monolithic, stride 16, 256 out: ≈12 s @ 100M,
        // ≈102 s @ 100B, ≈909 s @ 1T.
        let s = ServingConfig::paper_default().with_batch(32);
        let e2e_at = |tokens: u64| {
            MultiNodeSim::new(Deployment::uniform(tokens, 1))
                .run(&s, RetrievalScheme::Monolithic, PipelinePolicy::baseline(), DvfsMode::Off)
                .e2e_s
        };
        let e100m = e2e_at(100_000_000);
        let e100b = e2e_at(B100);
        let e1t = e2e_at(T1);
        assert!((9.0..16.0).contains(&e100m), "100M: {e100m}");
        assert!((85.0..120.0).contains(&e100b), "100B: {e100b}");
        assert!((800.0..1000.0).contains(&e1t), "1T: {e1t}");
    }

    #[test]
    fn naive_distribution_is_fast_but_energy_hungry() {
        let sim = MultiNodeSim::new(Deployment::uniform(B100, 10));
        let s = ServingConfig::paper_default();
        let mono = sim.retrieval_cost(&s, RetrievalScheme::Monolithic, DvfsMode::Off, 0.0);
        let naive = sim.retrieval_cost(&s, RetrievalScheme::NaiveDistributed, DvfsMode::Off, 0.0);
        assert!(naive.latency_s < mono.latency_s / 5.0);
        assert!(naive.joules > mono.joules * 0.8, "naive {} mono {}", naive.joules, mono.joules);
    }

    #[test]
    fn hermes_beats_naive_throughput_and_energy_near_paper_ratios() {
        // Figure 18: 3 of 10 clusters → ≈1.81x QPS and ≈1.77x energy.
        let sim = MultiNodeSim::new(Deployment::uniform(B100, 10));
        let s = ServingConfig::paper_default();
        let naive = sim.retrieval_cost(&s, RetrievalScheme::NaiveDistributed, DvfsMode::Off, 0.0);
        let hermes = sim.retrieval_cost(&s, hermes3(), DvfsMode::Off, 0.0);
        let qps_gain = hermes.qps / naive.qps;
        let energy_gain = naive.joules / hermes.joules;
        assert!((1.2..2.6).contains(&qps_gain), "qps gain {qps_gain}");
        assert!((1.4..2.6).contains(&energy_gain), "energy gain {energy_gain}");
    }

    #[test]
    fn energy_grows_with_clusters_searched() {
        let sim = MultiNodeSim::new(Deployment::uniform(B100, 10));
        let s = ServingConfig::paper_default();
        let mut prev = 0.0;
        for m in 1..=10 {
            let cost = sim.retrieval_cost(
                &s,
                RetrievalScheme::Hermes {
                    clusters_to_search: m,
                    sample_nprobe: 8,
                },
                DvfsMode::Off,
                0.0,
            );
            assert!(cost.joules > prev, "m={m}");
            prev = cost.joules;
        }
    }

    #[test]
    fn dvfs_saves_energy_and_enhanced_saves_more() {
        let sim = MultiNodeSim::new(
            Deployment::skewed(B100, 10, 2.0, 0.8, 7),
        );
        let s = ServingConfig::paper_default();
        let budget = 2.0; // generous inference budget
        let off = sim.retrieval_cost(&s, hermes3(), DvfsMode::Off, budget);
        let slow = sim.retrieval_cost(&s, hermes3(), DvfsMode::SlowestCluster, budget);
        let inf = sim.retrieval_cost(&s, hermes3(), DvfsMode::InferenceBound, budget * 10.0);
        assert!(slow.joules <= off.joules);
        assert!(inf.joules < slow.joules);
        // DVFS must not change the reported wall latency budget violation.
        assert_eq!(off.latency_s, slow.latency_s);
    }

    #[test]
    fn spread_load_conserves_total_queries() {
        let d = Deployment::skewed(B100, 10, 2.0, 1.0, 3);
        let loads = spread_deep_load(&d, 128, 3);
        assert_eq!(loads.iter().sum::<usize>(), 128 * 3);
        assert!(loads.iter().all(|&l| l <= 128));
    }

    #[test]
    fn strides_count_is_output_over_stride() {
        assert_eq!(ServingConfig::paper_default().strides(), 16);
        assert_eq!(ServingConfig::paper_default().with_stride(4).strides(), 64);
    }

    #[test]
    fn sustained_qps_dominates_e2e_qps() {
        // Back-to-back pipelined batches amortize TTFT, so sustained
        // throughput is at least the single-batch E2E throughput.
        let sim = MultiNodeSim::new(Deployment::uniform(B100, 10));
        let s = ServingConfig::paper_default();
        for policy in [PipelinePolicy::baseline(), PipelinePolicy::combined()] {
            let r = sim.run(&s, hermes3(), policy, DvfsMode::Off);
            assert!(
                r.sustained_qps >= r.e2e_qps(s.batch),
                "sustained {} < e2e {}",
                r.sustained_qps,
                r.e2e_qps(s.batch)
            );
        }
    }

    #[test]
    fn pipelining_improves_sustained_throughput() {
        let sim = MultiNodeSim::new(Deployment::uniform(B1, 10));
        let s = ServingConfig::paper_default();
        let seq = sim.run(&s, hermes3(), PipelinePolicy::ragcache(), DvfsMode::Off);
        let pipe = sim.run(&s, hermes3(), PipelinePolicy::combined(), DvfsMode::Off);
        assert!(pipe.sustained_qps > seq.sustained_qps);
    }

    #[test]
    fn timeline_spans_are_ordered_per_resource() {
        let sim = MultiNodeSim::new(Deployment::uniform(B1, 10));
        let r = sim.run(
            &ServingConfig::paper_default(),
            hermes3(),
            PipelinePolicy::combined(),
            DvfsMode::Off,
        );
        assert!(!r.timeline.is_empty());
        for span in &r.timeline {
            assert!(span.end_s >= span.start_s);
        }
    }
}
