//! Structured simulation results.

use hermes_metrics::EnergyMeter;

/// One busy interval on one resource — the unit of the Figure 8 timeline
/// plots.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage label ("encode", "retrieval", "prefill", "decode").
    pub stage: String,
    /// Start time, seconds from batch arrival.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
}

impl StageSpan {
    /// Creates a span.
    pub fn new(stage: &str, start_s: f64, end_s: f64) -> Self {
        StageSpan {
            stage: stage.to_string(),
            start_s,
            end_s,
        }
    }

    /// Span duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Result of simulating one batch through the full RAG pipeline.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Time to first token: encode + first retrieval + prefill.
    pub ttft_s: f64,
    /// End-to-end latency for the full generation.
    pub e2e_s: f64,
    /// Per-stride retrieval latency (sample + deep for Hermes).
    pub retrieval_per_stride_s: f64,
    /// Encode latency per stride.
    pub encode_s: f64,
    /// Prefill latency (first stride).
    pub prefill_s: f64,
    /// Decode latency per stride.
    pub decode_per_stride_s: f64,
    /// Number of retrieval strides executed.
    pub strides: u32,
    /// Energy by stage for the whole batch.
    pub energy: EnergyMeter,
    /// Steady-state retrieval throughput, queries per second.
    pub retrieval_qps: f64,
    /// Sustained end-to-end throughput with batches pipelined back to
    /// back: batch size over the bottleneck stage's per-stride latency.
    pub sustained_qps: f64,
    /// Busy spans of the first two strides (for timeline plots).
    pub timeline: Vec<StageSpan>,
}

impl SimReport {
    /// Total joules across stages.
    pub fn total_joules(&self) -> f64 {
        self.energy.total_joules()
    }

    /// End-to-end throughput: batch size over E2E latency.
    pub fn e2e_qps(&self, batch: usize) -> f64 {
        batch as f64 / self.e2e_s
    }
}

/// Renders spans as an ASCII Gantt chart, one row per stage, `width`
/// characters across — the textual analogue of the paper's Figure 8
/// timelines.
///
/// # Examples
///
/// ```
/// use hermes_sim::{report::render_timeline, StageSpan};
/// let spans = vec![
///     StageSpan::new("retrieval", 0.0, 2.0),
///     StageSpan::new("decode", 2.0, 3.0),
/// ];
/// let chart = render_timeline(&spans, 30);
/// assert!(chart.contains("retrieval"));
/// assert!(chart.contains('#'));
/// ```
pub fn render_timeline(spans: &[StageSpan], width: usize) -> String {
    let width = width.max(10);
    let end = spans.iter().map(|s| s.end_s).fold(0.0f64, f64::max);
    if end <= 0.0 {
        return String::new();
    }
    // Stable stage order: first appearance wins.
    let mut stages: Vec<&str> = Vec::new();
    for s in spans {
        if !stages.contains(&s.stage.as_str()) {
            stages.push(&s.stage);
        }
    }
    let label_w = stages.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = String::new();
    for stage in &stages {
        let mut row = vec![b' '; width];
        for span in spans.iter().filter(|s| s.stage == *stage) {
            let a = ((span.start_s / end) * width as f64).floor() as usize;
            let b = ((span.end_s / end) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = b'#';
            }
        }
        out.push_str(&format!(
            "{:<label_w$} |{}|\n",
            stage,
            String::from_utf8_lossy(&row)
        ));
    }
    out.push_str(&format!(
        "{:<label_w$}  0{:>w$.2}s\n",
        "",
        end,
        w = width - 1
    ));
    out
}

/// Exports a simulated timeline as Chrome trace-event JSON, one
/// Perfetto lane per stage (stages are assigned tids in order of first
/// appearance). Simulated seconds become trace nanoseconds; each
/// [`StageSpan`] becomes one complete (`ph: "X"`) event, so the same
/// viewer that opens a real `hermes trace` capture can open a simulated
/// Figure 8 timeline.
pub fn timeline_to_chrome_json(spans: &[StageSpan]) -> String {
    let mut stages: Vec<&str> = Vec::new();
    for s in spans {
        if !stages.contains(&s.stage.as_str()) {
            stages.push(&s.stage);
        }
    }
    let tid_of = |stage: &str| stages.iter().position(|s| *s == stage).unwrap() as u32 + 1;
    let ns = |seconds: f64| (seconds.max(0.0) * 1e9).round() as u64;
    let mut b = hermes_trace::export::ChromeTraceBuilder::new();
    for stage in &stages {
        b.thread_name(tid_of(stage), stage);
    }
    for span in spans {
        let start = ns(span.start_s);
        b.complete(
            &span.stage,
            tid_of(&span.stage),
            start,
            ns(span.end_s).saturating_sub(start),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trace::json::{self, Json};

    #[test]
    fn span_duration() {
        let s = StageSpan::new("decode", 1.0, 2.5);
        assert_eq!(s.duration_s(), 1.5);
        assert_eq!(s.stage, "decode");
    }

    #[test]
    fn timeline_renders_one_row_per_stage() {
        let spans = vec![
            StageSpan::new("encode", 0.0, 1.0),
            StageSpan::new("retrieval", 1.0, 5.0),
            StageSpan::new("encode", 6.0, 7.0),
        ];
        let chart = render_timeline(&spans, 40);
        assert_eq!(chart.lines().count(), 3); // 2 stages + axis
        assert!(chart.starts_with("encode"));
    }

    #[test]
    fn longer_spans_paint_more_cells() {
        let chart = render_timeline(
            &[
                StageSpan::new("short", 0.0, 1.0),
                StageSpan::new("long", 1.0, 9.0),
            ],
            50,
        );
        let count = |line: &str| line.matches('#').count();
        let mut lines = chart.lines();
        let short = count(lines.next().unwrap());
        let long = count(lines.next().unwrap());
        assert!(long > 3 * short, "short {short} long {long}");
    }

    #[test]
    fn empty_timeline_is_empty_string() {
        assert_eq!(render_timeline(&[], 40), "");
    }

    #[test]
    fn chrome_export_parses_and_maps_stages_to_lanes() {
        let spans = vec![
            StageSpan::new("encode", 0.0, 1.0),
            StageSpan::new("retrieval", 1.0, 5.0),
            StageSpan::new("encode", 6.0, 7.0),
        ];
        let doc = json::parse(&timeline_to_chrome_json(&spans)).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 2 thread_name metadata records + 3 complete events.
        assert_eq!(events.len(), 5);
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        // Both encode spans share a lane; retrieval gets its own.
        let tid = |e: &Json| e.get("tid").and_then(Json::as_f64).unwrap();
        assert_eq!(tid(xs[0]), tid(xs[2]));
        assert_ne!(tid(xs[0]), tid(xs[1]));
        // 1 simulated second = 1e9 ns = 1e6 trace µs.
        assert_eq!(xs[1].get("ts").and_then(Json::as_f64), Some(1e6));
        assert_eq!(xs[1].get("dur").and_then(Json::as_f64), Some(4e6));
    }

    #[test]
    fn chrome_export_of_empty_timeline_is_valid_json() {
        let doc = json::parse(&timeline_to_chrome_json(&[])).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
    }
}
