//! Lloyd's K-means, the clustering workhorse of the Hermes reproduction.
//!
//! K-means is used in two places, mirroring the paper:
//!
//! 1. **Inside each IVF index** as the coarse quantizer that defines the
//!    `nlist` inverted lists (Section 2.1).
//! 2. **For datastore disaggregation** (Section 4.1): the whole corpus is
//!    K-means-clustered into `C` topical partitions, one per node. Because
//!    the initial centroid draw makes cluster sizes uneven, Hermes sweeps
//!    several seeds *on a small subsample* and keeps the seed with the
//!    lowest size imbalance (max/min ratio). [`SeedSweep`] implements that
//!    procedure; [`subsample`] implements the 1–2% subsampling trick.
//!
//! # Examples
//!
//! ```
//! use hermes_math::Mat;
//! use hermes_kmeans::{KMeans, KMeansConfig};
//!
//! // Two obvious blobs on the x axis.
//! let rows: Vec<Vec<f32>> = (0..20)
//!     .map(|i| if i < 10 { vec![0.0, i as f32 * 0.01] } else { vec![10.0, i as f32 * 0.01] })
//!     .collect();
//! let data = Mat::from_rows(&rows);
//! let model = KMeans::train(&data, &KMeansConfig::new(2).with_seed(1));
//! assert_eq!(model.num_clusters(), 2);
//! let (a, _) = model.assign(data.row(0));
//! let (b, _) = model.assign(data.row(19));
//! assert_ne!(a, b);
//! ```

use hermes_math::distance::l2_sq;
use hermes_math::rng::{derive_seed, seeded_rng, SeededRng};
use hermes_math::stats::imbalance_ratio;
use hermes_math::Mat;

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// Pick `k` distinct input rows uniformly at random — FAISS's default
    /// and what the paper's imbalance discussion assumes.
    #[default]
    Random,
    /// k-means++ D² sampling; slower to seed but typically lower inertia.
    KMeansPlusPlus,
}

/// Training configuration for [`KMeans::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Upper bound on Lloyd iterations.
    pub max_iters: usize,
    /// Relative inertia improvement below which training stops early.
    pub tolerance: f64,
    /// Centroid initialization strategy.
    pub init: Init,
    /// RNG seed; the sweep in [`SeedSweep`] varies exactly this field.
    pub seed: u64,
}

impl KMeansConfig {
    /// Configuration with workspace defaults (25 iterations, 1e-4 tolerance,
    /// random init, seed 0).
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 25,
            tolerance: 1e-4,
            init: Init::Random,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization strategy.
    pub fn with_init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

/// A trained K-means model: centroid table plus training diagnostics.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Mat,
    assignments: Vec<u32>,
    cluster_sizes: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Runs Lloyd's algorithm on `data` (one vector per row).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `cfg.k == 0`. If `k > data.rows()` the
    /// effective `k` is clamped to the number of rows.
    pub fn train(data: &Mat, cfg: &KMeansConfig) -> Self {
        assert!(data.rows() > 0, "cannot cluster an empty dataset");
        assert!(cfg.k > 0, "k must be positive");
        let k = cfg.k.min(data.rows());
        let mut rng = seeded_rng(cfg.seed);
        let centroids = match cfg.init {
            Init::Random => init_random(data, k, &mut rng),
            Init::KMeansPlusPlus => init_plus_plus(data, k, &mut rng),
        };
        Self::train_from_centroids(data, centroids, cfg)
    }

    /// Runs Lloyd's algorithm starting from caller-provided centroids —
    /// the warm-start path Hermes uses to carry a subsample-swept
    /// clustering over to the full datastore (Section 4.1): the winning
    /// subsample centroids seed the full-data refinement, so the
    /// subsample's low imbalance transfers instead of being re-rolled.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `init` has no rows, or the
    /// dimensionalities differ.
    pub fn train_from_centroids(data: &Mat, init: Mat, cfg: &KMeansConfig) -> Self {
        assert!(data.rows() > 0, "cannot cluster an empty dataset");
        assert!(init.rows() > 0, "need at least one initial centroid");
        assert_eq!(init.cols(), data.cols(), "centroid dimension mismatch");
        let k = init.rows();
        let dim = data.cols();
        let mut centroids = init;

        let mut assignments = vec![0u32; data.rows()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;
        for iter in 0..cfg.max_iters.max(1) {
            iterations = iter + 1;
            // Assignment step (pooled sweep; inertia accumulates in row
            // order, so the sum is bit-identical to a sequential loop).
            let mut new_inertia = 0.0f64;
            for (i, (c, d)) in assign_sweep(data, &centroids).into_iter().enumerate() {
                assignments[i] = c as u32;
                new_inertia += d as f64;
            }
            // Update step.
            let mut sums = Mat::zeros(k, dim);
            let mut counts = vec![0usize; k];
            for (i, row) in data.iter_rows().enumerate() {
                let c = assignments[i] as usize;
                hermes_math::distance::add_assign(sums.row_mut(c), row);
                counts[c] += 1;
            }
            for (c, count) in counts.iter_mut().enumerate() {
                if *count == 0 {
                    // Empty-cluster repair: reseed from the point farthest
                    // from its centroid, FAISS-style.
                    let far = farthest_point(data, &centroids, &assignments);
                    sums.row_mut(c).copy_from_slice(data.row(far));
                    *count = 1;
                }
                hermes_math::distance::scale(sums.row_mut(c), 1.0 / *count as f32);
            }
            centroids = sums;

            let improved = (inertia - new_inertia) / new_inertia.max(f64::MIN_POSITIVE);
            inertia = new_inertia;
            if improved.abs() < cfg.tolerance && iter > 0 {
                break;
            }
        }

        // Final assignment against the last centroid update.
        let mut cluster_sizes = vec![0usize; k];
        let mut final_inertia = 0.0f64;
        for (i, (c, d)) in assign_sweep(data, &centroids).into_iter().enumerate() {
            assignments[i] = c as u32;
            cluster_sizes[c] += 1;
            final_inertia += d as f64;
        }

        KMeans {
            centroids,
            assignments,
            cluster_sizes,
            inertia: final_inertia,
            iterations,
        }
    }

    /// The centroid table (`k x dim`).
    pub fn centroids(&self) -> &Mat {
        &self.centroids
    }

    /// Cluster index assigned to each training row.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Number of training rows in each cluster.
    pub fn cluster_sizes(&self) -> &[usize] {
        &self.cluster_sizes
    }

    /// Final sum of squared distances to assigned centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations actually executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// Assigns an unseen vector, returning `(cluster, squared_distance)`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the training dimensionality.
    pub fn assign(&self, v: &[f32]) -> (usize, f32) {
        assert_eq!(v.len(), self.centroids.cols(), "dimension mismatch");
        nearest_centroid(&self.centroids, v)
    }

    /// Returns the indices of the `n` centroids closest to `v`, best first —
    /// the primitive behind IVF's `nProbe` list selection.
    pub fn nearest_centroids(&self, v: &[f32], n: usize) -> Vec<usize> {
        let k = self.centroids.rows();
        let mut dists = vec![0.0f32; k];
        hermes_math::block::l2_sq_block(v, self.centroids.as_slice(), self.centroids.cols(), &mut dists);
        let mut scored: Vec<(usize, f32)> = dists.into_iter().enumerate().collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(n.max(1));
        scored.into_iter().map(|(c, _)| c).collect()
    }

    /// Max/min cluster-size ratio — the paper's imbalance proxy.
    pub fn imbalance(&self) -> Option<f64> {
        imbalance_ratio(&self.cluster_sizes)
    }

    /// Reconstructs a serving-only model from a centroid table (no
    /// training diagnostics; `assignments` is empty). Used when loading a
    /// persisted index: the online path only ever calls [`Self::assign`]
    /// and [`Self::nearest_centroids`].
    ///
    /// # Panics
    ///
    /// Panics if `centroids` has no rows.
    pub fn from_centroids(centroids: Mat, cluster_sizes: Vec<usize>) -> Self {
        assert!(centroids.rows() > 0, "need at least one centroid");
        KMeans {
            centroids,
            assignments: Vec::new(),
            cluster_sizes,
            inertia: 0.0,
            iterations: 0,
        }
    }
}

impl hermes_math::wire::WireEncode for KMeans {
    fn encode_wire(&self, w: &mut hermes_math::wire::Writer) {
        w.mat(&self.centroids);
        w.u64s(&self.cluster_sizes.iter().map(|&s| s as u64).collect::<Vec<_>>());
    }
}

impl hermes_math::wire::WireDecode for KMeans {
    fn decode_wire(
        r: &mut hermes_math::wire::Reader<'_>,
    ) -> Result<Self, hermes_math::wire::WireError> {
        let centroids = r.mat()?;
        let sizes = r.u64s()?.into_iter().map(|s| s as usize).collect();
        if centroids.rows() == 0 {
            return Err(hermes_math::wire::WireError::Corrupt(
                "empty centroid table".into(),
            ));
        }
        Ok(KMeans::from_centroids(centroids, sizes))
    }
}

fn init_random(data: &Mat, k: usize, rng: &mut SeededRng) -> Mat {
    let mut idx: Vec<usize> = (0..data.rows()).collect();
    rng.shuffle(&mut idx);
    let rows: Vec<Vec<f32>> = idx[..k].iter().map(|&i| data.row(i).to_vec()).collect();
    Mat::from_rows(&rows)
}

fn init_plus_plus(data: &Mat, k: usize, rng: &mut SeededRng) -> Mat {
    let n = data.rows();
    let first = rng.gen_range(0..n);
    let mut chosen = vec![first];
    let mut d2: Vec<f32> = data
        .iter_rows()
        .map(|r| l2_sq(r, data.row(first)))
        .collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().map(|&d| d as f64).sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        for (i, r) in data.iter_rows().enumerate() {
            let d = l2_sq(r, data.row(next));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    let rows: Vec<Vec<f32>> = chosen.iter().map(|&i| data.row(i).to_vec()).collect();
    Mat::from_rows(&rows)
}

/// Rows below this count run the assignment sweep inline — the pool's
/// dispatch overhead only pays for itself on real datastores, not the
/// toy matrices unit tests and doctest blobs feed in.
const PARALLEL_SWEEP_MIN_ROWS: usize = 256;

/// Nearest-centroid assignment for every row, in row order — the inner
/// loop of Lloyd's algorithm, fanned out on the shared work-stealing
/// pool. Each row's result is exact and schedule-independent, so the
/// sweep is deterministic for any `HERMES_THREADS`.
fn assign_sweep(data: &Mat, centroids: &Mat) -> Vec<(usize, f32)> {
    if data.rows() < PARALLEL_SWEEP_MIN_ROWS {
        return data
            .iter_rows()
            .map(|row| nearest_centroid(centroids, row))
            .collect();
    }
    hermes_pool::Pool::global()
        .parallel_map_index(data.rows(), |i| nearest_centroid(centroids, data.row(i)))
}

// Blocked argmin over the centroid table; `|row - v|^2` and `|v - row|^2`
// are the same f32 bit pattern, so swapping the argument order relative to
// the old per-row loop changes nothing downstream.
fn nearest_centroid(centroids: &Mat, v: &[f32]) -> (usize, f32) {
    hermes_math::block::nearest_row_l2(v, centroids)
}

fn farthest_point(data: &Mat, centroids: &Mat, assignments: &[u32]) -> usize {
    let mut far = 0usize;
    let mut far_d = -1.0f32;
    for (i, row) in data.iter_rows().enumerate() {
        let d = l2_sq(row, centroids.row(assignments[i] as usize));
        if d > far_d {
            far_d = d;
            far = i;
        }
    }
    far
}

/// Draws a uniformly random row subsample of `fraction` (clamped to at
/// least one row) — the 1–2% subsampling the paper uses to make multi-seed
/// K-means sweeps affordable on 100M+ document datastores.
/// Folds one vector into a running mean: `c ← c + (v − c)/n` where `n`
/// is the member count *including* `v`. This is the numerically stable
/// Welford-style form the clustered store uses to keep split centroids
/// tracking the live population as documents stream in.
///
/// # Panics
///
/// Panics if `centroid.len() != v.len()` or `count_after == 0`.
pub fn running_update(centroid: &mut [f32], v: &[f32], count_after: usize) {
    assert_eq!(centroid.len(), v.len(), "dimension mismatch");
    assert!(count_after > 0, "running mean needs at least one member");
    let inv = 1.0 / count_after as f32;
    for (c, &x) in centroid.iter_mut().zip(v) {
        *c += (x - *c) * inv;
    }
}

/// Removes one vector's contribution from a running mean: the inverse of
/// [`running_update`], with `count_after` the member count *excluding*
/// `v`. With `count_after == 0` the centroid is left unchanged (an empty
/// cluster keeps its last position as the routing anchor).
///
/// # Panics
///
/// Panics if `centroid.len() != v.len()`.
pub fn running_downdate(centroid: &mut [f32], v: &[f32], count_after: usize) {
    assert_eq!(centroid.len(), v.len(), "dimension mismatch");
    if count_after == 0 {
        return;
    }
    let inv = 1.0 / count_after as f32;
    for (c, &x) in centroid.iter_mut().zip(v) {
        *c += (*c - x) * inv;
    }
}

pub fn subsample(data: &Mat, fraction: f64, seed: u64) -> Mat {
    let n = data.rows();
    let take = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    seeded_rng(seed).shuffle(&mut idx);
    let rows: Vec<Vec<f32>> = idx[..take].iter().map(|&i| data.row(i).to_vec()).collect();
    Mat::from_rows(&rows)
}

/// Per-seed outcome of an imbalance sweep.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The K-means seed evaluated.
    pub seed: u64,
    /// Max/min cluster-size ratio measured on the subsample.
    pub imbalance: f64,
    /// Training inertia on the subsample.
    pub inertia: f64,
}

/// Result of [`SeedSweep::run`]: the winning seed plus the full trace for
/// the ablation bench.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Seed with the lowest imbalance.
    pub best_seed: u64,
    /// Imbalance of the winning seed.
    pub best_imbalance: f64,
    /// Centroids trained by the winning run (on the subsample). Feed them
    /// to [`KMeans::train_from_centroids`] so the balanced clustering
    /// transfers to the full datastore.
    pub best_centroids: Mat,
    /// Every seed evaluated, in evaluation order.
    pub outcomes: Vec<SeedOutcome>,
}

/// Multi-seed K-means imbalance sweep (Section 4.1).
///
/// Runs K-means on a subsample once per candidate seed, scores each run by
/// the max/min cluster-size ratio, and reports the seed with the lowest
/// imbalance. The caller then trains the full-datastore split with that
/// seed.
///
/// # Examples
///
/// ```
/// # use hermes_math::Mat;
/// # use hermes_kmeans::{KMeansConfig, SeedSweep};
/// # let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![(i % 4) as f32 * 5.0, (i / 4) as f32 * 0.01]).collect();
/// # let data = Mat::from_rows(&rows);
/// let sweep = SeedSweep::new(KMeansConfig::new(4), 8).with_subsample(0.5, 7);
/// let result = sweep.run(&data);
/// assert_eq!(result.outcomes.len(), 8);
/// assert!(result.best_imbalance >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSweep {
    config: KMeansConfig,
    num_seeds: u64,
    subsample_fraction: f64,
    subsample_seed: u64,
}

impl SeedSweep {
    /// Sweeps seeds `config.seed .. config.seed + num_seeds`.
    ///
    /// # Panics
    ///
    /// Panics if `num_seeds == 0`.
    pub fn new(config: KMeansConfig, num_seeds: u64) -> Self {
        assert!(num_seeds > 0, "sweep needs at least one seed");
        SeedSweep {
            config,
            num_seeds,
            subsample_fraction: 1.0,
            subsample_seed: 0,
        }
    }

    /// Evaluates seeds on a `fraction` subsample drawn with
    /// `subsample_seed` instead of the full dataset.
    pub fn with_subsample(mut self, fraction: f64, subsample_seed: u64) -> Self {
        self.subsample_fraction = fraction;
        self.subsample_seed = subsample_seed;
        self
    }

    /// Runs the sweep and returns the winning seed plus the full trace.
    /// If the subsample would hold fewer rows than `k` clusters, the
    /// sweep falls back to the full dataset so every run can actually
    /// form `k` centroids.
    pub fn run(&self, data: &Mat) -> SweepResult {
        let sample;
        let eval_data = if self.subsample_fraction < 1.0 {
            sample = subsample(data, self.subsample_fraction, self.subsample_seed);
            if sample.rows() < self.config.k {
                data
            } else {
                &sample
            }
        } else {
            data
        };
        // The candidate seeds are independent trainings — the sweep's
        // natural parallelism. Each run fans out on the shared pool (a
        // training already inside a pool task runs inline), and the
        // outcome order is the seed order, so the winner is the same
        // first-minimum a sequential sweep picks.
        let seeds: Vec<u64> = (0..self.num_seeds)
            .map(|s| derive_seed(self.config.seed, s))
            .collect();
        let runs: Vec<(SeedOutcome, Mat)> = hermes_pool::Pool::global()
            .parallel_map(&seeds, |&seed| {
                let cfg = KMeansConfig { seed, ..self.config };
                let model = KMeans::train(eval_data, &cfg);
                (
                    SeedOutcome {
                        seed,
                        // A cluster emptied on the subsample counts as
                        // maximal imbalance rather than a missing value.
                        imbalance: model.imbalance().unwrap_or(f64::INFINITY),
                        inertia: model.inertia(),
                    },
                    model.centroids().clone(),
                )
            });
        let best_idx = runs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.imbalance
                    .partial_cmp(&b.0.imbalance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("num_seeds > 0");
        let mut outcomes = Vec::with_capacity(runs.len());
        let mut best_centroids = None;
        for (i, (outcome, centroids)) in runs.into_iter().enumerate() {
            if i == best_idx {
                best_centroids = Some(centroids);
            }
            outcomes.push(outcome);
        }
        let best_centroids = best_centroids.expect("best index in range");
        SweepResult {
            best_seed: outcomes[best_idx].seed,
            best_imbalance: outcomes[best_idx].imbalance,
            best_centroids,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_math::rng::seeded_rng;

    fn blobs(n_per: usize, centers: &[[f32; 2]], seed: u64) -> Mat {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    c[0] + rng.next_f32() * 0.2,
                    c[1] + rng.next_f32() * 0.2,
                ]);
            }
        }
        Mat::from_rows(&rows)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        // Seed re-goldened for the in-repo ChaCha8 stream (see
        // EXPERIMENTS.md): random init is degenerate on some seeds by
        // design — that is exactly what the seed sweep exploits.
        let data = blobs(30, &[[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]], 3);
        let model = KMeans::train(&data, &KMeansConfig::new(3).with_seed(4));
        assert_eq!(model.cluster_sizes().iter().sum::<usize>(), 90);
        // Each blob should land in a single cluster.
        for blob in 0..3 {
            let first = model.assignments()[blob * 30];
            for i in 0..30 {
                assert_eq!(model.assignments()[blob * 30 + i], first, "blob {blob}");
            }
        }
        assert_eq!(model.imbalance(), Some(1.0));
    }

    #[test]
    fn plus_plus_init_also_recovers_blobs() {
        let data = blobs(20, &[[0.0, 0.0], [8.0, 8.0]], 11);
        let cfg = KMeansConfig::new(2)
            .with_seed(2)
            .with_init(Init::KMeansPlusPlus);
        let model = KMeans::train(&data, &cfg);
        let (a, _) = model.assign(&[0.1, 0.1]);
        let (b, _) = model.assign(&[8.1, 8.1]);
        assert_ne!(a, b);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs(25, &[[0.0, 0.0], [5.0, 0.0], [0.0, 5.0], [5.0, 5.0]], 7);
        let i2 = KMeans::train(&data, &KMeansConfig::new(2).with_seed(1)).inertia();
        let i4 = KMeans::train(&data, &KMeansConfig::new(4).with_seed(1)).inertia();
        assert!(i4 < i2);
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let data = Mat::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let model = KMeans::train(&data, &KMeansConfig::new(10));
        assert_eq!(model.num_clusters(), 2);
    }

    #[test]
    fn assignments_cover_every_row() {
        let data = blobs(10, &[[0.0, 0.0], [4.0, 4.0]], 9);
        let model = KMeans::train(&data, &KMeansConfig::new(2));
        assert_eq!(model.assignments().len(), data.rows());
        assert!(model
            .assignments()
            .iter()
            .all(|&a| (a as usize) < model.num_clusters()));
    }

    #[test]
    fn nearest_centroids_returns_sorted_prefix() {
        let data = blobs(10, &[[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]], 4);
        let model = KMeans::train(&data, &KMeansConfig::new(3).with_seed(8));
        let order = model.nearest_centroids(&[0.0, 0.0], 3);
        assert_eq!(order.len(), 3);
        // First listed centroid must be the assigned one.
        assert_eq!(order[0], model.assign(&[0.0, 0.0]).0);
    }

    #[test]
    fn subsample_respects_fraction_bounds() {
        let data = blobs(50, &[[0.0, 0.0]], 1);
        assert_eq!(subsample(&data, 0.5, 3).rows(), 25);
        assert_eq!(subsample(&data, 0.0, 3).rows(), 1);
        assert_eq!(subsample(&data, 2.0, 3).rows(), 50);
    }

    #[test]
    fn seed_sweep_picks_minimum_imbalance() {
        let data = blobs(40, &[[0.0, 0.0], [6.0, 6.0]], 13);
        let sweep = SeedSweep::new(KMeansConfig::new(2).with_seed(100), 5);
        let result = sweep.run(&data);
        let min = result
            .outcomes
            .iter()
            .map(|o| o.imbalance)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.best_imbalance, min);
    }

    #[test]
    fn seed_sweep_on_subsample_tracks_full_data() {
        // The paper observes that 1-2% subsample imbalance tracks the full
        // datastore; with clean blobs even a 25% subsample should find a
        // balanced seed.
        let data = blobs(100, &[[0.0, 0.0], [9.0, 9.0]], 17);
        let sweep =
            SeedSweep::new(KMeansConfig::new(2).with_seed(0), 4).with_subsample(0.25, 21);
        let result = sweep.run(&data);
        let full = KMeans::train(
            &data,
            &KMeansConfig::new(2).with_seed(result.best_seed),
        );
        assert!(full.imbalance().unwrap() < 1.5);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let data = blobs(30, &[[0.0, 0.0], [7.0, 7.0]], 23);
        let a = KMeans::train(&data, &KMeansConfig::new(2).with_seed(42));
        let b = KMeans::train(&data, &KMeansConfig::new(2).with_seed(42));
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let data = Mat::zeros(0, 4);
        let _ = KMeans::train(&data, &KMeansConfig::new(2));
    }

    #[test]
    fn warm_start_refines_given_centroids() {
        let data = blobs(30, &[[0.0, 0.0], [8.0, 8.0]], 31);
        // Deliberately poor init: both centroids in one blob.
        let init = Mat::from_rows(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        let cfg = KMeansConfig::new(2).with_max_iters(20);
        let model = KMeans::train_from_centroids(&data, init, &cfg);
        let (a, _) = model.assign(&[0.0, 0.0]);
        let (b, _) = model.assign(&[8.0, 8.0]);
        assert_ne!(a, b, "Lloyd refinement should separate the blobs");
    }

    #[test]
    fn warm_start_from_subsample_preserves_sweep_imbalance() {
        let data = blobs(200, &[[0.0, 0.0], [9.0, 9.0]], 37);
        let sweep = SeedSweep::new(KMeansConfig::new(2).with_seed(3), 4)
            .with_subsample(0.1, 5);
        let result = sweep.run(&data);
        let full = KMeans::train_from_centroids(
            &data,
            result.best_centroids,
            &KMeansConfig::new(2),
        );
        let full_imb = full.imbalance().unwrap();
        assert!(
            full_imb <= result.best_imbalance * 1.5 + 0.5,
            "subsample {} vs full {full_imb}",
            result.best_imbalance
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn warm_start_checks_dimensions() {
        let data = blobs(10, &[[0.0, 0.0]], 1);
        let init = Mat::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let _ = KMeans::train_from_centroids(&data, init, &KMeansConfig::new(1));
    }

    #[test]
    fn duplicate_points_do_not_break_plus_plus() {
        let data = Mat::from_rows(&vec![vec![1.0, 1.0]; 16]);
        let cfg = KMeansConfig::new(4).with_init(Init::KMeansPlusPlus);
        let model = KMeans::train(&data, &cfg);
        assert_eq!(model.assignments().len(), 16);
    }

    #[test]
    fn running_update_tracks_the_batch_mean() {
        let points = [[1.0f32, 2.0], [3.0, 4.0], [5.0, 0.0], [-1.0, 6.0]];
        let mut c = [0.0f32; 2];
        for (i, p) in points.iter().enumerate() {
            running_update(&mut c, p, i + 1);
        }
        assert!((c[0] - 2.0).abs() < 1e-5 && (c[1] - 3.0).abs() < 1e-5, "{c:?}");
    }

    #[test]
    fn running_downdate_inverts_update() {
        let mut c = [1.0f32, -1.0];
        let v = [10.0f32, 5.0];
        let before = c;
        running_update(&mut c, &v, 4);
        running_downdate(&mut c, &v, 3);
        for (a, b) in c.iter().zip(&before) {
            assert!((a - b).abs() < 1e-5);
        }
        // Downdating the sole member leaves the anchor in place.
        let mut lone = [2.0f32, 2.0];
        running_downdate(&mut lone, &[2.0, 2.0], 0);
        assert_eq!(lone, [2.0, 2.0]);
    }
}
